"""Conformance runner and scorer: per-cell checks, exception taxonomy,
scorecards and the timing-insensitive diff."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.scenarios.runner import run_case, run_corpus
from repro.scenarios.schema import CorpusMetadata, ScenarioCase
from repro.scenarios.scorer import (
    SCORECARD_VERSION,
    diff_scorecards,
    load_scorecard,
    score_run,
    scorecard_to_json,
)


def cheap_case(**overrides):
    """A fast-to-run case: small chain, modest sample count."""
    base = dict(
        case_id="cheap-0000",
        family="unit",
        active_per_plane=6,
        in_orbit_spares=1,
        deployment_threshold=4,
        fault_capacity=5,
        coverage_time_minutes=9.0,
        stages=6,
        traffic_signals_per_hour=10.0,
        observation_hours=300.0,
        mc_seed=42,
    )
    base.update(overrides)
    return ScenarioCase(**base)


class TestRunCase:
    def test_composition_cell_passes(self):
        result = run_case(cheap_case())
        assert result.status == "pass"
        assert {c.name for c in result.checks} == {
            "analytic_vs_mc",
            "alert_deadline",
        }
        assert result.exceptions == {}
        assert set(result.fallbacks) == {
            "solver_fallbacks",
            "structure_fallbacks",
        }
        assert 0.0 < result.metrics["alert_deadline_hit_rate"] <= 1.0
        assert result.metrics["samples"] == 3000

    def test_run_is_deterministic(self):
        first = run_case(cheap_case())
        second = run_case(cheap_case())
        assert first.metrics == second.metrics
        assert [c.details for c in first.checks] == [
            c.details for c in second.checks
        ]

    def test_lumped_checks(self):
        case = cheap_case(
            checks=(
                "lumped_vs_counted",
                "lumped_vs_unlumped",
            )
        )
        result = run_case(case)
        assert result.status == "pass"
        assert result.metrics["lumped_vs_counted_delta"] <= case.lumped_tolerance
        assert (
            result.metrics["lumped_vs_unlumped_delta"] <= case.lumped_tolerance
        )

    def test_fault_campaign_cell(self):
        case = cheap_case(
            checks=("fault_campaign",),
            fault_plan=FaultPlan.successors_fail_silent(0.0),
            fault_runs=40,
        )
        result = run_case(case)
        assert result.status == "pass"
        outcome = result.check("fault_campaign")
        assert outcome.details["plans"] == ["fault-free", "successors-fail-all"]
        assert "fault/fault-free/OAQ/mean_level" in result.metrics

    def test_exception_taxonomy_not_raised(self, monkeypatch):
        import repro.scenarios.runner as runner_mod

        def boom(*args, **kwargs):
            raise ValueError("injected")

        monkeypatch.setattr(runner_mod, "capacity_distribution", boom)
        result = run_case(cheap_case())
        assert result.status == "error"
        assert result.exceptions == {"ValueError": 2}
        for check in result.checks:
            assert not check.passed
            assert check.details["exception"] == "ValueError"

    def test_missing_check_lookup_raises(self):
        result = run_case(cheap_case())
        with pytest.raises(ConfigurationError, match="no check"):
            result.check("fault_campaign")


class TestRunCorpus:
    def test_progress_callback_and_throughput(self):
        cases = [cheap_case(case_id=f"cheap-{i:04d}") for i in range(2)]
        seen = []
        result = run_corpus(cases, progress=seen.append)
        assert [cell.case_id for cell in seen] == [
            "cheap-0000",
            "cheap-0001",
        ]
        assert result.cells_per_sec > 0.0
        assert result.counts() == {"pass": 2, "fail": 0, "error": 0}

    def test_empty_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            run_corpus([])


class TestScorer:
    def _scorecard(self):
        cases = [cheap_case(case_id=f"cheap-{i:04d}") for i in range(2)]
        metadata = CorpusMetadata(
            name="unit", seed=0, n_cells=2, families=(("unit", 2),)
        )
        return score_run(run_corpus(cases), metadata=metadata)

    def test_summary_counts(self):
        scorecard = self._scorecard()
        summary = scorecard["summary"]
        assert summary["cells"] == 2
        assert summary["all_passed"] is True
        assert summary["checks_evaluated"] == summary["checks_passed"] == 4
        assert summary["unexplained_fallbacks"] == 0
        assert scorecard["corpus"]["name"] == "unit"

    def test_json_round_trip(self, tmp_path):
        scorecard = self._scorecard()
        path = tmp_path / "scorecard.json"
        path.write_text(scorecard_to_json(scorecard))
        again = load_scorecard(str(path))
        assert again["scorecard_version"] == SCORECARD_VERSION
        assert again["summary"]["cells"] == 2

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "scorecard.json"
        path.write_text('{"scorecard_version": 999}')
        with pytest.raises(ConfigurationError, match="scorecard_version"):
            load_scorecard(str(path))

    def test_diff_ignores_timing(self, tmp_path):
        scorecard = self._scorecard()
        import json

        clone = json.loads(scorecard_to_json(scorecard))
        clone["summary"]["total_seconds"] = 1e9
        clone["summary"]["cells_per_sec"] = 0.001
        clone["cells"][0]["seconds"] = 123.0
        assert diff_scorecards(scorecard, clone) == []

    def test_diff_flags_behavioural_change(self):
        scorecard = self._scorecard()
        import json

        clone = json.loads(scorecard_to_json(scorecard))
        clone["cells"][0]["status"] = "fail"
        differences = diff_scorecards(scorecard, clone)
        assert any("status" in line for line in differences)

    def test_diff_flags_missing_cell(self):
        scorecard = self._scorecard()
        import json

        clone = json.loads(scorecard_to_json(scorecard))
        del clone["cells"][0]
        differences = diff_scorecards(scorecard, clone)
        assert any("missing from candidate" in line for line in differences)

    def test_fallback_classification(self):
        result = run_corpus([cheap_case()])
        result.cells[0].fallbacks["solver_fallbacks"] = 2
        passing = score_run(result)["summary"]
        assert passing["explained_fallbacks"] == 2
        assert passing["unexplained_fallbacks"] == 0
        result.cells[0].status = "fail"
        failing = score_run(result)["summary"]
        assert failing["explained_fallbacks"] == 0
        assert failing["unexplained_fallbacks"] == 2
