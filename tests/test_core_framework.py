"""Tests for repro.core.framework (the evaluation facade)."""

import pytest

from repro.core.config import EvaluationParams
from repro.core.framework import OAQFramework
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def framework():
    return OAQFramework(
        EvaluationParams(
            signal_termination_rate=0.2, node_failure_rate_per_hour=5e-5
        ),
        capacity_stages=16,
    )


class TestConstituents:
    def test_conditional_anchor(self):
        framework = OAQFramework(
            EvaluationParams(signal_termination_rate=0.5), capacity_stages=8
        )
        dist = framework.conditional_qos(12, Scheme.OAQ)
        assert dist[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(0.4444, abs=5e-4)

    def test_capacity_probabilities_truncated(self, framework):
        probabilities = framework.capacity_probabilities()
        assert min(probabilities) >= 9
        assert sum(probabilities.values()) == pytest.approx(1.0, abs=0.02)

    def test_capacity_probabilities_untruncated(self, framework):
        full = framework.capacity_probabilities(truncate=False)
        assert sum(full.values()) == pytest.approx(1.0, abs=1e-8)

    def test_capacity_is_cached(self, framework):
        first = framework.capacity_probabilities()
        second = framework.capacity_probabilities()
        assert first == second


class TestComposedMeasures:
    def test_oaq_dominates_baq(self, framework):
        for level in QoSLevel:
            comparison = framework.compare_schemes(level)
            assert comparison[Scheme.OAQ] >= comparison[Scheme.BAQ] - 1e-12

    def test_qos_gain_positive_at_level2(self, framework):
        assert framework.qos_gain(QoSLevel.SEQUENTIAL_DUAL) > 0.1

    def test_level0_measure_is_one(self, framework):
        assert framework.qos_measure(Scheme.OAQ, QoSLevel.MISSED) == pytest.approx(1.0)

    def test_sweep_over_lambda(self):
        framework = OAQFramework(
            EvaluationParams(signal_termination_rate=0.2), capacity_stages=8
        )
        results = framework.sweep(
            "node_failure_rate_per_hour",
            [1e-5, 1e-4],
            Scheme.OAQ,
            QoSLevel.SEQUENTIAL_DUAL,
        )
        assert len(results) == 2
        # Higher failure rate, lower QoS.
        assert results[0][1] > results[1][1]

    def test_simulated_conditional_agrees(self, framework):
        analytic = framework.conditional_qos(12, Scheme.OAQ)
        simulated = framework.simulate_conditional_qos(
            12, Scheme.OAQ, samples=30_000, seed=5
        )
        assert simulated[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(
            analytic[QoSLevel.SIMULTANEOUS_DUAL], abs=0.015
        )

    def test_rejects_bad_min_capacity(self):
        with pytest.raises(ConfigurationError):
            OAQFramework(EvaluationParams(), min_capacity=0)
