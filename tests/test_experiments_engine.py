"""Tests for the memoized + parallel experiment engine: cache
accounting, sequential/parallel equivalence, deterministic ordering,
and the one-solve-per-sweep guarantee."""

import threading
import time

import pytest

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_cache_stats,
    capacity_caches_disabled,
    capacity_distribution,
    clear_capacity_caches,
)
from repro.analytic.solve_cache import LRUSolveCache
from repro.errors import ConfigurationError
from repro.experiments import sweeps
from repro.experiments.engine import SweepRunner, evaluate_grid


# ----------------------------------------------------------------------
# LRU solve cache
# ----------------------------------------------------------------------
class TestLRUSolveCache:
    def test_hit_miss_accounting(self):
        cache = LRUSolveCache(maxsize=4)
        calls = []
        assert cache.get_or_compute("a", lambda: calls.append(1) or 1) == 1
        assert cache.get_or_compute("a", lambda: calls.append(2) or 2) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert calls == [1]

    def test_module_cache_stats_registry(self):
        import gc

        from repro.analytic.solve_cache import cache_stats

        cache = LRUSolveCache(maxsize=2, name="registry-probe")
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        stats = cache_stats()
        assert stats["registry-probe"].hits == 1
        assert stats["registry-probe"].misses == 1
        # The registry holds weak references: dropping the cache drops
        # its entry instead of leaking every short-lived test cache.
        del cache
        gc.collect()
        assert "registry-probe" not in cache_stats()

    def test_lru_eviction_order(self):
        cache = LRUSolveCache(maxsize=2)
        cache.get_or_compute("a", lambda: "A")
        cache.get_or_compute("b", lambda: "B")
        cache.get_or_compute("a", lambda: "A2")  # refresh a
        cache.get_or_compute("c", lambda: "C")  # evicts b (LRU)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats().evictions == 1

    def test_resize_shrinks_and_validates(self):
        cache = LRUSolveCache(maxsize=4)
        for key in "abcd":
            cache.get_or_compute(key, lambda k=key: k)
        cache.resize(2)
        assert len(cache) == 2
        with pytest.raises(ConfigurationError):
            cache.resize(0)
        with pytest.raises(ConfigurationError):
            LRUSolveCache(maxsize=0)

    def test_seed_does_not_count_as_lookup(self):
        cache = LRUSolveCache(maxsize=4)
        cache.seed([("k", 42)])
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 1)
        assert cache.get_or_compute("k", lambda: 0) == 42
        assert cache.stats().hits == 1

    def test_peek_does_not_touch_counters(self):
        cache = LRUSolveCache(maxsize=2)
        assert cache.peek("missing") == (False, None)
        cache.seed([("k", 7)])
        assert cache.peek("k") == (True, 7)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_clear_keeps_counters_unless_reset(self):
        cache = LRUSolveCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 1
        cache.clear(reset_stats=True)
        assert cache.stats().misses == 0

    def test_concurrent_requests_compute_exactly_once(self):
        cache = LRUSolveCache(maxsize=2)
        computed = []

        def factory():
            time.sleep(0.01)
            computed.append(1)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_compute("shared", factory)
                )
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["value"] * 8
        assert len(computed) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (7, 1)


# ----------------------------------------------------------------------
# Capacity-solve memoization
# ----------------------------------------------------------------------
class TestCapacityMemoization:
    def test_repeat_solve_hits_cache(self):
        clear_capacity_caches()
        config = CapacityModelConfig(failure_rate_per_hour=3e-5, threshold=10)
        before = capacity_cache_stats()["distribution"]
        first = capacity_distribution(config, stages=8)
        second = capacity_distribution(config, stages=8)
        after = capacity_cache_stats()["distribution"]
        assert first == second
        assert after.misses - before.misses == 1
        assert after.hits - before.hits == 1

    def test_distinct_stage_counts_are_distinct_solves(self):
        clear_capacity_caches()
        config = CapacityModelConfig(failure_rate_per_hour=3e-5, threshold=10)
        before = capacity_cache_stats()["distribution"]
        capacity_distribution(config, stages=4)
        capacity_distribution(config, stages=8)
        after = capacity_cache_stats()["distribution"]
        assert after.misses - before.misses == 2

    def test_cached_result_is_isolated_from_caller_mutation(self):
        clear_capacity_caches()
        config = CapacityModelConfig(failure_rate_per_hour=3e-5, threshold=10)
        first = capacity_distribution(config, stages=8)
        first[14] = -1.0
        second = capacity_distribution(config, stages=8)
        assert second[14] != -1.0
        assert abs(sum(second.values()) - 1.0) < 1e-9

    def test_disabled_context_restores_solve_per_call(self):
        clear_capacity_caches()
        config = CapacityModelConfig(failure_rate_per_hour=3e-5, threshold=10)
        capacity_distribution(config, stages=8)
        before = capacity_cache_stats()["distribution"]
        with capacity_caches_disabled():
            uncached = capacity_distribution(config, stages=8)
        after = capacity_cache_stats()["distribution"]
        # Neither a hit nor a miss was recorded: the cache was bypassed.
        assert (after.hits, after.misses) == (before.hits, before.misses)
        assert abs(sum(uncached.values()) - 1.0) < 1e-9

    def test_tau_sweep_performs_exactly_one_capacity_solve(self):
        """The acceptance guard: 9 taus, 1 solve."""
        clear_capacity_caches()
        before = capacity_cache_stats()["distribution"]
        result = sweeps.run_tau_sweep(
            taus=(0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0), stages=8
        )
        after = capacity_cache_stats()["distribution"]
        assert len(result.rows) == 9
        assert after.misses - before.misses == 1
        # Every point re-reads the shared solve from the cache.
        assert after.hits - before.hits == 9

    def test_mu_sweep_shares_the_tau_sweep_solve(self):
        """Capacity is independent of both tau and mu: a mu sweep at the
        same (lambda, eta, stages) adds zero further solves."""
        clear_capacity_caches()
        sweeps.run_tau_sweep(taus=(1.0, 2.0), stages=8)
        before = capacity_cache_stats()["distribution"]
        sweeps.run_mu_sweep(mean_durations=(1.0, 5.0), stages=8)
        after = capacity_cache_stats()["distribution"]
        assert after.misses == before.misses


# ----------------------------------------------------------------------
# SweepRunner
# ----------------------------------------------------------------------
def _double_row(point):
    """Top-level so the process-pool path can pickle it."""
    return {"x": point["x"], "y": 2 * point["x"]}


def _staggered_row(point):
    """Later points finish first -- exercises order restoration."""
    time.sleep(0.05 * (3 - point["x"]) if point["x"] < 3 else 0.0)
    return {"x": point["x"]}


def _failing_row(point):
    if point["x"] == 1:
        raise ValueError("boom")
    return {"x": point["x"]}


class TestSweepRunner:
    def test_rejects_bad_n_jobs(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(n_jobs=0)
        with pytest.raises(ConfigurationError):
            SweepRunner(n_jobs=-2)
        with pytest.raises(ConfigurationError):
            SweepRunner(n_jobs=1.5)

    def test_n_jobs_minus_one_uses_cpu_count(self):
        assert SweepRunner(n_jobs=-1).n_jobs >= 1

    def test_empty_grid(self):
        assert SweepRunner().map_rows(_double_row, []) == []

    def test_sequential_matches_parallel(self):
        points = [{"x": i} for i in range(6)]
        sequential = SweepRunner(n_jobs=1).map_rows(_double_row, points)
        parallel = SweepRunner(n_jobs=4).map_rows(_double_row, points)
        assert sequential == parallel
        assert sequential == [{"x": i, "y": 2 * i} for i in range(6)]

    def test_parallel_rows_keep_grid_order(self):
        points = [{"x": i} for i in range(4)]
        rows = SweepRunner(n_jobs=4).map_rows(_staggered_row, points)
        assert [row["x"] for row in rows] == [0, 1, 2, 3]

    def test_worker_exception_propagates(self):
        points = [{"x": i} for i in range(3)]
        with pytest.raises(ValueError, match="boom"):
            SweepRunner(n_jobs=2).map_rows(_failing_row, points)

    def test_pool_submits_chunks_not_points(self):
        # Regression: the old pool submitted one task per grid point,
        # pickling row_fn (and paying executor round-trips) N times.
        # The campaign orchestrator submits per chunk.
        points = [{"x": i} for i in range(40)]
        runner = SweepRunner(n_jobs=2, steal=False)
        rows = runner.map_rows(_double_row, points)
        assert rows == [{"x": i, "y": 2 * i} for i in range(40)]
        stats = runner.last_campaign.stats
        assert stats["chunks"] == 2  # ceil(40 / 2) point blocks
        assert stats["submissions"] == stats["chunks"]
        assert stats["submissions"] < len(points)

    def test_run_records_stage_timings(self):
        result = SweepRunner().run(
            experiment_id="demo",
            title="demo",
            headers=["x", "y"],
            row_fn=_double_row,
            points=[{"x": 1}, {"x": 2}],
        )
        assert set(result.timings) == {
            "capacity_presolve",
            "rows",
            "total",
            "assemble",
            "refine",
            "quotient",
            "rerate",
            "solve",
            "batch_template",
            "batch_replicate",
            "batch_run",
            "batch_vector",
            "batch_vector_fallback",
        }
        assert result.timings["total"] >= result.timings["rows"]
        assert all(v >= 0.0 for v in result.timings.values())
        assert result.rows == [{"x": 1, "y": 2}, {"x": 2, "y": 4}]

    def test_run_surfaces_cache_stats_metadata(self):
        clear_capacity_caches(reset_stats=True)
        config = CapacityModelConfig()

        def solving_row(point):
            distribution = capacity_distribution(config, stages=24)
            return {"x": point["x"], "y": max(distribution.values())}

        result = SweepRunner().run(
            experiment_id="demo",
            title="demo",
            headers=["x", "y"],
            row_fn=solving_row,
            points=[{"x": 1}],
            presolve=[(config, 24)],
        )
        stats = result.metadata["cache_stats"]
        # The capacity caches are registered by name; the presolve is
        # the miss, the row's re-solve of the same config the hit.
        distributions = stats["capacity-distribution"]
        assert distributions["misses"] >= 1
        assert distributions["hits"] >= 1
        assert 0.0 <= distributions["hit_rate"] <= 1.0
        assert set(distributions) == {
            "hits", "misses", "evictions", "size", "maxsize", "hit_rate",
        }

    def test_preassemble_shares_one_topology_across_rate_configs(self):
        """Configs differing only in rate parameters collapse onto one
        assembled structure; a subsequent solve re-rates it (no further
        assemble miss)."""
        clear_capacity_caches(reset_stats=True)
        configs = [
            CapacityModelConfig(failure_rate_per_hour=lam, threshold=10)
            for lam in (2e-5, 4e-5, 6e-5)
        ]
        count = SweepRunner.preassemble_capacity(
            [(config, 8) for config in configs]
        )
        assert count == 3  # distinct (config, stages) keys...
        stats = capacity_cache_stats()["assemble"]
        assert stats.misses == 1  # ...but one shared topology
        assert stats.hits == 2
        before = capacity_cache_stats()["assemble"]
        capacity_distribution(configs[0], stages=8)
        after = capacity_cache_stats()["assemble"]
        assert after.misses == before.misses

    def test_presolve_deduplicates_keys(self):
        clear_capacity_caches()
        config = CapacityModelConfig(failure_rate_per_hour=3e-5, threshold=10)
        before = capacity_cache_stats()["distribution"]
        count = SweepRunner.presolve_capacity(
            [(config, 8), (config, 8), (config, 8)]
        )
        after = capacity_cache_stats()["distribution"]
        assert count == 1
        assert after.misses - before.misses == 1

    def test_evaluate_grid_convenience(self):
        rows = evaluate_grid(_double_row, [{"x": 5}])
        assert rows == [{"x": 5, "y": 10}]


class TestParallelExperimentEquivalence:
    def test_tau_sweep_identical_under_n_jobs_4(self):
        """n_jobs must not change a single bit of the table."""
        clear_capacity_caches()
        sequential = sweeps.run_tau_sweep(taus=(1.0, 3.0, 6.0), stages=8)
        clear_capacity_caches()
        parallel = sweeps.run_tau_sweep(
            taus=(1.0, 3.0, 6.0), stages=8, n_jobs=4
        )
        assert sequential.rows == parallel.rows
        assert sequential.headers == parallel.headers
