"""Golden regression for the ``faults`` experiment.

``tests/golden/faults_golden.json`` pins the full-precision rows of the
default fault-injection campaign (k=9, 250 runs/cell, seed 2026).  The
campaign is seeded Monte Carlo dispatched through the process-pool
engine, so this doubles as a determinism check: any drift in seed
derivation, batch aggregation order or the protocol stack shows up as
a diff here.  (The ``faults`` table is not part of
``experiments_output.txt``, so there is no render-precision
cross-check like the one in ``test_experiments_golden.py``.)
"""

import json
import pathlib

import pytest

from repro.experiments import faults_exp

_GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "faults_golden.json"


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as fh:
        return json.load(fh)["faults"]


@pytest.fixture(scope="module")
def result():
    return faults_exp.run()


def test_faults_experiment_matches_golden_to_1e9(golden, result):
    assert result.headers == golden["headers"]
    assert len(result.rows) == len(golden["rows"])
    for index, (row, expected_row) in enumerate(
        zip(result.rows, golden["rows"])
    ):
        for header in golden["headers"]:
            value, pinned = row[header], expected_row[header]
            where = f"faults row {index} column {header!r}"
            if isinstance(pinned, float):
                assert value == pytest.approx(pinned, abs=1e-9), where
            else:
                assert value == pinned, where


def test_golden_covers_every_plan_and_scheme(golden, result):
    cells = {(row["plan"], row["scheme"]) for row in result.rows}
    pinned = {(row["plan"], row["scheme"]) for row in golden["rows"]}
    assert cells == pinned
    plans = {plan.name for plan in faults_exp.plan_battery()}
    assert {plan for plan, _ in cells} == plans
    assert {scheme for _, scheme in cells} == {"OAQ", "BAQ"}
