"""Tests for repro.core.opportunity (protocol timing formulas)."""

import pytest

from repro.core.config import EvaluationParams
from repro.core.opportunity import (
    max_chain_length,
    tc2_holds,
    tc2_local_threshold,
    wait_deadline,
)
from repro.errors import ConfigurationError


@pytest.fixture
def params():
    return EvaluationParams(
        deadline_minutes=5.0,
        crosslink_delay_minutes=0.05,
        geolocation_time_minutes=0.5,
    )


class TestTC2:
    def test_local_threshold_formula(self, params):
        # tau - (n*delta + Tg)
        assert tc2_local_threshold(params, 1) == pytest.approx(5.0 - 0.55)
        assert tc2_local_threshold(params, 2) == pytest.approx(5.0 - 0.6)

    def test_threshold_decreases_with_ordinal(self, params):
        values = [tc2_local_threshold(params, n) for n in range(1, 6)]
        assert values == sorted(values, reverse=True)

    def test_tc2_holds(self, params):
        t0 = 10.0
        assert not tc2_holds(params, 1, now=t0 + 4.0, detection_time=t0)
        assert tc2_holds(params, 1, now=t0 + 4.5, detection_time=t0)

    def test_rejects_bad_ordinal(self, params):
        with pytest.raises(ConfigurationError):
            tc2_local_threshold(params, 0)


class TestWaitDeadline:
    def test_formula(self, params):
        # t0 + tau - (n-1) delta
        assert wait_deadline(params, 1, detection_time=2.0) == pytest.approx(7.0)
        assert wait_deadline(params, 3, detection_time=2.0) == pytest.approx(6.9)

    def test_downstream_notification_consistency(self, params):
        """A timeout report by S_n at its deadline reaches S_{n-1} (one
        crosslink hop later) no later than S_{n-1}'s own deadline --
        the invariant the formula is built for."""
        t0 = 0.0
        for n in range(2, 6):
            assert (
                wait_deadline(params, n, t0) + params.delta
                <= wait_deadline(params, n - 1, t0) + 1e-12
            )

    def test_rejects_bad_ordinal(self, params):
        with pytest.raises(ConfigurationError):
            wait_deadline(params, 0, detection_time=0.0)


class TestMaxChainLength:
    def test_underlap_uses_eq2(self, params):
        geometry = params.constellation.plane_geometry(9)
        assert max_chain_length(geometry, params) == 2

    def test_overlap_is_simultaneous_pair(self, params):
        geometry = params.constellation.plane_geometry(12)
        assert max_chain_length(geometry, params) == 2

    def test_longer_deadline_longer_chain(self):
        params = EvaluationParams(deadline_minutes=12.0)
        geometry = params.constellation.plane_geometry(9)
        assert max_chain_length(geometry, params) == 3
