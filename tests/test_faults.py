"""Tests for the fault-injection campaign engine (``repro.faults``).

The campaign acceptance test reproduces the analytic conditional QoS
model from a seeded 200-run fault-free campaign for both schemes --
the empirical ``P(Y >= y)`` must contain the closed form inside its
95% Wilson interval -- and the fail-silent campaign must match the
degraded (BAQ-shaped) reference the same way.
"""

import pickle

import pytest

from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.faults import (
    ANY,
    Campaign,
    FaultPlan,
    GROUND,
    cross_check_fail_silent,
    cross_check_fault_free,
    degradation_curve,
    fail_silent_reference,
    faulty_scenario,
    validate_outcome,
    wilson_interval,
)

PARAMS = EvaluationParams(signal_termination_rate=0.2)
GEOMETRY = PARAMS.constellation.plane_geometry(9)  # underlapping plane


# ----------------------------------------------------------------------
# Wilson interval
# ----------------------------------------------------------------------
class TestWilsonInterval:
    def test_known_value(self):
        # Classic textbook case: 180/200 at 95%.
        interval = wilson_interval(180, 200)
        assert interval.low == pytest.approx(0.8506, abs=2e-4)
        assert interval.high == pytest.approx(0.9343, abs=2e-4)
        assert interval.contains(interval.point)

    def test_zero_successes_stays_in_unit_interval(self):
        interval = wilson_interval(0, 50)
        assert interval.low == 0.0
        assert 0.0 < interval.high < 0.1
        assert interval.contains(0.0)

    def test_all_successes_stays_in_unit_interval(self):
        interval = wilson_interval(50, 50)
        assert interval.high == 1.0
        assert 0.9 < interval.low < 1.0

    def test_wider_confidence_widens_interval(self):
        narrow = wilson_interval(30, 100, confidence=0.90)
        wide = wilson_interval(30, 100, confidence=0.99)
        assert wide.width > narrow.width

    @pytest.mark.parametrize(
        "successes, trials, confidence",
        [(1, 0, 0.95), (-1, 10, 0.95), (11, 10, 0.95), (5, 10, 0.0), (5, 10, 1.0)],
    )
    def test_invalid_inputs_raise(self, successes, trials, confidence):
        with pytest.raises(ConfigurationError):
            wilson_interval(successes, trials, confidence=confidence)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_normalises_mapping_and_sorts(self):
        plan = FaultPlan(name="x", fail_silent={"S3": 1.0, "S2": 0.5})
        assert plan.fail_silent == (("S2", 0.5), ("S3", 1.0))

    def test_is_picklable_and_round_trips(self):
        plan = FaultPlan(
            name="everything",
            fail_silent={"S2": 0.0},
            crosslink_loss=0.1,
            link_loss=(("S1", ANY, 0.2),),
            downlink_blackouts=((1.0, 2.0),),
            membership_staleness=3.0,
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_fault_free_detection(self):
        assert FaultPlan.fault_free().is_fault_free
        assert not FaultPlan.lossy(0.1).is_fault_free

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"fail_silent": {"S2": -1.0}},
            {"fail_successors_at": -0.5},
            {"fail_successor_count": 1},  # count without at
            {"fail_successors_at": 0.0, "fail_successor_count": 0},
            {"crosslink_loss": 1.5},
            {"link_loss": (("a", "b", -0.1),)},
            {"downlink_blackouts": ((2.0, 1.0),)},
            {"downlink_blackouts": ((-1.0, 1.0),)},
            {"membership_staleness": -1.0},
        ],
    )
    def test_invalid_plans_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**{"name": "bad", **kwargs})

    def test_blackout_windows_are_half_open(self):
        plan = FaultPlan.downlink_blackout(1.0, 2.0)
        assert not plan.in_blackout(0.999)
        assert plan.in_blackout(1.0)
        assert plan.in_blackout(1.999)
        assert not plan.in_blackout(2.0)

    def test_link_loss_wildcards_compose_as_erasure_channels(self):
        plan = FaultPlan(
            name="x", link_loss=(("S1", ANY, 0.5), (ANY, "S2", 0.5))
        )
        # Both entries match S1 -> S2: survival 0.5 * 0.5.
        assert plan.link_loss_probability(0.0, "S1", "S2") == pytest.approx(0.75)
        # Only the wildcard-destination entry matches S3 -> S2.
        assert plan.link_loss_probability(0.0, "S3", "S2") == pytest.approx(0.5)
        assert plan.link_loss_probability(0.0, "S3", "S4") == 0.0

    def test_blackout_only_hits_ground_destination(self):
        plan = FaultPlan.downlink_blackout(0.0, 10.0)
        assert plan.link_loss_probability(5.0, "S1", GROUND) == 1.0
        assert plan.link_loss_probability(5.0, "S1", "S2") == 0.0
        assert plan.link_loss_probability(15.0, "S1", GROUND) == 0.0

    def test_failure_times_expands_successors_of_detector(self):
        plan = FaultPlan.successors_fail_silent(2.0, count=2)
        names = ["S1", "S2", "S3", "S4"]
        assert plan.failure_times(names, "S2") == {"S3": 2.0, "S4": 2.0}
        # Explicit entry keeps the earlier of the two times.
        plan = FaultPlan(
            name="x", fail_silent={"S3": 1.0}, fail_successors_at=2.0
        )
        assert plan.failure_times(names, "S2") == {"S3": 1.0, "S4": 2.0}

    def test_failure_times_rejects_unknown_satellites(self):
        plan = FaultPlan(name="x", fail_silent={"S9": 0.0})
        with pytest.raises(ConfigurationError):
            plan.failure_times(["S1", "S2"], "S1")

    def test_campaign_rejects_duplicate_plan_names(self):
        with pytest.raises(ConfigurationError):
            Campaign(
                PARAMS,
                capacity=9,
                plans=(FaultPlan.fault_free(), FaultPlan.fault_free()),
            )


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
class TestInjector:
    def test_signals_are_paired_across_plans(self):
        healthy = faulty_scenario(
            GEOMETRY, PARAMS, FaultPlan.fault_free(), seed=42
        )
        faulty = faulty_scenario(
            GEOMETRY, PARAMS, FaultPlan.successors_fail_silent(0.0), seed=42
        )
        assert healthy.onset_position == faulty.onset_position
        assert healthy.signal.duration == faulty.signal.duration

    def test_blackout_forces_level_zero(self):
        plan = FaultPlan.downlink_blackout(0.0, 1e6)
        for seed in range(10):
            scenario = faulty_scenario(GEOMETRY, PARAMS, plan, seed=seed)
            assert scenario.run().achieved_level is QoSLevel.MISSED

    def test_total_crosslink_loss_still_delivers_single_coverage(self):
        # loss applies to crosslinks and downlink alike at p=1 -> level 0;
        # per-link loss on satellite-satellite links only keeps level 1.
        plan = FaultPlan(name="isolate", link_loss=((ANY, "S2", 1.0), ("S2", ANY, 1.0)))
        scenario = faulty_scenario(
            GEOMETRY, PARAMS, plan, seed=1, onset_position=8.5,
            signal_duration=25.0,
        )
        outcome = scenario.run()
        # S1 detects and its downlink is unaffected.
        assert outcome.achieved_level is QoSLevel.SINGLE

    def test_stale_view_loses_level_two_fresh_view_recovers_it(self):
        # Deadline relaxed so the *second* successor's footprint is
        # still timely; the first successor is dead from t=0.
        params = EvaluationParams(deadline_minutes=12.0)
        results = {}
        for label, staleness in (("stale", 1e9), ("fresh", 0.0)):
            plan = FaultPlan(
                name=label,
                fail_successors_at=0.0,
                fail_successor_count=1,
                membership_staleness=staleness,
            )
            scenario = faulty_scenario(
                GEOMETRY, params, plan, seed=1,
                onset_position=8.5, signal_duration=25.0,
            )
            results[label] = scenario.run().achieved_level
        assert results["stale"] is QoSLevel.SINGLE
        assert results["fresh"] is QoSLevel.SEQUENTIAL_DUAL


# ----------------------------------------------------------------------
# Campaign determinism
# ----------------------------------------------------------------------
class TestCampaignDeterminism:
    def test_same_seed_is_byte_identical_across_reruns_and_n_jobs(self):
        plans = (FaultPlan.fault_free(), FaultPlan.lossy(0.3))
        kwargs = dict(capacity=9, plans=plans, runs=40, seed=11)
        first = Campaign(PARAMS, **kwargs).run()
        rerun = Campaign(PARAMS, **kwargs).run()
        pooled = Campaign(PARAMS, **kwargs, n_jobs=2, batch_size=7).run()
        assert first.outcomes == rerun.outcomes
        assert first.outcomes == pooled.outcomes

    def test_different_seed_changes_counts(self):
        plans = (FaultPlan.lossy(0.3),)
        a = Campaign(PARAMS, capacity=9, plans=plans, runs=60, seed=1).run()
        b = Campaign(PARAMS, capacity=9, plans=plans, runs=60, seed=2).run()
        assert a.outcomes != b.outcomes

    def test_outcome_accessor_and_counts_are_consistent(self):
        result = Campaign(
            PARAMS, capacity=9, plans=(FaultPlan.fault_free(),), runs=30, seed=5
        ).run()
        outcome = result.outcome("fault-free", Scheme.OAQ)
        assert sum(outcome.level_counts) == outcome.runs == 30
        assert outcome.p_at_least(QoSLevel.MISSED) == 1.0
        with pytest.raises(ConfigurationError):
            result.outcome("no-such-plan", Scheme.OAQ)


# ----------------------------------------------------------------------
# Analytic cross-checks (the acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestAnalyticCrossChecks:
    def test_fault_free_campaign_reproduces_conditional_model(self):
        reports = cross_check_fault_free(PARAMS, capacity=9, runs=200, seed=7)
        assert {report.scheme for report in reports} == {Scheme.OAQ, Scheme.BAQ}
        for report in reports:
            assert report.runs == 200
            assert report.passed, report.failures()

    def test_fail_silent_campaign_degrades_to_baq_distribution(self):
        reports = cross_check_fail_silent(PARAMS, capacity=9, runs=200, seed=7)
        for report in reports:
            assert report.passed, report.failures()
            # Level 2 is gone entirely: the chain is dead.
            level2 = [c for c in report.checks if c.level is QoSLevel.SEQUENTIAL_DUAL]
            assert level2[0].empirical == 0.0

    def test_validate_outcome_flags_wrong_reference(self):
        result = Campaign(
            PARAMS, capacity=9, plans=(FaultPlan.fault_free(),),
            schemes=(Scheme.BAQ,), runs=200, seed=3,
        ).run()
        outcome = result.outcome("fault-free", Scheme.BAQ)
        # BAQ empirically has no level 2; the OAQ reference says ~0.22.
        wrong = conditional_distribution(GEOMETRY, PARAMS, Scheme.OAQ)
        report = validate_outcome(outcome, wrong)
        assert not report.passed
        assert any(
            check.level is QoSLevel.SEQUENTIAL_DUAL
            for check in report.failures()
        )

    def test_fail_silent_reference_rejects_overlapping_planes(self):
        overlapping = PARAMS.constellation.plane_geometry(12)
        assert overlapping.overlapping
        with pytest.raises(ConfigurationError):
            fail_silent_reference(overlapping, PARAMS, Scheme.OAQ)


# ----------------------------------------------------------------------
# Degradation curves
# ----------------------------------------------------------------------
class TestDegradationCurve:
    def test_loss_sweep_is_monotone_in_mean_level(self):
        rows = degradation_curve(
            PARAMS, capacity=9, loss_rates=[0.0, 0.5, 1.0], runs=60, seed=3
        )
        levels = [row["mean level"] for row in rows]
        assert levels == sorted(levels, reverse=True)
        assert rows[-1]["P(Y>=1)"] == 0.0  # total loss delivers nothing

    def test_failure_sweep_loses_level_two_only(self):
        rows = degradation_curve(
            PARAMS, capacity=9, failure_counts=[0, 1], runs=120, seed=9
        )
        assert rows[0]["P(Y>=2)"] > 0.0
        assert rows[1]["P(Y>=2)"] == 0.0
        # Detection is geometry, not coordination: level >= 1 survives.
        assert rows[1]["P(Y>=1)"] > 0.9

    def test_exactly_one_axis_required(self):
        with pytest.raises(ConfigurationError):
            degradation_curve(PARAMS, capacity=9, runs=10)
        with pytest.raises(ConfigurationError):
            degradation_curve(
                PARAMS, capacity=9, loss_rates=[0.1], failure_counts=[1], runs=10
            )
