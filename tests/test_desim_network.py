"""Tests for repro.desim.network (crosslinks with fail-silence)."""

import pytest

from repro.desim.kernel import Simulator
from repro.desim.network import Network
from repro.errors import ConfigurationError, ProtocolError


@pytest.fixture
def net():
    simulator = Simulator()
    network = Network(simulator, default_delay=0.5)
    inboxes = {"a": [], "b": []}
    network.register("a", lambda src, msg: inboxes["a"].append((src, msg)))
    network.register("b", lambda src, msg: inboxes["b"].append((src, msg)))
    return simulator, network, inboxes


class TestDelivery:
    def test_message_delivered_after_delay(self, net):
        simulator, network, inboxes = net
        network.send("a", "b", "hello")
        assert inboxes["b"] == []
        simulator.run()
        assert inboxes["b"] == [("a", "hello")]
        assert simulator.now == 0.5

    def test_explicit_delay_overrides_default(self, net):
        simulator, network, inboxes = net
        network.send("a", "b", "x", delay=2.0)
        simulator.run()
        assert simulator.now == 2.0

    def test_delay_fn_used(self):
        simulator = Simulator()
        network = Network(simulator, delay_fn=lambda s, d: 3.0)
        got = []
        network.register("n", lambda s, m: got.append(m))
        network.send("n", "n", "self")
        simulator.run()
        assert simulator.now == 3.0

    def test_log_records_delivery(self, net):
        simulator, network, _ = net
        network.send("a", "b", "x")
        simulator.run()
        record = network.log[0]
        assert record.source == "a"
        assert record.time_sent == 0.0
        assert record.time_delivered == 0.5
        assert not record.dropped

    def test_unknown_destination_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ProtocolError):
            network.send("a", "ghost", "x")

    def test_unknown_source_rejected(self, net):
        """Regression: a typo'd source used to be accepted silently,
        bypassing the sender-side fail-silence check forever."""
        _, network, _ = net
        with pytest.raises(ProtocolError):
            network.send("ghost", "b", "x")

    def test_duplicate_registration_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ConfigurationError):
            network.register("a", lambda s, m: None)

    def test_negative_delay_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ConfigurationError):
            network.send("a", "b", "x", delay=-1.0)


class TestFailSilence:
    def test_failed_receiver_drops_message(self, net):
        simulator, network, inboxes = net
        network.fail("b")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == []
        assert network.dropped_count() == 1

    def test_failed_sender_drops_message(self, net):
        simulator, network, inboxes = net
        network.fail("a")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == []

    def test_failure_mid_flight_drops(self, net):
        """A node that fails after the send but before delivery never
        receives -- fail-silence is evaluated at delivery time."""
        simulator, network, inboxes = net
        network.send("a", "b", "x", delay=1.0)
        simulator.schedule(0.5, network.fail, "b")
        simulator.run()
        assert inboxes["b"] == []

    def test_restore_resumes_delivery(self, net):
        simulator, network, inboxes = net
        network.fail("b")
        network.restore("b")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == [("a", "x")]

    def test_is_failed(self, net):
        _, network, _ = net
        network.fail("a")
        assert network.is_failed("a")
        assert not network.is_failed("b")

    def test_fail_unknown_node_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ConfigurationError):
            network.fail("ghost")


class TestRestore:
    def test_restore_mid_flight_delivers(self, net):
        """Fail-silence is evaluated at delivery time, so a node
        repaired while the message is still in flight receives it."""
        simulator, network, inboxes = net
        network.fail("b")
        network.send("a", "b", "x", delay=1.0)
        simulator.schedule(0.5, network.restore, "b")
        simulator.run()
        assert inboxes["b"] == [("a", "x")]

    def test_restore_does_not_resurrect_dropped_sends(self, net):
        """A message sent by a failed node is gone; repairing the
        sender later cannot bring it back."""
        simulator, network, inboxes = net
        network.fail("a")
        network.send("a", "b", "x")
        network.restore("a")
        simulator.run()
        assert inboxes["b"] == []
        assert network.dropped_count() == 1

    def test_restore_unknown_or_healthy_node_is_noop(self, net):
        _, network, _ = net
        network.restore("a")  # healthy: nothing to undo
        network.restore("ghost")  # unknown: discard semantics
        assert not network.is_failed("a")

    def test_fail_restore_fail_cycle(self, net):
        simulator, network, inboxes = net
        network.fail("b")
        network.restore("b")
        network.fail("b")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == []


class TestLoss:
    def rng(self):
        import numpy as np

        return np.random.default_rng(0)

    def test_total_blackout_accepted_and_drops_everything(self):
        """Regression: loss_probability == 1.0 used to be rejected,
        blocking total-blackout injection."""
        simulator = Simulator()
        network = Network(simulator, loss_probability=1.0, rng=self.rng())
        got = []
        network.register("a", lambda s, m: got.append(m))
        network.register("b", lambda s, m: got.append(m))
        for _ in range(5):
            network.send("a", "b", "x")
        simulator.run()
        assert got == []
        assert network.dropped_count() == 5

    def test_total_blackout_does_not_draw_from_rng(self):
        """p >= 1 drops deterministically so blackout windows do not
        perturb the random stream of surviving traffic."""
        simulator = Simulator()
        rng = self.rng()
        network = Network(simulator, loss_probability=1.0, rng=rng)
        network.register("a", lambda s, m: None)
        network.register("b", lambda s, m: None)
        before = rng.bit_generator.state
        network.send("a", "b", "x")
        assert rng.bit_generator.state == before

    def test_loss_fn_filters_per_link(self):
        simulator = Simulator()
        network = Network(
            simulator,
            loss_fn=lambda now, s, d: 1.0 if d == "b" else 0.0,
            rng=self.rng(),
        )
        inboxes = {"b": [], "c": []}
        for name in ("a", "b", "c"):
            network.register(
                name, lambda s, m, name=name: inboxes.get(name, []).append(m)
            )
        network.send("a", "b", "x")
        network.send("a", "c", "y")
        simulator.run()
        assert inboxes["b"] == []
        assert inboxes["c"] == ["y"]

    def test_loss_fn_bad_probability_raises(self):
        simulator = Simulator()
        network = Network(simulator, loss_fn=lambda now, s, d: 1.5, rng=self.rng())
        network.register("a", lambda s, m: None)
        network.register("b", lambda s, m: None)
        with pytest.raises(ConfigurationError):
            network.send("a", "b", "x")

    def test_loss_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Network(Simulator(), loss_probability=0.5)
        with pytest.raises(ConfigurationError):
            Network(Simulator(), loss_fn=lambda now, s, d: 0.0)

    def test_loss_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(Simulator(), loss_probability=1.1, rng=self.rng())
        with pytest.raises(ConfigurationError):
            Network(Simulator(), loss_probability=-0.1, rng=self.rng())


class TestDeliveryTimerTieBreak:
    """Deliveries are scheduled with ``priority=-1`` so a message
    arriving exactly at a protocol timer's deadline is processed first
    (the ``desim/kernel.py`` contract the done-timeout relies on)."""

    def test_delivery_beats_timer_at_equal_timestamp(self, net):
        simulator, network, inboxes = net
        order = []
        network.register("c", lambda s, m: order.append("delivery"))
        simulator.schedule(0.5, lambda: order.append("timer"))
        network.send("a", "c", "x")  # default delay 0.5: same timestamp
        simulator.run()
        assert order == ["delivery", "timer"]

    def test_timer_failing_node_at_delivery_time_loses_the_race(self, net):
        """A fault injected by a timer at exactly the delivery time
        takes effect only after the delivery: the message gets through."""
        simulator, network, inboxes = net
        simulator.schedule(0.5, network.fail, "b")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == [("a", "x")]
        assert network.is_failed("b")

    def test_timer_restoring_node_at_delivery_time_is_too_late(self, net):
        """Symmetrically, a repair scheduled at exactly the delivery
        time happens after the delivery attempt: the message is lost."""
        simulator, network, inboxes = net
        network.fail("b")
        simulator.schedule(0.5, network.restore, "b")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == []
        assert not network.is_failed("b")
