"""Tests for repro.desim.network (crosslinks with fail-silence)."""

import pytest

from repro.desim.kernel import Simulator
from repro.desim.network import Network
from repro.errors import ConfigurationError, ProtocolError


@pytest.fixture
def net():
    simulator = Simulator()
    network = Network(simulator, default_delay=0.5)
    inboxes = {"a": [], "b": []}
    network.register("a", lambda src, msg: inboxes["a"].append((src, msg)))
    network.register("b", lambda src, msg: inboxes["b"].append((src, msg)))
    return simulator, network, inboxes


class TestDelivery:
    def test_message_delivered_after_delay(self, net):
        simulator, network, inboxes = net
        network.send("a", "b", "hello")
        assert inboxes["b"] == []
        simulator.run()
        assert inboxes["b"] == [("a", "hello")]
        assert simulator.now == 0.5

    def test_explicit_delay_overrides_default(self, net):
        simulator, network, inboxes = net
        network.send("a", "b", "x", delay=2.0)
        simulator.run()
        assert simulator.now == 2.0

    def test_delay_fn_used(self):
        simulator = Simulator()
        network = Network(simulator, delay_fn=lambda s, d: 3.0)
        got = []
        network.register("n", lambda s, m: got.append(m))
        network.send("n", "n", "self")
        simulator.run()
        assert simulator.now == 3.0

    def test_log_records_delivery(self, net):
        simulator, network, _ = net
        network.send("a", "b", "x")
        simulator.run()
        record = network.log[0]
        assert record.source == "a"
        assert record.time_sent == 0.0
        assert record.time_delivered == 0.5
        assert not record.dropped

    def test_unknown_destination_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ProtocolError):
            network.send("a", "ghost", "x")

    def test_duplicate_registration_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ConfigurationError):
            network.register("a", lambda s, m: None)

    def test_negative_delay_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ConfigurationError):
            network.send("a", "b", "x", delay=-1.0)


class TestFailSilence:
    def test_failed_receiver_drops_message(self, net):
        simulator, network, inboxes = net
        network.fail("b")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == []
        assert network.dropped_count() == 1

    def test_failed_sender_drops_message(self, net):
        simulator, network, inboxes = net
        network.fail("a")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == []

    def test_failure_mid_flight_drops(self, net):
        """A node that fails after the send but before delivery never
        receives -- fail-silence is evaluated at delivery time."""
        simulator, network, inboxes = net
        network.send("a", "b", "x", delay=1.0)
        simulator.schedule(0.5, network.fail, "b")
        simulator.run()
        assert inboxes["b"] == []

    def test_restore_resumes_delivery(self, net):
        simulator, network, inboxes = net
        network.fail("b")
        network.restore("b")
        network.send("a", "b", "x")
        simulator.run()
        assert inboxes["b"] == [("a", "x")]

    def test_is_failed(self, net):
        _, network, _ = net
        network.fail("a")
        assert network.is_failed("a")
        assert not network.is_failed("b")

    def test_fail_unknown_node_rejected(self, net):
        _, network, _ = net
        with pytest.raises(ConfigurationError):
            network.fail("ghost")
