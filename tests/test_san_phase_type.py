"""Tests for repro.san.phase_type (Erlang unfolding of deterministic
activities) against renewal-theory closed forms."""

import math

import pytest

from repro.analytic.distributions import Deterministic, Erlang
from repro.errors import ModelError
from repro.san import (
    Case,
    InputGate,
    Place,
    SANModel,
    TimedActivity,
    generate,
    unfold,
)


def on_off_model(up_rate=0.5, repair_time=2.0):
    """Exponential failure, deterministic repair."""
    fail = TimedActivity.exponential("fail", up_rate, input_arcs={"up": 1})
    repair = TimedActivity(
        "repair",
        Deterministic(repair_time),
        input_gates=[InputGate("down", predicate=lambda m: m["up"] == 0)],
        cases=[Case(output_arcs={"up": 1})],
    )
    return SANModel([Place("up", 1)], [fail, repair], name="on-off")


class TestOnOffAvailability:
    """M/D alternating renewal: availability = (1/l) / (1/l + d)."""

    def test_availability_converges_with_stages(self):
        lam, d = 0.5, 2.0
        expected_up = (1.0 / lam) / (1.0 / lam + d)
        space = generate(on_off_model(lam, d))
        errors = []
        for stages in (2, 8, 32):
            chain = unfold(space, stages=stages)
            probs = chain.steady_state_markings()
            up_index = space.index[(1,)]
            errors.append(abs(probs[up_index] - expected_up))
        # Mean-matched Erlang gives the exact alternating-renewal
        # availability at every stage count; convergence shows up in
        # higher moments, but the mean fraction must already be right.
        assert all(err < 1e-8 for err in errors)

    def test_probabilities_sum_to_one(self):
        space = generate(on_off_model())
        chain = unfold(space, stages=8)
        probs = chain.steady_state_markings()
        assert sum(probs.values()) == pytest.approx(1.0)


class TestErlangActivities:
    def test_explicit_erlang_keeps_its_shape(self):
        fail = TimedActivity.exponential("fail", 1.0, input_arcs={"up": 1})
        repair = TimedActivity(
            "repair",
            Erlang(3, 1.5),  # mean 2
            input_gates=[InputGate("down", predicate=lambda m: m["up"] == 0)],
            cases=[Case(output_arcs={"up": 1})],
        )
        model = SANModel([Place("up", 1)], [fail, repair])
        space = generate(model)
        chain = unfold(space, stages=99)  # stages ignored for Erlang
        # up: mean 1; down: mean 2 -> availability 1/3.
        probs = chain.steady_state_markings()
        assert probs[space.index[(1,)]] == pytest.approx(1.0 / 3.0, abs=1e-9)

    def test_stage_count_controls_state_space(self):
        space = generate(on_off_model())
        small = unfold(space, stages=2)
        large = unfold(space, stages=16)
        assert len(large.states) > len(small.states)


class TestMD1Queue:
    def test_md1_mean_queue_matches_pollaczek_khinchine(self):
        """M/D/1 mean queue length L = rho + rho^2/(2(1-rho)); the
        Erlang unfolding must approach it as stages grow."""
        lam, d = 0.4, 1.0
        rho = lam * d
        expected = rho + rho * rho / (2.0 * (1.0 - rho))
        capacity = 40  # large enough to emulate an infinite queue

        arrive = TimedActivity.exponential(
            "arrive",
            lam,
            input_gates=[
                InputGate("room", predicate=lambda m: m["queue"] < capacity)
            ],
            cases=[Case(output_arcs={"queue": 1})],
        )
        serve = TimedActivity(
            "serve", Deterministic(d), input_arcs={"queue": 1}
        )
        space = generate(SANModel([Place("queue", 0)], [arrive, serve]))
        chain = unfold(space, stages=40)
        probs = chain.steady_state_markings()
        mean_queue = sum(
            space.markings[idx][0] * p for idx, p in probs.items()
        )
        # The serve timer restarts per customer (input arc holds the
        # token), matching M/D/1 service semantics.
        assert mean_queue == pytest.approx(expected, rel=0.03)


class TestValidation:
    def test_exponential_only_model_passes_through(self):
        fail = TimedActivity.exponential("fail", 1.0, input_arcs={"up": 1})
        space = generate(SANModel([Place("up", 1)], [fail]))
        chain = unfold(space, stages=4)
        assert len(chain.states) == len(space)

    def test_rejects_bad_stage_count(self):
        space = generate(on_off_model())
        with pytest.raises(ModelError):
            unfold(space, stages=0)

    def test_rejects_unsupported_distribution(self):
        from repro.analytic.distributions import Uniform

        odd = TimedActivity("odd", Uniform(0.0, 1.0), input_arcs={"p": 1})
        space = generate(SANModel([Place("p", 1)], [odd]))
        with pytest.raises(ModelError):
            unfold(space, stages=4)
