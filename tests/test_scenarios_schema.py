"""Scenario-case schema: validation, canonical JSON, round-trips and
the corpus directory format."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.scenarios.schema import (
    CHECKS,
    SCHEMA_VERSION,
    CorpusMetadata,
    ScenarioCase,
    case_from_dict,
    case_to_dict,
    dump_case,
    dumps_canonical,
    load_case,
    read_corpus,
    write_corpus,
)


def make_case(**overrides):
    base = dict(case_id="case-0000", family="test")
    base.update(overrides)
    return ScenarioCase(**base)


class TestScenarioCaseValidation:
    def test_reference_defaults_are_valid(self):
        case = make_case()
        assert case.planes == 7
        assert case.active_per_plane == 14
        assert case.samples == 20000

    def test_rejects_unknown_duration_model(self):
        with pytest.raises(ConfigurationError, match="duration model"):
            make_case(duration_model="weibull")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="scheme"):
            make_case(scheme="XYZ")

    def test_rejects_unknown_check(self):
        with pytest.raises(ConfigurationError, match="unknown checks"):
            make_case(checks=("analytic_vs_mc", "nonsense"))

    def test_fault_campaign_requires_plan(self):
        with pytest.raises(ConfigurationError, match="fault_plan"):
            make_case(checks=("fault_campaign",))

    def test_rejects_triple_coverage(self):
        # Tc * k > 2 theta: more than pairwise footprint overlap.
        with pytest.raises(ConfigurationError, match="pairwise"):
            make_case(coverage_time_minutes=15.0)

    def test_rejects_fault_capacity_above_active(self):
        with pytest.raises(ConfigurationError, match="fault_capacity"):
            make_case(active_per_plane=8, fault_capacity=9,
                      deployment_threshold=6)

    def test_samples_clamped(self):
        tiny = make_case(traffic_signals_per_hour=0.001,
                         observation_hours=1.0)
        assert tiny.samples == tiny.min_samples
        huge = make_case(traffic_signals_per_hour=1e6,
                         observation_hours=1e3)
        assert huge.samples == huge.max_samples

    def test_with_replaces_and_revalidates(self):
        case = make_case()
        changed = case.with_(deadline_minutes=3.0)
        assert changed.deadline_minutes == 3.0
        with pytest.raises(ConfigurationError):
            case.with_(deadline_minutes=-1.0)


class TestCaseRoundTrip:
    def test_plain_round_trip(self):
        case = make_case()
        assert case_from_dict(case_to_dict(case)) == case
        assert load_case(dump_case(case)) == case

    def test_fault_plan_round_trip(self):
        case = make_case(
            fault_plan=FaultPlan.successors_fail_silent(0.0, count=1),
            checks=("fault_campaign",),
        )
        again = load_case(dump_case(case))
        assert again == case
        assert again.fault_plan == case.fault_plan

    def test_dump_is_canonical(self):
        case = make_case()
        text = dump_case(case)
        assert text.endswith("\n")
        assert text == dumps_canonical(json.loads(text))

    def test_rejects_wrong_schema_version(self):
        data = case_to_dict(make_case())
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="schema_version"):
            case_from_dict(data)

    def test_rejects_unknown_field(self):
        data = case_to_dict(make_case())
        data["bogus"] = 1
        with pytest.raises(ConfigurationError, match="unknown case fields"):
            case_from_dict(data)

    # Satellite property test: serialization round-trips over a
    # randomized (but always-valid) slice of the case space, including
    # every duration model, scheme and check subset.
    @settings(max_examples=60, deadline=None)
    @given(
        deadline=st.floats(min_value=0.5, max_value=20.0),
        mu=st.floats(min_value=0.05, max_value=2.0),
        nu=st.floats(min_value=1.0, max_value=80.0),
        lam=st.floats(min_value=1e-7, max_value=1e-3),
        active=st.integers(min_value=3, max_value=16),
        spares=st.integers(min_value=0, max_value=3),
        duration_model=st.sampled_from(
            ("exponential", "hyperexponential", "deterministic")
        ),
        scheme=st.sampled_from(("OAQ", "BAQ")),
        checks=st.sets(
            st.sampled_from(
                tuple(c for c in CHECKS if c != "fault_campaign")
            ),
            min_size=1,
        ),
        mc_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_round_trip(
        self, deadline, mu, nu, lam, active, spares, duration_model,
        scheme, checks, mc_seed,
    ):
        case = make_case(
            deadline_minutes=deadline,
            signal_termination_rate=mu,
            computation_rate=nu,
            failure_rate_per_hour=lam,
            active_per_plane=active,
            in_orbit_spares=spares,
            deployment_threshold=max(2, active - 2),
            fault_capacity=min(9, active),
            coverage_time_minutes=min(9.0, 0.9 * 2 * 90.0 / active),
            duration_model=duration_model,
            scheme=scheme,
            checks=tuple(sorted(checks)),
            mc_seed=mc_seed,
        )
        assert load_case(dump_case(case)) == case
        # Canonical text is a fixed point: dump(load(dump(x))) == dump(x).
        assert dump_case(load_case(dump_case(case))) == dump_case(case)


class TestCorpusMetadata:
    def test_round_trip_preserves_family_order(self):
        metadata = CorpusMetadata(
            name="m", seed=3, n_cells=5,
            families=(("zeta", 3), ("alpha", 2)),
        )
        again = CorpusMetadata.from_dict(
            json.loads(dumps_canonical(metadata.to_dict()))
        )
        assert again.families == (("zeta", 3), ("alpha", 2))
        assert again == metadata

    def test_rejects_wrong_version(self):
        data = CorpusMetadata(
            name="m", seed=3, n_cells=1, families=(("f", 1),)
        ).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema_version"):
            CorpusMetadata.from_dict(data)


class TestCorpusDirectory:
    def _corpus(self):
        cases = [make_case(case_id=f"test-{i:04d}") for i in range(3)]
        metadata = CorpusMetadata(
            name="unit", seed=0, n_cells=3, families=(("test", 3),)
        )
        return metadata, cases

    def test_write_read_round_trip(self, tmp_path):
        metadata, cases = self._corpus()
        write_corpus(str(tmp_path), metadata, cases)
        again_meta, again_cases = read_corpus(str(tmp_path))
        assert again_meta == metadata
        assert again_cases == cases

    def test_write_rejects_duplicate_ids(self, tmp_path):
        metadata, cases = self._corpus()
        cases[1] = cases[0]
        with pytest.raises(ConfigurationError, match="duplicate case ids"):
            write_corpus(str(tmp_path), metadata, cases)

    def test_write_rejects_count_mismatch(self, tmp_path):
        metadata, cases = self._corpus()
        with pytest.raises(ConfigurationError, match="cells"):
            write_corpus(str(tmp_path), metadata, cases[:2])

    def test_read_rejects_renamed_case_file(self, tmp_path):
        metadata, cases = self._corpus()
        write_corpus(str(tmp_path), metadata, cases)
        cases_dir = tmp_path / "cases"
        (cases_dir / "test-0000.json").rename(cases_dir / "other.json")
        with pytest.raises(ConfigurationError, match="case_id"):
            read_corpus(str(tmp_path))

    def test_read_rejects_missing_metadata(self, tmp_path):
        with pytest.raises(ConfigurationError, match="metadata"):
            read_corpus(str(tmp_path))
