"""Tests for the experiment harness: every experiment regenerates its
table/figure with the paper's qualitative shape."""

import pytest

from repro.core.qos import QoSLevel
from repro.experiments import (
    fig7,
    fig8,
    fig9,
    geometry_exp,
    sweeps,
    table1,
    text_results,
)
from repro.experiments.report import ExperimentResult, format_table
from repro.experiments.san_ablation import total_variation


FAST_LAMBDAS = (1e-5, 5e-5, 1e-4)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            "demo", ["a", "b"], [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        )
        assert "demo" in text
        assert "0.5000" in text

    def test_experiment_result_render_and_column(self):
        result = ExperimentResult(
            "x", "title", ["c"], [{"c": 1}, {"c": 2}], notes=["n"]
        )
        assert result.column("c") == [1, 2]
        assert "note: n" in result.render()


class TestTable1:
    def test_matches_paper_structure(self):
        result = table1.run()
        for row in result.rows:
            if row["I[k]"] == 1:
                assert row["Y=3 simultaneous dual"] == "x"
                assert row["Y=2 sequential dual"] == ""
                assert row["Y=0 missing"] == ""
            else:
                assert row["Y=3 simultaneous dual"] == ""
                assert row["Y=2 sequential dual"] == "x"
                assert row["Y=0 missing"] == "x"
            assert row["Y=1 single"] == "x"

    def test_transition_at_k11(self):
        result = table1.run()
        indicator = {row["k"]: row["I[k]"] for row in result.rows}
        assert indicator[10] == 0
        assert indicator[11] == 1


class TestGeometryExperiment:
    def test_m_bound_is_two_at_tau5(self):
        result = geometry_exp.run()
        for row in result.rows:
            if row["I[k]"] == 0 and row["L2[k]"] < 5.0:
                assert row["M[k] (tau=5.0)"] == 2


class TestTextAnchors:
    def test_all_anchors_within_tolerance(self):
        result = text_results.run(stages=16)
        for row in result.rows:
            paper = float(row["paper"])
            measured = float(row["measured"])
            assert measured == pytest.approx(paper, abs=0.04), row["anchor"]


class TestFig7:
    def test_shape(self):
        result = fig7.run(lambda_grid=FAST_LAMBDAS, stages=16)
        first, last = result.rows[0], result.rows[-1]
        # P(14) dominates at 1e-5, P(10) at 1e-4.
        assert first["P(K=14)"] == max(
            first[f"P(K={k})"] for k in range(9, 15)
        )
        assert last["P(K=10)"] == max(
            last[f"P(K={k})"] for k in range(9, 15)
        )
        assert last["P(K=9)"] < 0.2


class TestFig8:
    def test_shape(self):
        result = fig8.run(lambda_grid=FAST_LAMBDAS, stages=16)
        for row in result.rows:
            # BAQ is mu-invariant; OAQ gains when mu falls.
            assert row["BAQ (mu=0.2)"] == pytest.approx(row["BAQ (mu=0.5)"])
            assert row["OAQ (mu=0.2)"] > row["OAQ (mu=0.5)"]
            assert row["OAQ (mu=0.5)"] > row["BAQ (mu=0.5)"]


class TestFig9:
    def test_shape(self):
        result = fig9.run(lambda_grid=FAST_LAMBDAS, stages=16)
        for row in result.rows:
            # P(Y>=1) ~ 1 for both; OAQ dominates BAQ at each level.
            assert row["OAQ P(Y>=1)"] == pytest.approx(1.0, abs=0.005)
            assert row["BAQ P(Y>=1)"] == pytest.approx(1.0, abs=0.005)
            for level in (1, 2, 3):
                assert (
                    row[f"OAQ P(Y>={level})"]
                    >= row[f"BAQ P(Y>={level})"] - 1e-12
                )

    def test_paper_endpoint_anchors(self):
        result = fig9.run(lambda_grid=(1e-5, 1e-4), stages=24)
        low, high = result.rows
        assert low["OAQ P(Y>=2)"] == pytest.approx(0.75, abs=0.03)
        assert low["BAQ P(Y>=2)"] == pytest.approx(0.33, abs=0.03)
        assert high["OAQ P(Y>=2)"] == pytest.approx(0.41, abs=0.04)
        assert high["BAQ P(Y>=2)"] == pytest.approx(0.04, abs=0.02)


class TestSweeps:
    def test_tau_sweep_monotone_for_oaq(self):
        result = sweeps.run_tau_sweep(taus=(1.0, 3.0, 6.0), stages=12)
        oaq = [row["OAQ P(Y>=2)"] for row in result.rows]
        baq = [row["BAQ P(Y>=2)"] for row in result.rows]
        assert oaq == sorted(oaq)
        # BAQ saturates once the computation fits: flat across taus.
        assert max(baq) - min(baq) < 0.01

    def test_mu_sweep_monotone_for_oaq(self):
        result = sweeps.run_mu_sweep(mean_durations=(1.0, 4.0, 10.0), stages=12)
        oaq = [row["OAQ P(Y>=2)"] for row in result.rows]
        baq = [row["BAQ P(Y>=2)"] for row in result.rows]
        assert oaq == sorted(oaq)
        assert max(baq) - min(baq) < 0.01


class TestAblationHelpers:
    def test_total_variation(self):
        assert total_variation({1: 0.5, 2: 0.5}, {1: 0.5, 2: 0.5}) == 0.0
        assert total_variation({1: 1.0}, {2: 1.0}) == 1.0


class TestScaledCapacity:
    def test_scaled_rows_and_shape(self):
        from repro.experiments import scaled_capacity_exp

        result = scaled_capacity_exp.run(scales=(1, 2))
        assert result.headers[:3] == ["scale", "satellites", "orbit reps"]
        assert [row["satellites"] for row in result.rows] == [14, 28]
        assert [row["orbit reps"] for row in result.rows] == [17, 33]
        for row in result.rows:
            assert 0.0 < row["P(K>=eta)"] <= 1.0
            assert row["E[K]"] <= row["satellites"]
        # Scaling preserves the per-satellite failure process, so the
        # normalised expected capacity stays put.
        normalised = [
            row["E[K]"] / row["satellites"] for row in result.rows
        ]
        assert normalised[1] == pytest.approx(normalised[0], abs=0.01)


class TestProfiledRuns:
    def test_run_experiment_dumps_pstats(self, tmp_path):
        import pstats

        from repro.experiments import geometry_exp
        from repro.experiments.__main__ import run_experiment

        result = run_experiment(
            geometry_exp.run, profile=True, profile_dir=str(tmp_path)
        )
        assert isinstance(result, ExperimentResult)
        path = tmp_path / f"profile_{result.experiment_id}.pstats"
        assert path.exists()
        assert pstats.Stats(str(path)).total_calls > 0

    def test_run_experiment_without_profile_writes_nothing(self, tmp_path):
        from repro.experiments import geometry_exp
        from repro.experiments.__main__ import run_experiment

        run_experiment(geometry_exp.run, profile=False, profile_dir=str(tmp_path))
        assert list(tmp_path.iterdir()) == []
