"""Integration: group membership improving the OAQ protocol's achieved
QoS under satellite failures.

The membership service (Section 5 extension) tells each satellite who
is still alive, so the coordination chain skips failed peers instead of
waiting out a timeout on them.  This test quantifies the benefit on the
scenario where it matters: an underlapping plane with a generous
deadline, where the second visitor is dead but the *third* could still
serve the signal in time.
"""

import pytest

from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.protocol import CenterlineScenario


@pytest.fixture
def params():
    # tau = 12 > L1 = 10: the third visitor (arriving ~11.5 min after
    # detection) is still inside the window of opportunity.
    return EvaluationParams(
        deadline_minutes=12.0, signal_termination_rate=0.05
    )


@pytest.fixture
def geometry(params):
    return params.constellation.plane_geometry(9)


SCENARIO = dict(onset_position=8.5, signal_duration=30.0, seed=7)


def membership_next_peer(failed: set):
    """Peer selection from a (converged) membership view: the next
    *live* satellite in visit order."""

    def next_peer(name: str):
        index = int(name[1:])
        for candidate_index in range(index + 1, index + 6):
            candidate = f"S{candidate_index}"
            if candidate not in failed:
                return candidate
        return None

    return next_peer


class TestMembershipInformedCoordination:
    def test_baseline_without_failure_reaches_level2(self, geometry, params):
        outcome = CenterlineScenario(geometry, params, **SCENARIO).run(
            horizon=40.0
        )
        assert outcome.achieved_level is QoSLevel.SEQUENTIAL_DUAL

    def test_naive_peer_selection_loses_the_opportunity(self, geometry, params):
        """Without membership knowledge, S1 invites the dead S2 and the
        timeout delivers only a single-coverage result."""
        outcome = CenterlineScenario(
            geometry, params, fail_silent={"S2": 0.0}, **SCENARIO
        ).run(horizon=40.0)
        assert outcome.achieved_level is QoSLevel.SINGLE

    def test_membership_view_recovers_level2(self, geometry, params):
        """With the failed satellite excluded from the view, S1 invites
        S3 directly; S3's pass is still inside the deadline, so the
        sequential dual coverage survives the failure."""
        outcome = CenterlineScenario(
            geometry,
            params,
            fail_silent={"S2": 0.0},
            next_peer_override=membership_next_peer({"S2"}),
            **SCENARIO,
        ).run(horizon=40.0)
        assert outcome.achieved_level is QoSLevel.SEQUENTIAL_DUAL
        assert outcome.official_alert.chain == ("S1", "S3")
        assert outcome.alert_latency <= params.tau + 1e-9
