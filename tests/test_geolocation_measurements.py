"""Tests for repro.geolocation.measurements."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geolocation.measurements import (
    SPEED_OF_LIGHT_KM_S,
    Emitter,
    Measurement,
    MeasurementGenerator,
    range_km,
    range_rate_km_s,
    received_frequency_hz,
)
from repro.orbits import build_reference_constellation
from repro.orbits.frames import GeodeticPoint, geodetic_to_ecef, subsatellite_point


@pytest.fixture(scope="module")
def constellation():
    return build_reference_constellation()


@pytest.fixture
def emitter():
    return Emitter(GeodeticPoint.from_degrees(2.0, 3.0), 900.0e6)


class TestPhysics:
    def test_range_is_euclidean(self):
        satellite = np.array([7000.0, 0.0, 0.0])
        emitter_ecef = np.array([6378.0, 0.0, 0.0])
        assert range_km(satellite, emitter_ecef) == pytest.approx(622.0)

    def test_range_rate_sign_convention(self):
        emitter_ecef = np.array([6378.0, 0.0, 0.0])
        satellite = np.array([7000.0, 0.0, 0.0])
        receding = np.array([7.0, 0.0, 0.0])
        approaching = -receding
        assert range_rate_km_s(satellite, receding, emitter_ecef) > 0
        assert range_rate_km_s(satellite, approaching, emitter_ecef) < 0

    def test_received_frequency_shift_magnitude(self):
        """LEO range rates (~7 km/s) shift 900 MHz by ~20 kHz."""
        emitter_ecef = np.array([6378.0, 0.0, 0.0])
        satellite = np.array([6378.0, 500.0, 0.0])
        velocity = np.array([0.0, 7.5, 0.0])  # receding along-track
        received = received_frequency_hz(satellite, velocity, emitter_ecef, 900e6)
        shift = received - 900e6
        assert shift == pytest.approx(-900e6 * 7.5 / SPEED_OF_LIGHT_KM_S)
        assert abs(shift) > 1e4

    def test_zero_range_rejected(self):
        point = np.array([6378.0, 0.0, 0.0])
        with pytest.raises(ConfigurationError):
            range_rate_km_s(point, np.zeros(3), point)

    def test_overhead_pass_crosses_zero_doppler(self, constellation):
        """The classic S-curve: approaching (f > f0), overhead (f ~ f0),
        receding (f < f0)."""
        satellite = constellation.satellites[0]
        target = subsatellite_point(satellite.position_ecef(0.0))
        emitter = Emitter(target, 900e6)
        generator = MeasurementGenerator(emitter, doppler_sigma_hz=1e-6)
        rng = np.random.default_rng(0)
        before, overhead, after = generator.observe(
            satellite, [-120.0, 0.0, 120.0], rng
        )
        assert before.value > 900e6
        assert after.value < 900e6
        assert abs(overhead.value - 900e6) < abs(before.value - 900e6)


class TestMeasurementGenerator:
    def test_visibility_filter(self, constellation):
        satellite = constellation.satellites[0]
        target = subsatellite_point(satellite.position_ecef(0.0))
        emitter = Emitter(target, 900e6)
        generator = MeasurementGenerator(
            emitter, footprint_half_angle=constellation.footprint.half_angle
        )
        rng = np.random.default_rng(1)
        # Overhead now, far away half an orbit later.
        visible = generator.observe(satellite, [0.0], rng)
        hidden = generator.observe(satellite, [2700.0], rng)
        assert len(visible) == 1
        assert len(hidden) == 0

    def test_noise_statistics(self, constellation):
        satellite = constellation.satellites[0]
        target = subsatellite_point(satellite.position_ecef(0.0))
        emitter = Emitter(target, 900e6)
        generator = MeasurementGenerator(emitter, doppler_sigma_hz=5.0)
        rng = np.random.default_rng(2)
        values = [
            generator.observe(satellite, [0.0], rng)[0].value for _ in range(800)
        ]
        assert np.std(values) == pytest.approx(5.0, rel=0.15)

    def test_range_measurements(self, constellation):
        satellite = constellation.satellites[0]
        emitter = Emitter(GeodeticPoint.from_degrees(0.0, 0.0), 900e6)
        generator = MeasurementGenerator(emitter, range_sigma_km=0.5)
        rng = np.random.default_rng(3)
        (measurement,) = generator.observe(satellite, [0.0], rng, kind="range")
        truth = range_km(
            satellite.position_ecef(0.0), geodetic_to_ecef(emitter.location)
        )
        assert measurement.kind == "range"
        assert measurement.value == pytest.approx(truth, abs=3.0)

    def test_unknown_kind_rejected(self, constellation):
        emitter = Emitter(GeodeticPoint.from_degrees(0.0, 0.0))
        generator = MeasurementGenerator(emitter)
        with pytest.raises(ConfigurationError):
            generator.observe(
                constellation.satellites[0], [0.0], np.random.default_rng(0), kind="tdoa"
            )

    def test_measurement_validation(self):
        with pytest.raises(ConfigurationError):
            Measurement(
                kind="doppler",
                time_s=0.0,
                satellite_position_ecef=np.zeros(3),
                satellite_velocity_ecef=np.zeros(3),
                value=1.0,
                sigma=0.0,
            )

    def test_emitter_validation(self):
        with pytest.raises(ConfigurationError):
            Emitter(GeodeticPoint.from_degrees(0, 0), frequency_hz=0.0)
