"""Seeded corpus generation: determinism, allocation, family
independence and parallel byte-identity."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.generator import (
    FAMILIES,
    _allocate,
    generate_corpus,
    generate_from_metadata,
)
from repro.scenarios.schema import dump_case


def texts(cases):
    return [dump_case(case) for case in cases]


class TestAllocation:
    def test_even_split(self):
        assert _allocate(6, ["a", "b", "c"]) == [("a", 2), ("b", 2), ("c", 2)]

    def test_remainder_goes_to_earliest(self):
        assert _allocate(7, ["a", "b", "c"]) == [("a", 3), ("b", 2), ("c", 2)]

    def test_fewer_cells_than_families(self):
        assert _allocate(2, ["a", "b", "c"]) == [("a", 1), ("b", 1), ("c", 0)]


class TestDeterminism:
    def test_rerun_is_byte_identical(self):
        _, first = generate_corpus(12, seed=31)
        _, second = generate_corpus(12, seed=31)
        assert texts(first) == texts(second)

    def test_different_seed_differs(self):
        _, first = generate_corpus(12, seed=31)
        _, second = generate_corpus(12, seed=32)
        assert texts(first) != texts(second)

    # Satellite property: n_jobs must not change a single byte.
    def test_n_jobs_byte_identical(self):
        meta1, serial = generate_corpus(12, seed=31, n_jobs=1)
        meta2, parallel = generate_corpus(12, seed=31, n_jobs=3)
        assert texts(serial) == texts(parallel)
        assert meta1.to_dict() == meta2.to_dict()

    def test_family_subset_independent(self):
        """A family's cases depend only on (seed, family, index), not on
        which other families were requested."""
        _, full = generate_corpus(12, seed=31)
        _, subset = generate_corpus(4, seed=31, families=["spare-policy"])
        full_family = [c for c in full if c.family == "spare-policy"]
        assert texts(subset)[: len(full_family)] == texts(full_family)

    def test_case_ids_positional(self):
        _, cases = generate_corpus(13, seed=5)
        for family, count in _allocate(13, list(FAMILIES)):
            ids = [c.case_id for c in cases if c.family == family]
            assert ids == [f"{family}-{i:04d}" for i in range(count)]

    def test_regeneration_from_metadata(self):
        metadata, cases = generate_corpus(9, seed=77)
        again_meta, again = generate_from_metadata(metadata)
        assert texts(again) == texts(cases)
        assert again_meta.to_dict() == metadata.to_dict()


class TestValidationAndCoverage:
    def test_all_families_produce_valid_cases(self):
        # ScenarioCase.__post_init__ validates everything (including
        # the solver configs), so surviving generation is the assertion.
        _, cases = generate_corpus(48, seed=11)
        families = {case.family for case in cases}
        assert families == set(FAMILIES)

    def test_fault_mix_cells_carry_plans(self):
        _, cases = generate_corpus(48, seed=11)
        fault_cells = [c for c in cases if c.family == "fault-mix"]
        assert fault_cells
        for case in fault_cells:
            assert case.fault_plan is not None
            assert case.checks == ("fault_campaign",)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            generate_corpus(0, seed=1)
        with pytest.raises(ConfigurationError):
            generate_corpus(4, seed=-1)
        with pytest.raises(ConfigurationError):
            generate_corpus(4, seed=1, n_jobs=0)
        with pytest.raises(ConfigurationError):
            generate_corpus(4, seed=1, families=["no-such-family"])
        with pytest.raises(ConfigurationError):
            generate_corpus(4, seed=1, families=["fault-mix", "fault-mix"])

    def test_git_provenance_off_by_default(self):
        metadata, _ = generate_corpus(2, seed=1, families=["small-exact"])
        assert metadata.git_describe is None
