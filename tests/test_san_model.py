"""Tests for repro.san.model and repro.san.marking."""

import pytest

from repro.errors import ModelError
from repro.san import (
    Case,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
    TimedActivity,
)
from repro.san.marking import MarkingView, PlaceIndex


class TestPlaceIndex:
    def test_positions(self):
        index = PlaceIndex(["a", "b", "c"])
        assert index.position("b") == 1
        assert "c" in index
        assert "z" not in index

    def test_rejects_duplicates(self):
        with pytest.raises(ModelError):
            PlaceIndex(["a", "a"])

    def test_unknown_place_raises(self):
        index = PlaceIndex(["a"])
        with pytest.raises(ModelError):
            index.position("missing")


class TestMarkingView:
    def test_read_write(self):
        view = MarkingView(PlaceIndex(["a", "b"]), (3, 0))
        assert view["a"] == 3
        view["b"] = 5
        assert view.freeze() == (3, 5)

    def test_add_remove(self):
        view = MarkingView(PlaceIndex(["a"]), (3,))
        view.add("a", 2)
        view.remove("a", 4)
        assert view["a"] == 1

    def test_rejects_negative_tokens(self):
        view = MarkingView(PlaceIndex(["a"]), (1,))
        with pytest.raises(ModelError):
            view.remove("a", 2)

    def test_as_dict(self):
        view = MarkingView(PlaceIndex(["x", "y"]), (1, 2))
        assert view.as_dict() == {"x": 1, "y": 2}


def simple_model():
    """One place drained by a timed activity behind a gate."""
    drain = TimedActivity.exponential(
        "drain",
        1.0,
        input_arcs={"tokens": 1},
        input_gates=[InputGate("gate", predicate=lambda m: m["tokens"] >= 2)],
    )
    return SANModel([Place("tokens", 3)], [drain])


class TestEnablingAndFiring:
    def test_input_arcs_gate_enabling(self):
        model = simple_model()
        assert model.enabled_timed((3,))  # gate: tokens >= 2
        assert not model.enabled_timed((1,))

    def test_firing_consumes_and_produces(self):
        produce = TimedActivity.exponential(
            "move",
            1.0,
            input_arcs={"src": 2},
            cases=[Case(output_arcs={"dst": 1})],
        )
        model = SANModel([Place("src", 4), Place("dst", 0)], [produce])
        marking = produce.fire(model.place_index, (4, 0), 0)
        assert marking == (2, 1)

    def test_output_gate_function_applied(self):
        reset = TimedActivity.exponential(
            "reset",
            1.0,
            input_gates=[InputGate("always", predicate=lambda m: True)],
            cases=[
                Case(
                    output_gates=[
                        OutputGate("zero", lambda m: m.__setitem__("x", 0))
                    ]
                )
            ],
        )
        model = SANModel([Place("x", 7)], [reset])
        assert reset.fire(model.place_index, (7,), 0) == (0,)

    def test_marking_dependent_rate(self):
        activity = TimedActivity.exponential(
            "fail", lambda m: 0.5 * m["x"], input_arcs={"x": 1}
        )
        model = SANModel([Place("x", 4)], [activity])
        dist = activity.distribution_in(model.place_index, (4,))
        assert dist.rate == pytest.approx(2.0)

    def test_case_probabilities_must_sum_to_one(self):
        broken = InstantaneousActivity(
            "choice",
            input_arcs={"x": 1},
            cases=[Case(probability=0.6), Case(probability=0.6)],
        )
        model = SANModel([Place("x", 1)], [], [broken])
        with pytest.raises(ModelError):
            broken.case_probabilities(model.place_index, (1,))

    def test_marking_dependent_case_probability(self):
        activity = InstantaneousActivity(
            "choice",
            input_arcs={"x": 1},
            cases=[
                Case(probability=lambda m: 1.0 if m["x"] > 1 else 0.0),
                Case(probability=lambda m: 0.0 if m["x"] > 1 else 1.0),
            ],
        )
        model = SANModel([Place("x", 3)], [], [activity])
        assert activity.case_probabilities(model.place_index, (3,)) == [1.0, 0.0]


class TestModelValidation:
    def test_rejects_duplicate_activity_names(self):
        a = TimedActivity.exponential("x", 1.0, input_arcs={"p": 1})
        b = TimedActivity.exponential("x", 2.0, input_arcs={"p": 1})
        with pytest.raises(ModelError):
            SANModel([Place("p", 1)], [a, b])

    def test_rejects_unknown_place_in_arc(self):
        a = TimedActivity.exponential("x", 1.0, input_arcs={"nope": 1})
        with pytest.raises(ModelError):
            SANModel([Place("p", 1)], [a])

    def test_rejects_unknown_place_in_case(self):
        a = TimedActivity.exponential(
            "x", 1.0, input_arcs={"p": 1}, cases=[Case(output_arcs={"nope": 1})]
        )
        with pytest.raises(ModelError):
            SANModel([Place("p", 1)], [a])

    def test_rejects_zero_multiplicity_arc(self):
        with pytest.raises(ModelError):
            TimedActivity.exponential("x", 1.0, input_arcs={"p": 0})

    def test_initial_marking(self):
        model = simple_model()
        assert model.initial_marking() == (3,)
