"""Tests for repro.simulation.qos_montecarlo -- the rule-based sampler
must agree with the closed-form model."""

import numpy as np
import pytest

from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.simulation.qos_montecarlo import (
    sample_qos_level,
    simulate_conditional_distribution,
)


@pytest.fixture
def params():
    return EvaluationParams(signal_termination_rate=0.2)


class TestSampler:
    def test_levels_respect_table1_overlap(self, params):
        geometry = params.constellation.plane_geometry(12)
        rng = np.random.default_rng(0)
        levels = {
            sample_qos_level(geometry, params, Scheme.OAQ, rng)
            for _ in range(3000)
        }
        assert levels <= {QoSLevel.SIMULTANEOUS_DUAL, QoSLevel.SINGLE}
        assert QoSLevel.SIMULTANEOUS_DUAL in levels

    def test_levels_respect_table1_underlap(self, params):
        geometry = params.constellation.plane_geometry(9)
        rng = np.random.default_rng(1)
        levels = {
            sample_qos_level(geometry, params, Scheme.OAQ, rng)
            for _ in range(5000)
        }
        assert levels == {
            QoSLevel.SEQUENTIAL_DUAL,
            QoSLevel.SINGLE,
            QoSLevel.MISSED,
        }

    def test_baq_never_samples_level2(self, params):
        geometry = params.constellation.plane_geometry(9)
        rng = np.random.default_rng(2)
        for _ in range(3000):
            level = sample_qos_level(geometry, params, Scheme.BAQ, rng)
            assert level is not QoSLevel.SEQUENTIAL_DUAL


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize("k", [9, 10, 12, 14])
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_distribution_matches_analytic(self, params, k, scheme):
        geometry = params.constellation.plane_geometry(k)
        analytic = conditional_distribution(geometry, params, scheme)
        simulated = simulate_conditional_distribution(
            geometry, params, scheme, samples=40_000, seed=123
        )
        for level in QoSLevel:
            assert simulated[level] == pytest.approx(analytic[level], abs=0.012)

    def test_mu_05_anchor(self):
        """The simulated P(Y=3|12) hits the paper's 0.44 anchor."""
        params = EvaluationParams(signal_termination_rate=0.5)
        geometry = params.constellation.plane_geometry(12)
        simulated = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=60_000, seed=7
        )
        assert simulated[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(0.444, abs=0.01)

    def test_seed_reproducibility(self, params):
        geometry = params.constellation.plane_geometry(9)
        a = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=2000, seed=99
        )
        b = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=2000, seed=99
        )
        assert a == b

    def test_rejects_zero_samples(self, params):
        geometry = params.constellation.plane_geometry(9)
        with pytest.raises(ConfigurationError):
            simulate_conditional_distribution(
                geometry, params, Scheme.OAQ, samples=0
            )


class TestVectorisedSampler:
    @pytest.mark.parametrize("k", [9, 10, 12, 14])
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_vectorized_agrees_with_scalar_rules(self, params, k, scheme):
        """The numpy path and the scalar specification are two
        implementations of the same rules."""
        geometry = params.constellation.plane_geometry(k)
        fast = simulate_conditional_distribution(
            geometry, params, scheme, samples=40_000, seed=5, vectorized=True
        )
        slow = simulate_conditional_distribution(
            geometry, params, scheme, samples=40_000, seed=5, vectorized=False
        )
        for level in QoSLevel:
            assert fast[level] == pytest.approx(slow[level], abs=0.012)

    def test_vectorized_matches_closed_form(self, params):
        from repro.analytic.qos_model import conditional_distribution

        geometry = params.constellation.plane_geometry(12)
        analytic = conditional_distribution(geometry, params, Scheme.OAQ)
        fast = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=200_000, seed=6
        )
        assert fast[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(
            analytic[QoSLevel.SIMULTANEOUS_DUAL], abs=0.005
        )
