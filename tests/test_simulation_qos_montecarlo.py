"""Tests for repro.simulation.qos_montecarlo -- the rule-based sampler
must agree with the closed-form model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.simulation.qos_montecarlo import (
    classify_qos_levels,
    draw_signal_variates,
    sample_qos_level,
    simulate_conditional_distribution,
    simulate_conditional_distribution_protocol,
    simulate_paired_conditional_distributions,
)


class _ScriptedGenerator:
    """A generator stub feeding ``sample_qos_level`` a prescribed
    ``(onset, duration, computation)`` triple, so the scalar rules can
    be evaluated on exactly the same inputs as the vectorised ones."""

    def __init__(self, onset, duration, computation):
        self._uniform = [onset]
        self._exponential = [duration, computation]

    def uniform(self, low, high):
        return self._uniform.pop(0)

    def exponential(self, scale):
        return self._exponential.pop(0)


@pytest.fixture
def params():
    return EvaluationParams(signal_termination_rate=0.2)


class TestSampler:
    def test_levels_respect_table1_overlap(self, params):
        geometry = params.constellation.plane_geometry(12)
        rng = np.random.default_rng(0)
        levels = {
            sample_qos_level(geometry, params, Scheme.OAQ, rng)
            for _ in range(3000)
        }
        assert levels <= {QoSLevel.SIMULTANEOUS_DUAL, QoSLevel.SINGLE}
        assert QoSLevel.SIMULTANEOUS_DUAL in levels

    def test_levels_respect_table1_underlap(self, params):
        geometry = params.constellation.plane_geometry(9)
        rng = np.random.default_rng(1)
        levels = {
            sample_qos_level(geometry, params, Scheme.OAQ, rng)
            for _ in range(5000)
        }
        assert levels == {
            QoSLevel.SEQUENTIAL_DUAL,
            QoSLevel.SINGLE,
            QoSLevel.MISSED,
        }

    def test_baq_never_samples_level2(self, params):
        geometry = params.constellation.plane_geometry(9)
        rng = np.random.default_rng(2)
        for _ in range(3000):
            level = sample_qos_level(geometry, params, Scheme.BAQ, rng)
            assert level is not QoSLevel.SEQUENTIAL_DUAL


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize("k", [9, 10, 12, 14])
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_distribution_matches_analytic(self, params, k, scheme):
        geometry = params.constellation.plane_geometry(k)
        analytic = conditional_distribution(geometry, params, scheme)
        simulated = simulate_conditional_distribution(
            geometry, params, scheme, samples=40_000, seed=123
        )
        for level in QoSLevel:
            assert simulated[level] == pytest.approx(analytic[level], abs=0.012)

    def test_mu_05_anchor(self):
        """The simulated P(Y=3|12) hits the paper's 0.44 anchor."""
        params = EvaluationParams(signal_termination_rate=0.5)
        geometry = params.constellation.plane_geometry(12)
        simulated = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=60_000, seed=7
        )
        assert simulated[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(0.444, abs=0.01)

    def test_seed_reproducibility(self, params):
        geometry = params.constellation.plane_geometry(9)
        a = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=2000, seed=99
        )
        b = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=2000, seed=99
        )
        assert a == b

    def test_rejects_zero_samples(self, params):
        geometry = params.constellation.plane_geometry(9)
        with pytest.raises(ConfigurationError):
            simulate_conditional_distribution(
                geometry, params, Scheme.OAQ, samples=0
            )


class TestVectorisedSampler:
    @pytest.mark.parametrize("k", [9, 10, 12, 14])
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_vectorized_agrees_with_scalar_rules(self, params, k, scheme):
        """The numpy path and the scalar specification are two
        implementations of the same rules."""
        geometry = params.constellation.plane_geometry(k)
        fast = simulate_conditional_distribution(
            geometry, params, scheme, samples=40_000, seed=5, vectorized=True
        )
        slow = simulate_conditional_distribution(
            geometry, params, scheme, samples=40_000, seed=5, vectorized=False
        )
        for level in QoSLevel:
            assert fast[level] == pytest.approx(slow[level], abs=0.012)

    def test_vectorized_matches_closed_form(self, params):
        from repro.analytic.qos_model import conditional_distribution

        geometry = params.constellation.plane_geometry(12)
        analytic = conditional_distribution(geometry, params, Scheme.OAQ)
        fast = simulate_conditional_distribution(
            geometry, params, Scheme.OAQ, samples=200_000, seed=6
        )
        assert fast[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(
            analytic[QoSLevel.SIMULTANEOUS_DUAL], abs=0.005
        )

    @pytest.mark.parametrize("k", [9, 12])
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_classify_element_for_element_equals_scalar(self, params, k, scheme):
        """Seeded equivalence across all four branches: the vectorised
        classifier and the scalar specification agree on every single
        ``(onset, duration, computation)`` triple, not just in
        distribution."""
        geometry = params.constellation.plane_geometry(k)
        rng = np.random.default_rng(1234)
        onsets = rng.uniform(0.0, geometry.l1, 800)
        durations = rng.exponential(1.0 / params.mu, 800)
        computations = rng.exponential(1.0 / params.nu, 800)
        batched = classify_qos_levels(
            geometry, params, scheme, onsets, durations, computations
        )
        for index in range(800):
            scripted = _ScriptedGenerator(
                onsets[index], durations[index], computations[index]
            )
            scalar = sample_qos_level(geometry, params, scheme, scripted)
            assert int(batched[index]) == int(scalar), (
                f"k={k} {scheme.name} triple #{index}: "
                f"onset={onsets[index]}, duration={durations[index]}, "
                f"computation={computations[index]}"
            )

    def test_classify_rejects_mismatched_shapes(self, params):
        geometry = params.constellation.plane_geometry(9)
        with pytest.raises(ConfigurationError):
            classify_qos_levels(
                geometry,
                params,
                Scheme.OAQ,
                np.zeros(3),
                np.ones(3),
                np.ones(4),
            )

    @settings(max_examples=40, deadline=None)
    @given(
        samples=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        k=st.sampled_from([9, 12]),
        scheme=st.sampled_from([Scheme.OAQ, Scheme.BAQ]),
    )
    def test_distribution_is_proper_for_any_batch(
        self, samples, seed, k, scheme
    ):
        """Hypothesis property: the batched counts always sum to
        ``samples`` (probabilities to 1) and every level with mass lies
        in the valid QoS spectrum for the regime."""
        params = EvaluationParams(signal_termination_rate=0.2)
        geometry = params.constellation.plane_geometry(k)
        distribution = simulate_conditional_distribution(
            geometry, params, scheme, samples=samples, seed=seed
        )
        total = sum(distribution[level] for level in QoSLevel)
        assert total == pytest.approx(1.0, abs=1e-12)
        support = {level for level in QoSLevel if distribution[level] > 0.0}
        if geometry.overlapping:
            assert support <= {QoSLevel.SINGLE, QoSLevel.SIMULTANEOUS_DUAL}
        else:
            assert support <= {
                QoSLevel.MISSED,
                QoSLevel.SINGLE,
                QoSLevel.SEQUENTIAL_DUAL,
            }


class TestVarianceReduction:
    """The CRN / stratification / antithetic knobs must preserve the
    estimated distribution (validated against the closed forms) while
    only restructuring the sampling noise."""

    @pytest.mark.parametrize("onset_sampling", ["uniform", "stratified"])
    @pytest.mark.parametrize("antithetic", [False, True])
    @pytest.mark.parametrize("k", [9, 12])
    def test_reduced_variance_paths_match_closed_form(
        self, params, onset_sampling, antithetic, k
    ):
        geometry = params.constellation.plane_geometry(k)
        analytic = conditional_distribution(geometry, params, Scheme.OAQ)
        estimate = simulate_conditional_distribution(
            geometry,
            params,
            Scheme.OAQ,
            samples=60_000,
            seed=21,
            onset_sampling=onset_sampling,
            antithetic=antithetic,
        )
        for level in QoSLevel:
            assert estimate[level] == pytest.approx(analytic[level], abs=0.01)

    def test_antithetic_mirrors_are_exact(self, params):
        geometry = params.constellation.plane_geometry(9)
        samples = 1000
        onset, duration, computation = draw_signal_variates(
            geometry,
            params,
            samples,
            np.random.default_rng(3),
            antithetic=True,
        )
        half = samples // 2
        assert np.allclose(onset[half:], geometry.l1 - onset[:half])
        # Exponential mirrors flip through the CDF: F(x) + F(x') = 1.
        cdf = 1.0 - np.exp(-params.mu * duration)
        assert np.allclose(cdf[:half] + cdf[half:], 1.0)

    def test_stratified_onsets_keep_marginal_uniform(self, params):
        geometry = params.constellation.plane_geometry(9)
        onset, _, _ = draw_signal_variates(
            geometry,
            params,
            40_000,
            np.random.default_rng(4),
            onset_sampling="stratified",
        )
        assert onset.min() >= 0.0 and onset.max() <= geometry.l1
        # Proportional allocation pins each stratum's share exactly.
        alpha = geometry.single_coverage_length
        in_alpha = np.count_nonzero(onset < alpha)
        assert in_alpha / 40_000 == pytest.approx(alpha / geometry.l1, abs=2e-4)

    def test_stratification_shrinks_onset_driven_variance(self, params):
        """Replicated small-sample estimates of P(Y=2|9): stratified
        onsets must not be worse than independent uniform onsets (the
        between-strata variance component is removed)."""
        geometry = params.constellation.plane_geometry(9)

        def spread(onset_sampling):
            values = [
                simulate_conditional_distribution(
                    geometry,
                    params,
                    Scheme.OAQ,
                    samples=400,
                    seed=seed,
                    onset_sampling=onset_sampling,
                )[QoSLevel.SEQUENTIAL_DUAL]
                for seed in range(60)
            ]
            return float(np.var(values))

        assert spread("stratified") <= spread("uniform") * 1.1

    @pytest.mark.parametrize("k", [9, 12])
    def test_crn_pairing_orders_schemes_per_draw(self, params, k):
        """On common random numbers OAQ dominates BAQ *sample by
        sample* (BAQ's success sets are subsets of OAQ's), so the CRN
        estimate of the scheme gap carries no crossing noise."""
        geometry = params.constellation.plane_geometry(k)
        rng = np.random.default_rng(17)
        onset, duration, computation = draw_signal_variates(
            geometry, params, 20_000, rng
        )
        oaq = classify_qos_levels(
            geometry, params, Scheme.OAQ, onset, duration, computation
        )
        baq = classify_qos_levels(
            geometry, params, Scheme.BAQ, onset, duration, computation
        )
        assert np.all(oaq >= baq)

    def test_paired_distributions_match_independent_estimates(self, params):
        geometry = params.constellation.plane_geometry(9)
        paired = simulate_paired_conditional_distributions(
            geometry,
            params,
            [Scheme.OAQ, Scheme.BAQ],
            samples=50_000,
            seed=8,
        )
        assert set(paired) == {Scheme.OAQ, Scheme.BAQ}
        for scheme in (Scheme.OAQ, Scheme.BAQ):
            analytic = conditional_distribution(geometry, params, scheme)
            for level in QoSLevel:
                assert paired[scheme][level] == pytest.approx(
                    analytic[level], abs=0.01
                )

    def test_draw_signal_variates_rejects_unknown_sampling(self, params):
        geometry = params.constellation.plane_geometry(9)
        with pytest.raises(ConfigurationError):
            draw_signal_variates(
                geometry,
                params,
                10,
                np.random.default_rng(0),
                onset_sampling="sobol",
            )


class TestProtocolSamplerSeeding:
    """Seed hygiene: per-sample seeds must come from
    ``SeedSequence.spawn`` children, not truncated ``rng.integers``
    draws (which collide across cells and discard root entropy)."""

    def test_legacy_path_is_pinned_to_spawned_children(self, params):
        """Regression: ``batched=False`` consumes exactly the spawned
        child sequence, bit for bit."""
        from repro.protocol.runner import CenterlineScenario

        geometry = params.constellation.plane_geometry(9)
        samples, seed = 60, 2024
        via_sampler = simulate_conditional_distribution_protocol(
            geometry,
            params,
            Scheme.OAQ,
            samples=samples,
            seed=seed,
            batched=False,
        )
        counts = {level: 0 for level in QoSLevel}
        for child in np.random.SeedSequence(seed).spawn(samples):
            outcome = CenterlineScenario(
                geometry, params, scheme=Scheme.OAQ, seed=child
            ).run()
            counts[outcome.achieved_level] += 1
        for level in QoSLevel:
            assert via_sampler[level] == counts[level] / samples

    def test_spawned_children_are_distinct_streams(self):
        children = np.random.SeedSequence(0).spawn(512)
        first_words = {
            int(child.generate_state(1, dtype=np.uint64)[0])
            for child in children
        }
        assert len(first_words) == 512

    def test_batched_path_reproducible_and_seed_sensitive(self, params):
        geometry = params.constellation.plane_geometry(9)
        a = simulate_conditional_distribution_protocol(
            geometry, params, Scheme.OAQ, samples=300, seed=5
        )
        b = simulate_conditional_distribution_protocol(
            geometry, params, Scheme.OAQ, samples=300, seed=5
        )
        c = simulate_conditional_distribution_protocol(
            geometry, params, Scheme.OAQ, samples=300, seed=6
        )
        assert a == b
        assert a != c

    def test_batched_variance_reduction_matches_plain_estimate(self, params):
        geometry = params.constellation.plane_geometry(9)
        plain = simulate_conditional_distribution_protocol(
            geometry, params, Scheme.OAQ, samples=1200, seed=9
        )
        reduced = simulate_conditional_distribution_protocol(
            geometry,
            params,
            Scheme.OAQ,
            samples=1200,
            seed=9,
            onset_sampling="stratified",
            antithetic=True,
        )
        for level in QoSLevel:
            assert reduced[level] == pytest.approx(plain[level], abs=0.06)

    def test_legacy_path_rejects_variance_reduction(self, params):
        geometry = params.constellation.plane_geometry(9)
        with pytest.raises(ConfigurationError):
            simulate_conditional_distribution_protocol(
                geometry,
                params,
                Scheme.OAQ,
                samples=10,
                batched=False,
                antithetic=True,
            )


class TestBoundaryVariates:
    """Pin the classifier's comparison directions exactly on the
    boundary variates where ``<`` vs ``<=`` decides the level: onset on
    a window edge, zero-duration signals, and computations landing
    exactly on the deadline.  Each triple is checked against the scalar
    specification on identical inputs, and -- where the rules make the
    outcome determinate -- against the expected level itself.

    Geometry constants (default parameters, tau = 5.0): k=12 overlaps
    with alpha = 6.0, L1 = 7.5; k=9 underlaps with alpha = 9.0,
    L1 = 10.0 (gap length 1.0).
    """

    # (k, onset, duration, computation, expected {scheme: level})
    CASES = [
        # Overlap, onset exactly on the double-coverage edge: wait == 0,
        # computation exactly on the deadline -- <= admits the dual.
        (12, 6.0, 1.0, 5.0,
         {Scheme.OAQ: QoSLevel.SIMULTANEOUS_DUAL,
          Scheme.BAQ: QoSLevel.SIMULTANEOUS_DUAL}),
        # Overlap, computation a hair past the deadline: dual lost.
        (12, 6.0, 1.0, np.nextafter(5.0, 6.0),
         {Scheme.OAQ: QoSLevel.SINGLE, Scheme.BAQ: QoSLevel.SINGLE}),
        # Overlap, duration exactly equal to the wait: the signal dies
        # at the opportunity's edge, never inside it.
        (12, 4.0, 2.0, 0.1,
         {Scheme.OAQ: QoSLevel.SINGLE, Scheme.BAQ: QoSLevel.SINGLE}),
        # Overlap, wait + computation exactly on the deadline: OAQ rides
        # the opportunity, BAQ refuses any wait > 0.
        (12, 4.0, 3.0, 3.0,
         {Scheme.OAQ: QoSLevel.SIMULTANEOUS_DUAL,
          Scheme.BAQ: QoSLevel.SINGLE}),
        # Overlap, onset at the window origin: wait = alpha = 6 > tau,
        # the opportunity is unreachable regardless of computation.
        (12, 0.0, 100.0, 0.0,
         {Scheme.OAQ: QoSLevel.SINGLE, Scheme.BAQ: QoSLevel.SINGLE}),
        # Overlap, zero-duration signal inside double coverage: still
        # detected at onset, dual if the computation makes the deadline.
        (12, 6.5, 0.0, 1.0,
         {Scheme.OAQ: QoSLevel.SIMULTANEOUS_DUAL,
          Scheme.BAQ: QoSLevel.SIMULTANEOUS_DUAL}),
        # Underlap, onset exactly on the gap edge (onset == alpha is in
        # the gap), duration exactly the time to coverage: missed.
        (9, 9.0, 1.0, 0.0,
         {Scheme.OAQ: QoSLevel.MISSED, Scheme.BAQ: QoSLevel.MISSED}),
        # Underlap, same edge but the signal outlives the gap by one
        # ulp: detected late, single-coverage ceiling.
        (9, 9.0, np.nextafter(1.0, 2.0), 0.0,
         {Scheme.OAQ: QoSLevel.SINGLE, Scheme.BAQ: QoSLevel.SINGLE}),
        # Underlap, zero-duration signal in the gap: missed outright.
        (9, 9.5, 0.0, 0.0,
         {Scheme.OAQ: QoSLevel.MISSED, Scheme.BAQ: QoSLevel.MISSED}),
        # Underlap, zero-duration signal under coverage: detected, but
        # it cannot survive to the next satellite.
        (9, 5.0, 0.0, 0.0,
         {Scheme.OAQ: QoSLevel.SINGLE, Scheme.BAQ: QoSLevel.SINGLE}),
        # Underlap sequential boundary: wait = L1 - 7 = 3, duration
        # exactly equal to the wait -- dies at the handover, no dual.
        (9, 7.0, 3.0, 1.0,
         {Scheme.OAQ: QoSLevel.SINGLE, Scheme.BAQ: QoSLevel.SINGLE}),
        # Underlap sequential, computation exactly on the deadline
        # (wait 3 + computation 2 == tau): OAQ dual, BAQ never.
        (9, 7.0, 4.0, 2.0,
         {Scheme.OAQ: QoSLevel.SEQUENTIAL_DUAL,
          Scheme.BAQ: QoSLevel.SINGLE}),
        # Same but past the deadline (a one-ulp bump on the computation
        # would be rounded away by the ``wait + computation`` sum, so
        # overshoot by a few ulps of the sum): dual lost.
        (9, 7.0, 4.0, np.nextafter(5.0, 6.0) - 3.0,
         {Scheme.OAQ: QoSLevel.SINGLE, Scheme.BAQ: QoSLevel.SINGLE}),
    ]

    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    @pytest.mark.parametrize(
        "k, onset, duration, computation, expected", CASES
    )
    def test_boundary_triple_matches_scalar_and_expectation(
        self, params, scheme, k, onset, duration, computation, expected
    ):
        geometry = params.constellation.plane_geometry(k)
        batched = classify_qos_levels(
            geometry,
            params,
            scheme,
            np.array([onset]),
            np.array([duration]),
            np.array([computation]),
        )
        scripted = _ScriptedGenerator(onset, duration, computation)
        scalar = sample_qos_level(geometry, params, scheme, scripted)
        assert int(batched[0]) == int(scalar)
        assert scalar is expected[scheme]

    @pytest.mark.parametrize("k", [9, 12])
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_boundary_batch_agrees_elementwise(self, params, k, scheme):
        """All boundary triples of both geometries in one batched call:
        the vectorised classifier must agree with the scalar rules even
        when every element sits on a comparison edge."""
        geometry = params.constellation.plane_geometry(k)
        triples = [
            (onset, duration, computation)
            for case_k, onset, duration, computation, _ in self.CASES
            if case_k == k
        ]
        onsets, durations, computations = (
            np.array(column) for column in zip(*triples)
        )
        batched = classify_qos_levels(
            geometry, params, scheme, onsets, durations, computations
        )
        for index, (onset, duration, computation) in enumerate(triples):
            scripted = _ScriptedGenerator(onset, duration, computation)
            scalar = sample_qos_level(geometry, params, scheme, scripted)
            assert int(batched[index]) == int(scalar), (
                f"k={k} {scheme.name}: onset={onset}, duration={duration}, "
                f"computation={computation}"
            )
