"""Tests for :mod:`repro.simulation.vector` -- the struct-of-arrays
vectorized replication engine.

The load-bearing contract: on identical randomness tapes, the vector
path's ``(level, detected)`` pair is **exactly equal** to the scalar
event-driven oracle's for every replication, across all four protocol
branches (overlap/underlap x OAQ/BAQ) and both messaging variants --
including templates the vector model cannot cover (lossy links, custom
accuracy models, non-exponential computation), which must shunt every
row to the oracle via the divergence mask, and exact event-time ties,
which must shunt just the tied rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.distributions import Exponential, HyperExponential
from repro.core.config import EvaluationParams
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.protocol.accuracy_model import GeometricAccuracyModel
from repro.protocol.satellite import MessagingVariant
from repro.simulation import vector as vector_mod
from repro.simulation.batch import ScenarioTemplate
from repro.simulation.qos_montecarlo import (
    simulate_conditional_distribution_protocol,
)
from repro.simulation.vector import (
    draw_protocol_tapes,
    reset_vector_batch_stats,
    sample_levels_vector,
    scalar_reference_levels,
    vector_batch_stats,
)

PARAMS = EvaluationParams(signal_termination_rate=0.2)
#: k=9 underlaps (coordination chains form), k=12 overlaps
#: (simultaneous double coverage) -- the two physical regimes.
CAPACITIES = (9, 12)


def _vector_and_oracle(template, seed, count, params=PARAMS):
    """Run the vector engine and the scalar oracle on the same spawned
    seed: twin generators replay identical signal variates and tapes."""
    child = np.random.SeedSequence(seed)
    rng_vector = np.random.default_rng(child)
    rng_oracle = np.random.default_rng(child)
    geometry = template.geometry
    onsets = rng_vector.uniform(0.0, geometry.l1, size=count)
    durations = rng_vector.exponential(1.0 / params.mu, size=count)
    rng_oracle.uniform(0.0, geometry.l1, size=count)
    rng_oracle.exponential(1.0 / params.mu, size=count)

    levels, detected = sample_levels_vector(
        template, rng_vector, onsets, durations
    )
    tapes = draw_protocol_tapes(template, rng_oracle, count)
    oracle_levels, oracle_detected = scalar_reference_levels(
        template, onsets, durations, tapes
    )
    return levels, detected, oracle_levels, oracle_detected


class TestExactness:
    """Vector-path counts equal scalar-path counts on the same spawned
    seeds, per replication, for every scheme branch."""

    @pytest.mark.parametrize("capacity", CAPACITIES)
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    @pytest.mark.parametrize(
        "variant",
        [
            MessagingVariant.DONE_PROPAGATION,
            MessagingVariant.SUCCESSOR_RESPONSIBILITY,
        ],
    )
    def test_levels_match_oracle_exactly(self, capacity, scheme, variant):
        geometry = PARAMS.constellation.plane_geometry(capacity)
        template = ScenarioTemplate(
            geometry, PARAMS, scheme=scheme, variant=variant
        )
        levels, detected, oracle_levels, oracle_detected = _vector_and_oracle(
            template, seed=20030622 + capacity, count=1_500
        )
        np.testing.assert_array_equal(levels, oracle_levels)
        np.testing.assert_array_equal(detected, oracle_detected)

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_supported_cells_decide_without_fallback(self, capacity):
        geometry = PARAMS.constellation.plane_geometry(capacity)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        reset_vector_batch_stats()
        _vector_and_oracle(template, seed=7, count=2_000)
        stats = vector_batch_stats()
        assert stats["calls"] == 1
        assert stats["replications"] == 2_000
        assert stats["fallbacks"] == 0
        assert stats["fallback_fraction"] == 0.0

    def test_jitter_free_model_draws_no_jitter_tape(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(
            geometry,
            PARAMS,
            scheme=Scheme.OAQ,
            accuracy_model=GeometricAccuracyModel(jitter=0.0),
        )
        levels, detected, oracle_levels, oracle_detected = _vector_and_oracle(
            template, seed=5, count=800
        )
        np.testing.assert_array_equal(levels, oracle_levels)
        np.testing.assert_array_equal(detected, oracle_detected)
        tapes = draw_protocol_tapes(template, np.random.default_rng(1), 4)
        assert tapes.jit is None


class TestEngineDispatch:
    def test_sample_levels_engine_vector_matches_direct_call(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        child = np.random.SeedSequence(3)
        rng_a = np.random.default_rng(child)
        rng_b = np.random.default_rng(child)
        onsets = np.linspace(0.0, geometry.l1 * 0.99, 64)
        durations = np.full(64, 30.0)
        via_template = template.sample_levels(
            rng_a, onsets, durations, engine="vector"
        )
        direct = sample_levels_vector(template, rng_b, onsets, durations)
        np.testing.assert_array_equal(via_template[0], direct[0])
        np.testing.assert_array_equal(via_template[1], direct[1])

    def test_unknown_engine_rejected(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        with pytest.raises(ConfigurationError, match="unknown engine"):
            template.sample_levels(
                np.random.default_rng(0),
                np.zeros(2),
                np.ones(2),
                engine="warp",
            )

    def test_protocol_sampler_engine_plumbing(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        first = simulate_conditional_distribution_protocol(
            geometry, PARAMS, Scheme.OAQ, samples=500, seed=11, engine="vector"
        )
        again = simulate_conditional_distribution_protocol(
            geometry, PARAMS, Scheme.OAQ, samples=500, seed=11, engine="vector"
        )
        assert first == again
        with pytest.raises(ConfigurationError, match="unknown engine"):
            simulate_conditional_distribution_protocol(
                geometry, PARAMS, Scheme.OAQ, samples=10, seed=1, engine="nope"
            )
        with pytest.raises(ConfigurationError, match="batched path"):
            simulate_conditional_distribution_protocol(
                geometry,
                PARAMS,
                Scheme.OAQ,
                samples=10,
                seed=1,
                batched=False,
                engine="vector",
            )


class TestDivergenceFallback:
    """Templates the vector model does not cover must shunt every row
    to the oracle -- exactly and deterministically."""

    def _assert_full_fallback(self, template, reason):
        tapes = draw_protocol_tapes(template, np.random.default_rng(0), 8)
        assert tapes.fallback_all
        assert tapes.reason == reason
        reset_vector_batch_stats()
        levels, detected, oracle_levels, oracle_detected = _vector_and_oracle(
            template, seed=13, count=300
        )
        np.testing.assert_array_equal(levels, oracle_levels)
        np.testing.assert_array_equal(detected, oracle_detected)
        stats = vector_batch_stats()
        assert stats["fallbacks"] == 300
        assert stats["fallback_fraction"] == 1.0

    def test_lossy_crosslinks_fall_back(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(
            geometry,
            PARAMS,
            scheme=Scheme.OAQ,
            crosslink_loss_probability=0.2,
        )
        self._assert_full_fallback(template, "lossy crosslinks")

    def test_custom_accuracy_model_falls_back(self):
        class TweakedModel(GeometricAccuracyModel):
            pass

        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(
            geometry, PARAMS, scheme=Scheme.OAQ, accuracy_model=TweakedModel()
        )
        self._assert_full_fallback(template, "custom accuracy model")

    def test_non_exponential_computation_falls_back(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(
            geometry,
            PARAMS,
            scheme=Scheme.OAQ,
            computation_time=HyperExponential(
                rates=[60.0, 10.0], weights=[0.5, 0.5]
            ),
        )
        self._assert_full_fallback(template, "non-exponential computation time")

    def test_zero_crosslink_delay_falls_back(self):
        params = EvaluationParams(
            signal_termination_rate=0.2, crosslink_delay_minutes=0.0
        )
        geometry = params.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, params, scheme=Scheme.OAQ)
        tapes = draw_protocol_tapes(template, np.random.default_rng(0), 4)
        assert tapes.fallback_all
        assert tapes.reason == "zero crosslink delay"


class TestCraftedTies:
    def test_exact_overlap_tie_shunts_to_oracle(self):
        """A double-coverage completion landing exactly on the deadline
        guard is a kernel-order-dependent tie: the vector path must not
        guess, it must mark the row for the oracle."""
        geometry = PARAMS.constellation.plane_geometry(12)
        assert geometry.overlapping
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        alpha = geometry.single_coverage_length
        tau = PARAMS.tau
        x = np.array([alpha / 2.0, alpha / 2.0])
        dur = np.array([50.0, 50.0])
        tapes = draw_protocol_tapes(template, np.random.default_rng(2), 2)
        # Row 0: initial computation at c1=1.0 withholds (error above
        # threshold, no TC-2); its guard fires at 1 + (tau - 1) and the
        # first dc onset at w0 = alpha - x completes exactly then.
        guard = 1.0 + max(0.0, tau - 1.0)
        w0 = alpha - x[0]
        tapes.comp[0, 0] = 1.0
        tapes.comp[0, 1] = guard - w0
        assert w0 + tapes.comp[0, 1] == guard  # the tie is float-exact
        levels, detected, fallback = vector_mod._overlap_levels(
            template, x, dur, tapes
        )
        assert fallback[0]
        assert not fallback[1]
        # The full pipeline resolves the tied row via the oracle; the
        # untied row must already agree with it.
        oracle_levels, oracle_detected = scalar_reference_levels(
            template, x, dur, tapes
        )
        assert levels[1] == oracle_levels[1]
        assert detected[1] == oracle_detected[1]


class TestRandomTemplatesProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        capacity=st.integers(min_value=4, max_value=15),
        tau=st.sampled_from([0.8, 2.5, 5.0, 11.0]),
        nu=st.sampled_from([2.0, 10.0, 30.0, 120.0]),
        mu=st.sampled_from([0.05, 0.2, 1.0]),
        delta=st.sampled_from([0.001, 0.05, 0.3]),
        tg=st.sampled_from([0.0, 0.1, 0.5, 1.5]),
        threshold=st.sampled_from([0.3, 1.0, 8.0, 45.0]),
        jitter=st.sampled_from([0.0, 0.1, 0.3]),
        scheme=st.sampled_from([Scheme.OAQ, Scheme.BAQ]),
        variant=st.sampled_from(list(MessagingVariant)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_template_exactness(
        self,
        capacity,
        tau,
        nu,
        mu,
        delta,
        tg,
        threshold,
        jitter,
        scheme,
        variant,
        seed,
    ):
        params = EvaluationParams(
            deadline_minutes=tau,
            signal_termination_rate=mu,
            computation_rate=nu,
            crosslink_delay_minutes=delta,
            geolocation_time_minutes=tg,
            error_threshold_km=threshold,
        )
        geometry = params.constellation.plane_geometry(capacity)
        template = ScenarioTemplate(
            geometry,
            params,
            scheme=scheme,
            variant=variant,
            accuracy_model=GeometricAccuracyModel(jitter=jitter),
        )
        levels, detected, oracle_levels, oracle_detected = _vector_and_oracle(
            template, seed=seed, count=150, params=params
        )
        np.testing.assert_array_equal(levels, oracle_levels)
        np.testing.assert_array_equal(detected, oracle_detected)


class TestCampaignAdoption:
    def test_vector_campaign_independent_of_fanout(self):
        from repro.faults.campaign import Campaign
        from repro.faults.plan import FaultPlan

        plans = [FaultPlan.fault_free(), FaultPlan.lossy(0.1)]
        kwargs = dict(
            params=PARAMS, capacity=9, plans=plans, runs=120, seed=21
        )
        base = Campaign(engine="vector", **kwargs).run()
        fanned = Campaign(
            engine="vector", n_jobs=2, batch_size=17, **kwargs
        ).run()
        scalar = Campaign(**kwargs).run()
        for left, right in zip(base.outcomes, fanned.outcomes):
            assert left.level_counts == right.level_counts
            assert left.detected == right.detected
        # Faulty cells never take the vector path: byte-identical to
        # the scalar campaign.
        for left, right in zip(base.outcomes, scalar.outcomes):
            if not left.plan.is_fault_free:
                assert left.level_counts == right.level_counts
                assert left.detected == right.detected

    def test_campaign_rejects_unknown_engine(self):
        from repro.faults.campaign import Campaign
        from repro.faults.plan import FaultPlan

        with pytest.raises(ConfigurationError, match="unknown engine"):
            Campaign(
                PARAMS,
                capacity=9,
                plans=[FaultPlan.fault_free()],
                engine="warp",
            )


class TestCorpusProtocolMcCheck:
    def test_forced_protocol_mc_check_passes(self):
        from repro.scenarios.generator import generate_corpus
        from repro.scenarios.runner import run_case

        _, cases = generate_corpus(2, 20260, name="vector-test")
        for case in cases:
            cell = run_case(case, extra_checks=("protocol_mc",))
            outcome = cell.check("protocol_mc")
            assert outcome.passed, outcome.details
            assert outcome.details["level_mismatches"] == 0
            assert outcome.details["detected_mismatches"] == 0
            assert "protocol_mc_fallback_fraction" in cell.metrics
