"""Tests for repro.protocol.membership (the paper's Section 5
future-work extension: group membership for a satellite plane)."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.protocol.membership import (
    MembershipConfig,
    MembershipGroup,
)

NAMES = [f"S{i}" for i in range(1, 9)]  # an 8-satellite plane


@pytest.fixture
def group():
    return MembershipGroup(NAMES)


class TestConfig:
    def test_rejects_unsafe_timeout(self):
        with pytest.raises(ConfigurationError):
            MembershipConfig(
                heartbeat_interval=1.0, suspicion_timeout=1.0, crosslink_delay=0.1
            )

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            MembershipConfig(heartbeat_interval=0.0)

    def test_group_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            MembershipGroup(["solo"])

    def test_group_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            MembershipGroup(["a", "a", "b"])


class TestStableGroup:
    def test_initial_views_agree(self, group):
        group.run_for(10.0)
        assert group.converged()
        assert group.agreed_view() == tuple(sorted(NAMES))

    def test_accuracy_no_false_suspicions(self, group):
        """While heartbeats flow, nobody is ever removed."""
        group.run_for(30.0)
        for node in group.correct_nodes():
            assert node.view == tuple(sorted(NAMES))
            # Exactly the initial view was ever installed.
            assert node.view_version == 0


class TestFailureDetection:
    def test_completeness_failed_node_removed(self, group):
        group.run_for(5.0)
        group.fail("S3")
        # suspicion_timeout (1.6) + ring dissemination; generous margin.
        group.run_for(10.0)
        assert group.converged()
        assert "S3" not in group.agreed_view()
        assert len(group.agreed_view()) == len(NAMES) - 1

    def test_two_concurrent_failures(self, group):
        group.run_for(2.0)
        group.fail("S2")
        group.fail("S6")
        group.run_for(15.0)
        assert group.converged()
        view = group.agreed_view()
        assert "S2" not in view and "S6" not in view
        assert len(view) == len(NAMES) - 2

    def test_adjacent_failures(self, group):
        """Adjacent ring nodes failing together still get detected (the
        ring re-closes around them view by view)."""
        group.run_for(2.0)
        group.fail("S4")
        group.fail("S5")
        group.run_for(20.0)
        assert group.converged()
        view = group.agreed_view()
        assert "S4" not in view and "S5" not in view

    def test_view_version_monotone(self, group):
        group.run_for(2.0)
        group.fail("S3")
        group.run_for(10.0)
        for node in group.correct_nodes():
            history = node.version_history
            assert history == sorted(history)


class TestRejoin:
    def test_restored_node_readmitted(self, group):
        group.run_for(2.0)
        group.fail("S3")
        group.run_for(10.0)
        assert "S3" not in group.agreed_view()
        group.restore("S3")
        group.run_for(10.0)
        assert group.converged()
        assert "S3" in group.agreed_view()

    def test_rejoin_without_peers_rejected(self):
        group = MembershipGroup(["a", "b"])
        group.run_for(1.0)
        group.fail("b")
        group.run_for(5.0)
        # 'a' removed 'b'; now fail 'a' and try to rejoin 'b' whose view
        # may still contain 'a' -- allowed.  But a node whose view holds
        # only itself cannot rejoin.
        node = group.nodes["a"]
        node.view = (node.name,)
        with pytest.raises(ProtocolError):
            node.rejoin()


class TestIntegrationWithOAQ:
    def test_view_serves_next_peer_selection(self, group):
        """The membership view directly answers the OAQ protocol's
        'who visits next' question after failures."""
        group.run_for(2.0)
        group.fail("S3")
        group.run_for(10.0)
        view = group.agreed_view()

        def next_peer(name: str):
            ring = list(view)
            return ring[(ring.index(name) + 1) % len(ring)]

        # S2's successor skips the failed S3.
        assert next_peer("S2") == "S4"
