"""Direct unit tests of the ground station's adjudication rules."""

import pytest

from repro.desim.kernel import Simulator
from repro.desim.network import Network
from repro.errors import ProtocolError
from repro.protocol.ground import GroundStation
from repro.protocol.messages import AlertMessage, GeolocationEstimate


def make_alert(sent_at, *, by="S1", level_passes=1, simultaneous=False, t0=0.0):
    return AlertMessage(
        signal_id="sig",
        estimate=GeolocationEstimate(
            error_km=10.0,
            passes_used=level_passes,
            simultaneous=simultaneous,
            computed_by=by,
            computed_at=sent_at,
        ),
        sent_by=by,
        sent_at=sent_at,
        detection_time=t0,
        chain=(by,),
    )


@pytest.fixture
def ground():
    simulator = Simulator()
    network = Network(simulator)
    station = GroundStation(network)
    # The tests send on behalf of satellites; the network rejects
    # unregistered sources (they would bypass fail-silence checks).
    for name in ("S1", "S2"):
        network.register(name, lambda src, msg: None)
    return simulator, network, station


class TestAdjudication:
    def test_official_is_first_sent_not_first_received(self, ground):
        simulator, network, station = ground
        # Later-sent alert delivered first (shorter downlink).
        network.send("S2", "ground", make_alert(2.0, by="S2"), delay=0.1)
        network.send("S1", "ground", make_alert(1.0, by="S1"), delay=5.0)
        simulator.run()
        assert station.official("sig").sent_by == "S1"
        assert station.duplicates("sig") == 1

    def test_achieved_level_counts_only_timely_alerts(self, ground):
        simulator, network, station = ground
        network.send(
            "S1", "ground", make_alert(7.0, level_passes=2), delay=0.1
        )
        simulator.run()
        # Sent 7 minutes after detection, deadline 5: level 0.
        assert station.achieved_level("sig", deadline=5.0) == 0
        assert station.achieved_level("sig", deadline=8.0) == 2

    def test_level_from_pedigree(self, ground):
        simulator, network, station = ground
        network.send(
            "S1",
            "ground",
            make_alert(1.0, level_passes=2, simultaneous=True),
            delay=0.1,
        )
        simulator.run()
        # Simultaneous wins over the pass count.
        assert station.achieved_level("sig", deadline=5.0) == 3

    def test_no_alert_means_level_zero(self, ground):
        _, _, station = ground
        assert station.official("sig") is None
        assert station.achieved_level("sig", deadline=5.0) == 0
        assert station.alerts("sig") == []

    def test_rejects_non_alert_messages(self, ground):
        simulator, network, station = ground
        network.send("S1", "ground", "not an alert", delay=0.1)
        with pytest.raises(ProtocolError):
            simulator.run()


class TestScenarioReproducibility:
    def test_same_seed_same_outcome(self):
        from repro.core.config import EvaluationParams
        from repro.protocol.runner import CenterlineScenario

        params = EvaluationParams(signal_termination_rate=0.2)
        geometry = params.constellation.plane_geometry(9)

        def run(seed):
            outcome = CenterlineScenario(geometry, params, seed=seed).run()
            return (
                outcome.achieved_level,
                outcome.alert_latency,
                outcome.chain_length,
                len(outcome.message_log),
            )

        assert run(12345) == run(12345)
        # And the signal draws differ across seeds.
        assert run(12345) != run(54321) or True  # draws may coincide; no assert
