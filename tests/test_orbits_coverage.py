"""Tests for repro.orbits.coverage -- the SOAP-style analytics that
back the paper's published constants."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.orbits import (
    GeodeticPoint,
    build_reference_constellation,
    coverage_multiplicity,
    coverage_series,
    covering_satellites,
    measured_coverage_time_minutes,
    measured_revisit_time_minutes,
)


@pytest.fixture(scope="module")
def constellation():
    return build_reference_constellation()


class TestPublishedConstants:
    def test_measured_coverage_time_is_nine_minutes(self, constellation):
        tc = measured_coverage_time_minutes(
            constellation.planes[0],
            constellation.footprint.half_angle,
            GeodeticPoint.from_degrees(0.0, 0.0),
        )
        assert tc == pytest.approx(9.0, abs=0.3)

    def test_measured_revisit_matches_theta_over_k(self, constellation):
        tr = measured_revisit_time_minutes(
            constellation.planes[0], GeodeticPoint.from_degrees(0.0, 0.0)
        )
        assert tr == pytest.approx(90.0 / 14.0, abs=0.2)

    def test_revisit_after_degradation(self):
        constellation = build_reference_constellation()
        plane = constellation.planes[0]
        plane.fail_satellites(6)  # k = 10
        tr = measured_revisit_time_minutes(
            plane, GeodeticPoint.from_degrees(0.0, 0.0)
        )
        assert tr == pytest.approx(9.0, abs=0.2)


class TestCoverageQueries:
    def test_full_constellation_covers_everywhere(self, constellation):
        """98 active satellites give full Earth coverage (Figure 1)."""
        for lat, lon in ((0.0, 37.0), (30.0, -100.0), (60.0, 10.0), (85.0, 0.0)):
            series = coverage_series(
                constellation,
                GeodeticPoint.from_degrees(lat, lon),
                duration_s=5400.0,
                step_s=120.0,
            )
            assert series.fraction_at_least(1) == 1.0

    def test_poles_more_overlapped_than_equator(self, constellation):
        equator = coverage_series(
            constellation, GeodeticPoint.from_degrees(0.0, 20.0), 5400.0, step_s=120.0
        )
        pole = coverage_series(
            constellation, GeodeticPoint.from_degrees(80.0, 20.0), 5400.0, step_s=120.0
        )
        assert pole.fraction_at_least(2) > equator.fraction_at_least(2)

    def test_covering_satellites_listed(self, constellation):
        point = GeodeticPoint.from_degrees(0.0, 0.0)
        covering = covering_satellites(constellation, point, 0.0)
        assert covering  # satellite P0-S0 starts overhead
        assert coverage_multiplicity(constellation, point, 0.0) == len(covering)

    def test_series_runs_and_gaps(self):
        constellation = build_reference_constellation(
            planes=1, active_per_plane=8, spares_per_plane=0
        )
        # Single sparse plane: gaps exist at the equator point under it.
        series = coverage_series(
            constellation,
            GeodeticPoint.from_degrees(0.0, 0.0),
            duration_s=5400.0,
            step_s=30.0,
        )
        assert series.fraction_at_least(1) < 1.0
        assert series.gaps_minutes()

    def test_series_rejects_bad_inputs(self, constellation):
        with pytest.raises(ConfigurationError):
            coverage_series(
                constellation, GeodeticPoint.from_degrees(0, 0), -1.0
            )
