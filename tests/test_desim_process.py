"""Tests for repro.desim.process (generator processes)."""

import pytest

from repro.desim.kernel import Simulator
from repro.desim.process import spawn
from repro.errors import ConfigurationError


def test_process_advances_time():
    simulator = Simulator()
    log = []

    def body():
        log.append(simulator.now)
        yield 2.0
        log.append(simulator.now)
        yield 3.0
        log.append(simulator.now)

    process = spawn(simulator, body())
    simulator.run()
    assert log == [0.0, 2.0, 5.0]
    assert process.finished


def test_two_processes_interleave():
    simulator = Simulator()
    log = []

    def ticker(name, step):
        for _ in range(3):
            yield step
            log.append((name, simulator.now))

    spawn(simulator, ticker("fast", 1.0))
    spawn(simulator, ticker("slow", 2.5))
    simulator.run()
    assert log == [
        ("fast", 1.0),
        ("fast", 2.0),
        ("slow", 2.5),
        ("fast", 3.0),
        ("slow", 5.0),
        ("slow", 7.5),
    ]


def test_interrupt_stops_process():
    simulator = Simulator()
    log = []

    def body():
        while True:
            yield 1.0
            log.append(simulator.now)

    process = spawn(simulator, body())
    simulator.run_until(3.5)
    process.interrupt()
    simulator.run_until(10.0)
    assert log == [1.0, 2.0, 3.0]
    assert process.finished


def test_invalid_yield_rejected():
    simulator = Simulator()

    def body():
        yield -1.0

    with pytest.raises(ConfigurationError):
        spawn(simulator, body())
