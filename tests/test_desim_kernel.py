"""Tests for repro.desim.kernel."""

import pytest

from repro.desim.kernel import Simulator
from repro.errors import ConfigurationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(3.0, order.append, "c")
        simulator.schedule(1.0, order.append, "a")
        simulator.schedule(2.0, order.append, "b")
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        simulator = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            simulator.schedule(1.0, order.append, tag)
        simulator.run()
        assert order == ["first", "second", "third"]

    def test_now_advances(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(2.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        simulator = Simulator()
        log = []

        def outer():
            log.append(("outer", simulator.now))
            simulator.schedule(1.0, inner)

        def inner():
            log.append(("inner", simulator.now))

        simulator.schedule(1.0, outer)
        simulator.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_rejects_negative_delay(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            simulator.schedule(-1.0, lambda: None)

    def test_rejects_scheduling_in_past(self):
        simulator = Simulator()
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(ConfigurationError):
            simulator.at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule(1.0, fired.append, 1)
        event.cancel()
        simulator.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        simulator = Simulator()
        event = simulator.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        simulator.run()


class TestRunUntil:
    def test_stops_at_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, fired.append, "early")
        simulator.schedule(10.0, fired.append, "late")
        simulator.run_until(5.0)
        assert fired == ["early"]
        assert simulator.now == 5.0

    def test_backwards_rejected(self):
        simulator = Simulator()
        simulator.run_until(5.0)
        with pytest.raises(ConfigurationError):
            simulator.run_until(1.0)

    def test_event_count(self):
        simulator = Simulator()
        for _ in range(4):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 4

    def test_max_events_cap(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule(1.0, reschedule)

        simulator.schedule(1.0, reschedule)
        simulator.run(max_events=10)
        assert simulator.events_processed == 10

    def test_stop_predicate_halts_after_current_event(self):
        simulator = Simulator()
        fired = []
        done = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(2.0, lambda: (fired.append("b"), done.append(True)))
        simulator.schedule(3.0, fired.append, "c")
        simulator.run_until(10.0, stop=lambda: bool(done))
        assert fired == ["a", "b"]
        # Stopped early: the clock stays at the stopping event, not the
        # horizon, and the remaining event is still pending.
        assert simulator.now == 2.0
        simulator.run_until(10.0)
        assert fired == ["a", "b", "c"]
        assert simulator.now == 10.0

    def test_cancelled_head_does_not_admit_overshoot(self):
        """Regression: a cancelled event with time <= horizon at the top
        of the heap must not let run_until execute the next *live* event
        beyond the horizon.  Processes that cancel-and-resample clocks at
        every state change (the plane-degradation DES) keep the heap full
        of early cancelled entries, so the old head-time check routinely
        executed one post-horizon event -- biasing every point
        observation (``capacity_at``) toward post-event states."""
        simulator = Simulator()
        fired = []
        stale = simulator.schedule(1.0, fired.append, "stale")
        stale.cancel()
        simulator.schedule(10.0, fired.append, "late")
        simulator.run_until(5.0)
        assert fired == []
        assert simulator.now == 5.0
        simulator.run_until(20.0)
        assert fired == ["late"]

    def test_stop_predicate_false_runs_to_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.run_until(5.0, stop=lambda: False)
        assert fired == ["a"]
        assert simulator.now == 5.0
