"""Tests for repro.desim.kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.desim.kernel import Simulator
from repro.errors import ConfigurationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(3.0, order.append, "c")
        simulator.schedule(1.0, order.append, "a")
        simulator.schedule(2.0, order.append, "b")
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        simulator = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            simulator.schedule(1.0, order.append, tag)
        simulator.run()
        assert order == ["first", "second", "third"]

    def test_now_advances(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(2.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        simulator = Simulator()
        log = []

        def outer():
            log.append(("outer", simulator.now))
            simulator.schedule(1.0, inner)

        def inner():
            log.append(("inner", simulator.now))

        simulator.schedule(1.0, outer)
        simulator.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_rejects_negative_delay(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            simulator.schedule(-1.0, lambda: None)

    def test_rejects_scheduling_in_past(self):
        simulator = Simulator()
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(ConfigurationError):
            simulator.at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule(1.0, fired.append, 1)
        event.cancel()
        simulator.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        simulator = Simulator()
        event = simulator.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        simulator.run()


class TestRunUntil:
    def test_stops_at_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, fired.append, "early")
        simulator.schedule(10.0, fired.append, "late")
        simulator.run_until(5.0)
        assert fired == ["early"]
        assert simulator.now == 5.0

    def test_backwards_rejected(self):
        simulator = Simulator()
        simulator.run_until(5.0)
        with pytest.raises(ConfigurationError):
            simulator.run_until(1.0)

    def test_event_count(self):
        simulator = Simulator()
        for _ in range(4):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 4

    def test_max_events_cap(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule(1.0, reschedule)

        simulator.schedule(1.0, reschedule)
        simulator.run(max_events=10)
        assert simulator.events_processed == 10

    def test_stop_predicate_halts_after_current_event(self):
        simulator = Simulator()
        fired = []
        done = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(2.0, lambda: (fired.append("b"), done.append(True)))
        simulator.schedule(3.0, fired.append, "c")
        simulator.run_until(10.0, stop=lambda: bool(done))
        assert fired == ["a", "b"]
        # Stopped early: the clock stays at the stopping event, not the
        # horizon, and the remaining event is still pending.
        assert simulator.now == 2.0
        simulator.run_until(10.0)
        assert fired == ["a", "b", "c"]
        assert simulator.now == 10.0

    def test_cancelled_head_does_not_admit_overshoot(self):
        """Regression: a cancelled event with time <= horizon at the top
        of the heap must not let run_until execute the next *live* event
        beyond the horizon.  Processes that cancel-and-resample clocks at
        every state change (the plane-degradation DES) keep the heap full
        of early cancelled entries, so the old head-time check routinely
        executed one post-horizon event -- biasing every point
        observation (``capacity_at``) toward post-event states."""
        simulator = Simulator()
        fired = []
        stale = simulator.schedule(1.0, fired.append, "stale")
        stale.cancel()
        simulator.schedule(10.0, fired.append, "late")
        simulator.run_until(5.0)
        assert fired == []
        assert simulator.now == 5.0
        simulator.run_until(20.0)
        assert fired == ["late"]

    def test_stop_predicate_false_runs_to_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.run_until(5.0, stop=lambda: False)
        assert fired == ["a"]
        assert simulator.now == 5.0


class TestRunUntilCancelResampleProperty:
    """Pin the PR 7 cancelled-head horizon fix beyond its single
    regression case: under adversarial cancel/resample sequences --
    mass cancellations keeping the heap full of stale entries,
    callbacks that cancel peers and reschedule replacements, ``stop=``
    predicates cutting runs short -- the kernel must match a spec-level
    reference model (a plain sorted list with eager filtering, no lazy
    cancellation heap)."""

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_kernel_matches_reference_model(self, data):
        n = data.draw(st.integers(min_value=2, max_value=7), label="events")
        times = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=n,
                max_size=n,
            ),
            label="times",
        )
        # When event i fires it cancels event cancel_map[i] (-1: none)
        # and, if resample[i] is set, schedules a fresh event at
        # now + resample[i] -- the cancel-and-resample pattern the
        # plane-degradation DES hammers the heap with.
        cancel_map = data.draw(
            st.lists(
                st.integers(min_value=-1, max_value=n - 1),
                min_size=n,
                max_size=n,
            ),
            label="cancel_map",
        )
        resample = data.draw(
            st.lists(
                st.one_of(
                    st.none(),
                    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                ),
                min_size=n,
                max_size=n,
            ),
            label="resample",
        )
        precancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1)),
            label="precancel",
        )
        horizons = sorted(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=15.0, allow_nan=False),
                    min_size=1,
                    max_size=3,
                ),
                label="horizons",
            )
        )
        stop_after = data.draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=2 * n)),
            label="stop_after",
        )

        # --- Kernel side -------------------------------------------------
        simulator = Simulator()
        kernel_fired = []
        handles = {}
        next_id = [n]

        def kernel_callback(i):
            def callback():
                kernel_fired.append((i, simulator.now))
                j = cancel_map[i] if i < n else -1
                if j >= 0:
                    handles[j].cancel()
                extra = resample[i] if i < n else None
                if extra is not None:
                    k = next_id[0]
                    next_id[0] += 1
                    handles[k] = simulator.schedule(extra, kernel_callback(k))
            return callback

        for i, t in enumerate(times):
            handles[i] = simulator.at(t, kernel_callback(i))
        for i in precancel:
            handles[i].cancel()

        # --- Reference model: sorted list, eager filtering ---------------
        model_fired = []
        model_now = [0.0]
        model_events = []  # [time, seq, id, cancelled]
        model_by_id = {}
        model_next = [0, n]  # seq counter, id counter

        def model_add(i, t):
            entry = [t, model_next[0], i, False]
            model_next[0] += 1
            model_events.append(entry)
            model_by_id[i] = entry

        for i, t in enumerate(times):
            model_add(i, t)
        for i in precancel:
            model_by_id[i][3] = True

        def model_run_until(horizon, stop):
            while True:
                live = [e for e in model_events if not e[3] and e[0] <= horizon]
                if not live:
                    model_now[0] = horizon
                    return
                entry = min(live)
                model_events.remove(entry)
                time_, _, i, _ = entry
                model_now[0] = time_
                model_fired.append((i, time_))
                j = cancel_map[i] if i < n else -1
                if j >= 0 and model_by_id[j] is not None:
                    model_by_id[j][3] = True
                extra = resample[i] if i < n else None
                if extra is not None:
                    k = model_next[1]
                    model_next[1] += 1
                    model_add(k, model_now[0] + extra)
                if stop is not None and stop():
                    return

        # --- Drive both through the same horizons ------------------------
        for horizon in horizons:
            if stop_after is None:
                kernel_stop = model_stop = None
            else:
                kernel_stop = lambda: len(kernel_fired) >= stop_after
                model_stop = lambda: len(model_fired) >= stop_after
            simulator.run_until(horizon, stop=kernel_stop)
            model_run_until(horizon, model_stop)
            assert kernel_fired == model_fired, (
                f"divergence at horizon {horizon}: kernel {kernel_fired} "
                f"vs model {model_fired}"
            )
            assert simulator.now == model_now[0]
