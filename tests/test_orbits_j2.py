"""Tests for repro.orbits.j2 (secular oblateness perturbations)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SolverError
from repro.orbits.j2 import (
    SUN_SYNCHRONOUS_RATE_RAD_S,
    J2CircularOrbit,
    raan_drift_rate,
    sun_synchronous_inclination,
)
from repro.orbits.kepler import CircularOrbit


class TestDriftRate:
    def test_polar_orbit_does_not_precess(self):
        assert raan_drift_rate(500.0, math.pi / 2) == pytest.approx(0.0, abs=1e-12)

    def test_prograde_regresses_westward(self):
        assert raan_drift_rate(500.0, math.radians(45.0)) < 0.0

    def test_retrograde_precesses_eastward(self):
        assert raan_drift_rate(500.0, math.radians(135.0)) > 0.0

    def test_iss_like_magnitude(self):
        """ISS (~420 km, 51.6 deg): ~ -5 deg/day nodal regression."""
        rate = raan_drift_rate(420.0, math.radians(51.6))
        deg_per_day = math.degrees(rate) * 86400.0
        assert deg_per_day == pytest.approx(-5.0, abs=0.3)

    def test_rejects_bad_altitude(self):
        with pytest.raises(ConfigurationError):
            raan_drift_rate(0.0, 1.0)


class TestSunSynchronous:
    def test_800km_is_near_98_6_degrees(self):
        """Textbook value: ~98.6 deg at 800 km."""
        inclination = sun_synchronous_inclination(800.0)
        assert math.degrees(inclination) == pytest.approx(98.6, abs=0.2)

    def test_designed_orbit_reports_sun_synchronous(self):
        inclination = sun_synchronous_inclination(700.0)
        orbit = J2CircularOrbit(CircularOrbit(700.0, inclination))
        assert orbit.is_sun_synchronous()
        assert orbit.raan_rate() == pytest.approx(
            SUN_SYNCHRONOUS_RATE_RAD_S, rel=1e-9
        )

    def test_polar_orbit_is_not_sun_synchronous(self):
        orbit = J2CircularOrbit(CircularOrbit(700.0, math.pi / 2))
        assert not orbit.is_sun_synchronous()

    def test_infeasible_altitude_rejected(self):
        with pytest.raises(SolverError):
            sun_synchronous_inclination(60000.0)


class TestPropagation:
    def test_matches_unperturbed_at_epoch(self):
        base = CircularOrbit(500.0, 1.0, raan=0.3, phase=0.7)
        perturbed = J2CircularOrbit(base)
        assert np.allclose(perturbed.position_eci(0.0), base.position_eci(0.0))

    def test_radius_preserved(self):
        perturbed = J2CircularOrbit(CircularOrbit(500.0, 1.0))
        for t in (0.0, 5000.0, 90000.0):
            radius = np.linalg.norm(perturbed.position_eci(t))
            assert radius == pytest.approx(perturbed.base.radius_km(), rel=1e-12)

    def test_node_drifts_over_a_day(self):
        base = CircularOrbit(500.0, math.radians(45.0), raan=0.0)
        perturbed = J2CircularOrbit(base)
        drift = perturbed.raan_at(86400.0) - perturbed.raan_at(0.0)
        assert drift == pytest.approx(perturbed.raan_rate() * 86400.0)
        assert drift < -0.05  # several degrees per day, westward

    def test_common_drift_preserves_plane_spacing(self):
        """All planes of a Walker design share altitude and inclination,
        so J2 shifts every RAAN equally and the constellation geometry
        survives -- the design property the reference constellation
        relies on."""
        planes = [
            J2CircularOrbit(CircularOrbit(500.0, math.radians(85.0), raan=r))
            for r in (0.0, 1.0, 2.0)
        ]
        day = 86400.0
        spacings = [
            planes[i + 1].raan_at(day) - planes[i].raan_at(day)
            for i in range(len(planes) - 1)
        ]
        assert all(s == pytest.approx(1.0, abs=1e-12) for s in spacings)
