"""Tests for repro.core.config (constellation + evaluation parameters)."""

import pytest

from repro.core.config import (
    REFERENCE_CONSTELLATION,
    ConstellationConfig,
    EvaluationParams,
)
from repro.errors import ConfigurationError


class TestConstellationConfig:
    def test_reference_totals(self):
        """98 active satellites, 112 total (Section 2)."""
        assert REFERENCE_CONSTELLATION.total_active == 98
        assert REFERENCE_CONSTELLATION.total_satellites == 112

    def test_reference_underlap_threshold(self):
        assert REFERENCE_CONSTELLATION.underlap_threshold == 10

    def test_plane_geometry_uses_config_constants(self):
        geometry = REFERENCE_CONSTELLATION.plane_geometry(12)
        assert geometry.orbit_period == 90.0
        assert geometry.coverage_time == 9.0
        assert geometry.active_satellites == 12

    def test_rejects_invalid_plane_count(self):
        with pytest.raises(ConfigurationError):
            ConstellationConfig(planes=0)

    def test_rejects_negative_spares(self):
        with pytest.raises(ConfigurationError):
            ConstellationConfig(in_orbit_spares_per_plane=-1)


class TestEvaluationParams:
    def test_paper_aliases(self):
        params = EvaluationParams(
            deadline_minutes=5.0,
            signal_termination_rate=0.2,
            computation_rate=30.0,
            node_failure_rate_per_hour=1e-5,
            deployment_threshold=10,
            scheduled_deployment_hours=30000.0,
        )
        assert params.tau == 5.0
        assert params.mu == 0.2
        assert params.nu == 30.0
        assert params.lam == 1e-5
        assert params.eta == 10
        assert params.phi == 30000.0

    def test_mean_signal_duration(self):
        assert EvaluationParams(signal_termination_rate=0.5).mean_signal_duration == 2.0

    def test_capacity_range_matches_eq3(self):
        params = EvaluationParams()
        assert params.capacity_range() == (9, 10, 11, 12, 13, 14)

    def test_with_replaces_fields(self):
        params = EvaluationParams()
        changed = params.with_(deadline_minutes=3.0)
        assert changed.tau == 3.0
        assert params.tau == 5.0

    def test_rejects_nonpositive_mu(self):
        with pytest.raises(ConfigurationError):
            EvaluationParams(signal_termination_rate=0.0)

    def test_rejects_nonpositive_nu(self):
        with pytest.raises(ConfigurationError):
            EvaluationParams(computation_rate=-1.0)

    def test_rejects_threshold_above_capacity(self):
        with pytest.raises(ConfigurationError):
            EvaluationParams(deployment_threshold=15)

    def test_rejects_negative_deadline(self):
        with pytest.raises(ConfigurationError):
            EvaluationParams(deadline_minutes=-0.1)

    def test_rejects_nonpositive_replacement_latency(self):
        with pytest.raises(ConfigurationError):
            EvaluationParams(replacement_latency_hours=0.0)

    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ConfigurationError):
            EvaluationParams(node_failure_rate_per_hour=0.0)
