"""Tests for repro.geolocation.wls (iterative WLS estimation)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geolocation.measurements import Emitter, MeasurementGenerator
from repro.geolocation.wls import WLSEstimator
from repro.orbits import build_reference_constellation
from repro.orbits.frames import GeodeticPoint, subsatellite_point


@pytest.fixture(scope="module")
def setup():
    constellation = build_reference_constellation()
    satellite = constellation.satellites[0]
    track = subsatellite_point(satellite.position_ecef(60.0))
    emitter = Emitter(
        GeodeticPoint(
            track.latitude + math.radians(0.5),
            track.longitude + math.radians(0.8),
        ),
        900.0e6,
    )
    generator = MeasurementGenerator(
        emitter,
        doppler_sigma_hz=5.0,
        footprint_half_angle=constellation.footprint.half_angle,
    )
    return constellation, satellite, emitter, generator


def full_pass(generator, satellite, rng, offset=0.0):
    times = np.arange(-180.0, 300.0, 10.0) + 60.0 + offset
    return generator.observe(satellite, times, rng)


class TestDopplerSolve:
    def test_converges_to_truth(self, setup):
        _, satellite, emitter, generator = setup
        rng = np.random.default_rng(100)
        measurements = full_pass(generator, satellite, rng)
        estimator = WLSEstimator()
        guess = subsatellite_point(measurements[0].satellite_position_ecef)
        result = estimator.solve(measurements, guess)
        assert result.converged
        assert result.error_km(emitter.location) < 2.0

    def test_residuals_consistent_with_noise(self, setup):
        _, satellite, emitter, generator = setup
        rng = np.random.default_rng(101)
        measurements = full_pass(generator, satellite, rng)
        result = WLSEstimator().solve(
            measurements, subsatellite_point(measurements[0].satellite_position_ecef)
        )
        assert 0.5 < result.residual_rms < 2.0  # weighted residuals ~ N(0,1)

    def test_frequency_recovered(self, setup):
        _, satellite, emitter, generator = setup
        rng = np.random.default_rng(102)
        measurements = full_pass(generator, satellite, rng)
        result = WLSEstimator().solve(
            measurements, subsatellite_point(measurements[0].satellite_position_ecef)
        )
        assert result.frequency_hz == pytest.approx(900.0e6, abs=50.0)

    def test_estimated_error_calibrated(self, setup):
        """The covariance-based error estimate has the same order of
        magnitude as the realised error distribution."""
        _, satellite, emitter, generator = setup
        errors, estimates = [], []
        for seed in range(8):
            rng = np.random.default_rng(200 + seed)
            measurements = full_pass(generator, satellite, rng)
            result = WLSEstimator().solve(
                measurements,
                subsatellite_point(measurements[0].satellite_position_ecef),
            )
            errors.append(result.error_km(emitter.location))
            estimates.append(result.horizontal_error_km)
        assert np.mean(estimates) == pytest.approx(
            np.mean(errors), rel=3.0, abs=1.0
        )

    def test_known_frequency_two_parameter_solve(self, setup):
        """With the frequency fixed, multistart picks the true side of
        the ground track as the best-residual solution."""
        _, satellite, emitter, generator = setup
        rng = np.random.default_rng(103)
        measurements = full_pass(generator, satellite, rng)
        estimator = WLSEstimator(estimate_frequency=False)
        track = subsatellite_point(measurements[0].satellite_position_ecef)
        guesses = [
            GeodeticPoint(track.latitude, track.longitude + math.radians(dlon))
            for dlon in (-2.0, -0.8, 0.8, 2.0)
        ]
        solutions = estimator.solve_multistart(
            measurements, guesses, nominal_frequency_hz=900.0e6
        )
        assert solutions
        best = solutions[0]
        assert best.frequency_hz is None
        assert best.error_km(emitter.location) < 5.0

    def test_needs_minimum_measurements(self, setup):
        _, satellite, _, generator = setup
        rng = np.random.default_rng(104)
        measurements = full_pass(generator, satellite, rng)[:2]
        with pytest.raises(ConfigurationError):
            WLSEstimator().solve(
                measurements, GeodeticPoint.from_degrees(0.0, 0.0)
            )

    def test_empty_measurements_rejected(self):
        with pytest.raises(ConfigurationError):
            WLSEstimator().solve([], GeodeticPoint.from_degrees(0, 0))


class TestAmbiguity:
    def test_short_arc_has_mirror_ambiguity(self, setup):
        """A short single-pass arc admits two WLS solutions (the
        ground-track mirror), the premise for needing a second
        satellite (Section 3.1 / Levanon)."""
        _, satellite, emitter, generator = setup
        rng = np.random.default_rng(105)
        times = np.arange(30.0, 100.0, 10.0)  # short one-sided arc
        measurements = generator.observe(satellite, times, rng)
        track = subsatellite_point(measurements[0].satellite_position_ecef)
        # Guesses spread across both sides of the ground track.
        guesses = [
            GeodeticPoint(track.latitude, track.longitude + math.radians(dlon))
            for dlon in (-2.0, -0.8, 0.8, 2.0)
        ]
        solutions = WLSEstimator().solve_multistart(
            measurements, guesses, distinct_km=30.0
        )
        assert len(solutions) >= 2
        # Both survivors fit the data nearly equally well -- the
        # ambiguity is real, not a bad local minimum.
        assert all(s.residual_rms < 2.0 for s in solutions[:2])

    def test_two_satellite_geometry_resolves_ambiguity(self, setup):
        constellation, satellite, emitter, generator = setup
        rng = np.random.default_rng(106)
        times = np.arange(30.0, 100.0, 10.0)
        measurements = generator.observe(satellite, times, rng)
        # Add the trailing satellite's pass over the same spot.
        trailing = constellation.planes[0].satellites[13]
        revisit = satellite.orbit.period_s() / 14.0
        measurements += generator.observe(trailing, times + revisit, rng)
        track = subsatellite_point(measurements[0].satellite_position_ecef)
        east = GeodeticPoint(track.latitude, track.longitude + math.radians(2.0))
        west = GeodeticPoint(track.latitude, track.longitude - math.radians(2.0))
        solutions = WLSEstimator().solve_multistart(
            measurements, [east, west], distinct_km=30.0
        )
        good = [s for s in solutions if s.residual_rms < 3.0]
        assert len(good) == 1
        assert good[0].error_km(emitter.location) < 5.0
