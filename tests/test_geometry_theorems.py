"""Tests for repro.geometry.theorems (opportunity windows)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry
from repro.geometry.theorems import (
    sequential_window,
    simultaneous_window,
    theorem1_admits,
    theorem2_admits,
)


class TestSimultaneousWindow:
    def test_immediate_measure_is_l2(self):
        geometry = PlaneGeometry.reference(12)
        window = simultaneous_window(geometry, 5.0)
        assert window.immediate_measure == pytest.approx(1.5)

    def test_waiting_range_clipped_by_deadline(self):
        geometry = PlaneGeometry.reference(12)  # alpha length 6
        window = simultaneous_window(geometry, 5.0)
        assert window.wait_lo == 0.0
        assert window.wait_hi == pytest.approx(5.0)

    def test_waiting_range_clipped_by_alpha(self):
        geometry = PlaneGeometry.reference(12)
        window = simultaneous_window(geometry, 20.0)
        assert window.wait_hi == pytest.approx(6.0)  # whole alpha

    def test_rejected_for_underlap(self):
        with pytest.raises(ConfigurationError):
            simultaneous_window(PlaneGeometry.reference(9), 5.0)

    def test_probability_mass_in_unit_interval(self):
        geometry = PlaneGeometry.reference(13)
        window = simultaneous_window(geometry, 5.0)
        assert 0.0 < window.probability_mass <= 1.0


class TestSequentialWindow:
    def test_window_bounds_match_theorem2(self):
        geometry = PlaneGeometry.reference(9)  # L1=10, L2=1
        window = sequential_window(geometry, 5.0)
        assert window.wait_lo == pytest.approx(1.0)
        assert window.wait_hi == pytest.approx(5.0)
        assert window.immediate_measure == 0.0

    def test_empty_when_deadline_below_gap(self):
        geometry = PlaneGeometry.reference(6)  # L2 = 6
        window = sequential_window(geometry, 5.0)
        assert window.waiting_measure == 0.0

    def test_rejected_for_overlap(self):
        with pytest.raises(ConfigurationError):
            sequential_window(PlaneGeometry.reference(12), 5.0)

    def test_tangent_plane_window_starts_at_zero(self):
        geometry = PlaneGeometry.reference(10)  # L2 = 0
        window = sequential_window(geometry, 5.0)
        assert window.wait_lo == 0.0
        assert window.wait_hi == pytest.approx(5.0)


class TestAdmissionPredicates:
    def test_theorem1_admits_beta_onsets(self):
        geometry = PlaneGeometry.reference(12)
        assert theorem1_admits(geometry, 5.0, 6.5)  # inside beta

    def test_theorem1_admits_alpha_within_deadline(self):
        geometry = PlaneGeometry.reference(12)
        assert theorem1_admits(geometry, 5.0, 2.0)  # wait 4 <= 5
        assert not theorem1_admits(geometry, 3.0, 2.0)  # wait 4 > 3

    def test_theorem2_requires_alpha_onset(self):
        geometry = PlaneGeometry.reference(9)
        assert not theorem2_admits(geometry, 5.0, 9.5)  # in the gap

    def test_theorem2_admits_late_alpha_onsets(self):
        geometry = PlaneGeometry.reference(9)
        assert theorem2_admits(geometry, 5.0, 8.0)  # wait 2 in (1, 5]
        assert not theorem2_admits(geometry, 5.0, 2.0)  # wait 8 > 5

    def test_theorem2_false_when_deadline_below_gap(self):
        geometry = PlaneGeometry.reference(9)
        assert not theorem2_admits(geometry, 0.5, 8.0)


@given(
    k=st.integers(min_value=11, max_value=14),
    tau=st.floats(min_value=0.0, max_value=30.0),
)
def test_property_simultaneous_window_consistent(k, tau):
    geometry = PlaneGeometry.reference(k)
    window = simultaneous_window(geometry, tau)
    assert 0.0 <= window.waiting_measure <= geometry.single_coverage_length + 1e-9
    assert window.immediate_measure == pytest.approx(geometry.l2)
    assert window.total_measure <= geometry.l1 + 1e-9


@given(
    k=st.integers(min_value=2, max_value=10),
    tau=st.floats(min_value=0.0, max_value=30.0),
)
def test_property_sequential_window_consistent(k, tau):
    geometry = PlaneGeometry.reference(k)
    window = sequential_window(geometry, tau)
    assert window.wait_lo == pytest.approx(geometry.l2)
    assert window.wait_hi <= min(geometry.l1, max(tau, geometry.l2)) + 1e-9
    assert window.waiting_measure >= 0.0
