"""Tests for repro.orbits.frames (frames and spherical geodesy)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH
from repro.orbits.frames import (
    GeodeticPoint,
    central_angle,
    ecef_to_eci,
    ecef_to_geodetic,
    ecef_to_geodetic_wgs84,
    eci_to_ecef,
    geodetic_to_ecef,
    great_circle_distance_km,
    rotation_x,
    rotation_z,
    subsatellite_point,
)


class TestGeodeticPoint:
    def test_from_degrees(self):
        point = GeodeticPoint.from_degrees(30.0, -120.0, 0.5)
        assert point.latitude == pytest.approx(math.radians(30.0))
        assert point.longitude_deg == pytest.approx(-120.0)
        assert point.altitude_km == 0.5

    def test_longitude_wrapping(self):
        point = GeodeticPoint.from_degrees(0.0, 270.0)
        assert point.longitude_deg == pytest.approx(-90.0)

    def test_rejects_bad_latitude(self):
        with pytest.raises(ConfigurationError):
            GeodeticPoint(latitude=2.0, longitude=0.0)


class TestRotations:
    def test_rotation_matrices_orthonormal(self):
        for matrix in (rotation_z(0.7), rotation_x(-1.2)):
            assert np.allclose(matrix @ matrix.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(matrix) == pytest.approx(1.0)

    def test_rotation_z_quarter_turn(self):
        rotated = rotation_z(math.pi / 2) @ np.array([1.0, 0.0, 0.0])
        assert np.allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)


class TestFrameConversions:
    def test_eci_ecef_roundtrip(self):
        position = np.array([7000.0, -1500.0, 3000.0])
        t = 1234.5
        assert np.allclose(
            ecef_to_eci(eci_to_ecef(position, t), t), position, atol=1e-9
        )

    def test_frames_aligned_at_epoch(self):
        position = np.array([7000.0, 0.0, 0.0])
        assert np.allclose(eci_to_ecef(position, 0.0), position)

    def test_rotation_after_quarter_day(self):
        quarter_day = (math.pi / 2) / EARTH.rotation_rate_rad_s
        fixed = eci_to_ecef(np.array([7000.0, 0.0, 0.0]), quarter_day)
        # The Earth rotated 90 degrees east; the inertial point appears
        # 90 degrees west in the fixed frame.
        assert fixed[1] == pytest.approx(-7000.0, abs=1e-6)


class TestGeodesy:
    def test_geodetic_roundtrip(self):
        point = GeodeticPoint.from_degrees(35.0, -118.0, 120.0)
        recovered = ecef_to_geodetic(geodetic_to_ecef(point))
        assert recovered.latitude == pytest.approx(point.latitude, abs=1e-12)
        assert recovered.longitude == pytest.approx(point.longitude, abs=1e-12)
        assert recovered.altitude_km == pytest.approx(120.0, abs=1e-9)

    def test_equator_point(self):
        ecef = geodetic_to_ecef(GeodeticPoint.from_degrees(0.0, 0.0))
        assert np.allclose(ecef, [EARTH.radius_km, 0.0, 0.0])

    def test_north_pole(self):
        ecef = geodetic_to_ecef(GeodeticPoint.from_degrees(90.0, 45.0))
        assert ecef[2] == pytest.approx(EARTH.radius_km)
        assert math.hypot(ecef[0], ecef[1]) == pytest.approx(0.0, abs=1e-9)

    def test_origin_rejected(self):
        with pytest.raises(ConfigurationError):
            ecef_to_geodetic(np.zeros(3))

    def test_wgs84_matches_spherical_at_equator_longitude(self):
        position = np.array([6400.0, 1000.0, 0.0])
        spherical = ecef_to_geodetic(position)
        ellipsoidal = ecef_to_geodetic_wgs84(position)
        assert ellipsoidal.longitude == pytest.approx(spherical.longitude)
        assert ellipsoidal.latitude == pytest.approx(0.0, abs=1e-9)

    def test_wgs84_polar_axis(self):
        point = ecef_to_geodetic_wgs84(np.array([0.0, 0.0, 6400.0]))
        assert point.latitude == pytest.approx(math.pi / 2)


class TestDistances:
    def test_central_angle_orthogonal(self):
        assert central_angle([1, 0, 0], [0, 5, 0]) == pytest.approx(math.pi / 2)

    def test_central_angle_zero_vector_rejected(self):
        with pytest.raises(ConfigurationError):
            central_angle([0, 0, 0], [1, 0, 0])

    def test_quarter_circumference(self):
        a = GeodeticPoint.from_degrees(0.0, 0.0)
        b = GeodeticPoint.from_degrees(0.0, 90.0)
        expected = 0.5 * math.pi * EARTH.radius_km
        assert great_circle_distance_km(a, b) == pytest.approx(expected)

    def test_small_distance_accuracy(self):
        a = GeodeticPoint.from_degrees(30.0, 10.0)
        b = GeodeticPoint.from_degrees(30.0, 10.001)
        # 0.001 deg of longitude at 30N ~ 96.5 m.
        expected = math.radians(0.001) * EARTH.radius_km * math.cos(math.radians(30))
        assert great_circle_distance_km(a, b) == pytest.approx(expected, rel=1e-6)

    def test_subsatellite_point(self):
        point = subsatellite_point(np.array([7000.0, 0.0, 0.0]))
        assert point.latitude == 0.0
        assert point.altitude_km == 0.0


@settings(max_examples=50)
@given(
    lat=st.floats(min_value=-89.0, max_value=89.0),
    lon=st.floats(min_value=-179.0, max_value=179.0),
    alt=st.floats(min_value=0.0, max_value=2000.0),
)
def test_property_geodetic_roundtrip(lat, lon, alt):
    point = GeodeticPoint.from_degrees(lat, lon, alt)
    recovered = ecef_to_geodetic(geodetic_to_ecef(point))
    assert recovered.latitude == pytest.approx(point.latitude, abs=1e-9)
    assert recovered.longitude == pytest.approx(point.longitude, abs=1e-9)


@settings(max_examples=50)
@given(
    t=st.floats(min_value=0.0, max_value=1e6),
    x=st.floats(min_value=-1e4, max_value=1e4),
    y=st.floats(min_value=-1e4, max_value=1e4),
    z=st.floats(min_value=-1e4, max_value=1e4),
)
def test_property_frame_rotation_preserves_norm(t, x, y, z):
    position = np.array([x, y, z])
    rotated = eci_to_ecef(position, t)
    assert np.linalg.norm(rotated) == pytest.approx(
        np.linalg.norm(position), abs=1e-6
    )
