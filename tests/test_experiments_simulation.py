"""Tests for the simulation-backed experiment modules (protocol
properties, Monte-Carlo validation, geolocation accuracy, orbits
constants, SAN ablation) with reduced workloads."""

import pytest

from repro.experiments import (
    geolocation_exp,
    montecarlo_exp,
    orbits_exp,
    protocol_exp,
    san_ablation,
)


class TestProtocolExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return protocol_exp.run(samples=80, seed=7)

    def test_four_configurations(self, result):
        assert len(result.rows) == 4

    def test_done_propagation_delivers_all_detected(self, result):
        rows = {row["configuration"]: row for row in result.rows}
        healthy = rows["done-propagation, healthy"]
        failed = rows["done-propagation, successor fail-silent"]
        assert healthy["alerts delivered"] == healthy["detected"]
        assert healthy["timely (<= tau)"] == healthy["detected"]
        assert failed["alerts delivered"] == failed["detected"]
        assert failed["timely (<= tau)"] == failed["detected"]

    def test_successor_responsibility_loses_alerts_under_failure(self, result):
        rows = {row["configuration"]: row for row in result.rows}
        failed = rows["successor-responsibility, successor fail-silent"]
        assert failed["alerts delivered"] < failed["detected"]

    def test_successor_responsibility_healthy_delivers_but_late(self, result):
        """The quantified Section 3.2 trade-off: without backward
        messaging every detected signal still gets an alert, but the
        ones whose successor arrives after the deadline are late."""
        rows = {row["configuration"]: row for row in result.rows}
        healthy = rows["successor-responsibility, healthy"]
        assert healthy["alerts delivered"] == healthy["detected"]
        assert healthy["timely (<= tau)"] < healthy["alerts delivered"]

    def test_timely_chain_respects_bound(self, result):
        for row in result.rows:
            assert row["max timely chain"] <= row["chain bound M[k]"]


class TestMonteCarloExperiment:
    def test_conditional_validation_columns_agree(self):
        result = montecarlo_exp.run_conditional_validation(
            capacities=(9, 12), samples=20_000, protocol_samples=400, seed=3
        )
        for row in result.rows:
            assert row["rule-based MC"] == pytest.approx(
                row["closed form"], abs=0.02
            )
            assert row["protocol MC"] == pytest.approx(
                row["closed form"], abs=0.07
            )

    def test_capacity_validation_agrees(self):
        result = montecarlo_exp.run_capacity_validation(
            lam=1e-4, stages=16, horizon_hours=1.0e6, seed=9
        )
        for row in result.rows:
            assert row["independent DES"] == pytest.approx(
                row["SAN (Erlang unfold)"], abs=0.05
            )


class TestGeolocationExperiment:
    def test_dual_coverage_beats_single(self):
        result = geolocation_exp.run(trials=6, seed=21)
        by_level = {row["QoS level"]: row for row in result.rows}
        assert (
            by_level[2]["median error (km)"] < by_level[1]["median error (km)"]
        )
        assert (
            by_level[3]["median error (km)"] < by_level[1]["median error (km)"]
        )


class TestOrbitsExperiment:
    def test_constants_match(self):
        result = orbits_exp.run_constants(capacities=(14, 10))
        for row in result.rows:
            assert row["measured"] == pytest.approx(row["published"], rel=0.05)

    def test_latitude_profile_monotone_trend(self):
        result = orbits_exp.run_latitude_profile(
            latitudes_deg=(0.0, 45.0, 75.0), duration_s=5400.0, step_s=120.0
        )
        overlapped = [row["overlapped fraction"] for row in result.rows]
        covered = [row["covered fraction"] for row in result.rows]
        assert all(c == 1.0 for c in covered)
        assert overlapped[-1] > overlapped[0]


class TestSanAblation:
    def test_error_decreases_with_stages(self):
        result = san_ablation.run(
            stage_grid=(1, 4, 16), simulate=False, lam=5e-5
        )
        by_stage = {row["stages"]: row["TV vs max stages"] for row in result.rows}
        assert by_stage[1] > by_stage[16]
        assert by_stage[16] == 0.0  # 16 is the max of the grid

    def test_exponential_baseline_is_worst(self):
        result = san_ablation.run(
            stage_grid=(4, 16), simulate=False, lam=5e-5
        )
        rows = {str(row["stages"]): row["TV vs max stages"] for row in result.rows}
        assert rows["exp (no det support)"] >= rows["4"] - 1e-12
