"""Tests for repro.units (unit conventions)."""

import math

import pytest

from repro import units


def test_time_conversions_roundtrip():
    assert units.minutes_to_hours(90.0) == 1.5
    assert units.hours_to_minutes(1.5) == 90.0
    assert units.hours_to_minutes(units.minutes_to_hours(7.3)) == pytest.approx(7.3)
    assert units.minutes_to_seconds(2.0) == 120.0
    assert units.seconds_to_minutes(120.0) == 2.0


def test_rate_conversions_are_inverse_of_time():
    # lambda = 1e-4 per hour: per minute it must be smaller.
    per_minute = units.per_hour_to_per_minute(1e-4)
    assert per_minute == pytest.approx(1e-4 / 60.0)
    assert units.per_minute_to_per_hour(per_minute) == pytest.approx(1e-4)


def test_angle_conversions():
    assert units.deg_to_rad(180.0) == pytest.approx(math.pi)
    assert units.rad_to_deg(math.pi / 2) == pytest.approx(90.0)


def test_constants_consistent():
    assert units.MINUTES_PER_HOUR * units.SECONDS_PER_MINUTE == units.SECONDS_PER_HOUR
