"""Tests for the transient capacity analysis extension
(``capacity_transient``)."""

import pytest

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_distribution,
    capacity_transient,
)


@pytest.fixture(scope="module")
def config():
    return CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=10)


@pytest.fixture(scope="module")
def transient(config):
    return capacity_transient(
        config, [0.0, 1000.0, 5000.0, 15000.0], stages=12
    )


class TestTransient:
    def test_starts_at_full_capacity(self, transient):
        initial = transient[0.0]
        assert initial.get(14, 0.0) == pytest.approx(1.0)
        assert sum(p for k, p in initial.items() if k != 14) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_distributions_proper_at_all_times(self, transient):
        for distribution in transient.values():
            assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-6)
            assert all(p >= -1e-12 for p in distribution.values())

    def test_full_capacity_mass_decays(self, transient):
        p14 = [transient[t].get(14, 0.0) for t in (0.0, 1000.0, 5000.0, 15000.0)]
        assert p14 == sorted(p14, reverse=True)
        assert p14[-1] < 0.1

    def test_threshold_mass_grows_before_restore(self, transient):
        p10 = [transient[t].get(10, 0.0) for t in (0.0, 1000.0, 5000.0, 15000.0)]
        assert p10 == sorted(p10)

    def test_long_run_near_steady_state(self, config):
        """Far into the horizon the (Erlang-smoothed) transient
        approaches the stationary distribution."""
        steady = capacity_distribution(config, stages=12)
        late = capacity_transient(config, [400000.0], stages=12)[400000.0]
        tv = 0.5 * sum(
            abs(steady.get(k, 0.0) - late.get(k, 0.0))
            for k in set(steady) | set(late)
        )
        assert tv < 0.05


class TestIncrementalEvaluation:
    TIMES = [0.0, 1000.0, 3000.0, 6000.0, 12000.0, 24000.0]

    def test_incremental_matches_from_scratch(self, config):
        """Advancing the uniformisation vector point-to-point is the
        same chain as restarting each solve from t=0 (Markov property);
        the shared truncation tolerance keeps them within 1e-12."""
        incremental = capacity_transient(config, self.TIMES, stages=12)
        scratch = capacity_transient(
            config, self.TIMES, stages=12, incremental=False
        )
        assert set(incremental) == set(scratch)
        for t in self.TIMES:
            keys = set(incremental[t]) | set(scratch[t])
            for k in keys:
                assert incremental[t].get(k, 0.0) == pytest.approx(
                    scratch[t].get(k, 0.0), abs=1e-12
                )

    def test_unsorted_and_duplicate_times(self, config):
        """The caller's time order and duplicate points do not change
        the result -- evaluation is internally sorted and unique."""
        shuffled = capacity_transient(
            config, [6000.0, 1000.0, 6000.0, 0.0], stages=12
        )
        ordered = capacity_transient(config, [0.0, 1000.0, 6000.0], stages=12)
        assert list(shuffled) == [6000.0, 1000.0, 0.0]
        for t, distribution in ordered.items():
            assert shuffled[t] == distribution
