"""Cross-cutting hypothesis property tests: invariants that tie the
layers together, exercised over randomised parameter domains."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.qos_model import (
    conditional_distribution,
    g3_oaq,
    window_success_integral,
)
from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.geometry.plane import PlaneGeometry
from repro.san.ctmc import CTMC


def make_params(tau, mu, nu=30.0):
    return EvaluationParams(
        deadline_minutes=tau,
        signal_termination_rate=mu,
        computation_rate=nu,
    )


class TestWindowIntegral:
    @settings(max_examples=60)
    @given(
        mu=st.floats(min_value=0.0, max_value=5.0),
        nu=st.floats(min_value=0.1, max_value=100.0),
        tau=st.floats(min_value=0.1, max_value=50.0),
        lo_frac=st.floats(min_value=0.0, max_value=1.0),
        hi_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bounded_by_window_length(self, mu, nu, tau, lo_frac, hi_frac):
        lo = tau * min(lo_frac, hi_frac)
        hi = tau * max(lo_frac, hi_frac)
        value = window_success_integral(mu, nu, tau, lo, hi)
        assert -1e-12 <= value <= (hi - lo) + 1e-9

    @settings(max_examples=40)
    @given(
        mu=st.floats(min_value=0.01, max_value=3.0),
        nu=st.floats(min_value=0.5, max_value=60.0),
        tau=st.floats(min_value=1.0, max_value=20.0),
    )
    def test_monotone_in_deadline(self, mu, nu, tau):
        narrow = window_success_integral(mu, nu, tau, 0.0, tau / 2)
        wide = window_success_integral(mu, nu, tau + 1.0, 0.0, tau / 2)
        assert wide >= narrow - 1e-10

    @settings(max_examples=40)
    @given(
        nu=st.floats(min_value=0.5, max_value=60.0),
        tau=st.floats(min_value=1.0, max_value=20.0),
        mu=st.floats(min_value=0.01, max_value=2.0),
    )
    def test_decreasing_in_termination_rate(self, nu, tau, mu):
        """Shorter-lived signals can only hurt."""
        short = window_success_integral(mu + 0.5, nu, tau, 0.0, tau)
        long = window_success_integral(mu, nu, tau, 0.0, tau)
        assert long >= short - 1e-10


class TestSchemeDominance:
    @settings(max_examples=60, deadline=None)
    @given(
        k=st.integers(min_value=2, max_value=14),
        tau=st.floats(min_value=0.1, max_value=8.9),
        mu=st.floats(min_value=0.05, max_value=2.0),
        nu=st.floats(min_value=1.0, max_value=60.0),
    )
    def test_oaq_stochastically_dominates_baq(self, k, tau, mu, nu):
        """The headline claim holds on the whole parameter domain, not
        just the paper's operating points."""
        params = make_params(tau, mu, nu)
        geometry = params.constellation.plane_geometry(k)
        oaq = conditional_distribution(geometry, params, Scheme.OAQ)
        baq = conditional_distribution(geometry, params, Scheme.BAQ)
        for level in QoSLevel:
            assert oaq.at_least(level) >= baq.at_least(level) - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=11, max_value=14),
        mu=st.floats(min_value=0.05, max_value=2.0),
        tau_low=st.floats(min_value=0.1, max_value=4.0),
        extra=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_g3_monotone_in_deadline(self, k, mu, tau_low, extra):
        geometry = PlaneGeometry.reference(k)
        low = g3_oaq(geometry, make_params(tau_low, mu))
        high = g3_oaq(geometry, make_params(tau_low + extra, mu))
        assert high >= low - 1e-12


class TestQoSDistributionAlgebra:
    @settings(max_examples=60)
    @given(
        weights_a=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4
        ),
        weights_b=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4
        ),
        alpha=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_mixture_survival_is_weighted_average(
        self, weights_a, weights_b, alpha
    ):
        def normalise(weights):
            total = sum(weights)
            return QoSDistribution(
                {level: w / total for level, w in zip(QoSLevel, weights)}
            )

        a, b = normalise(weights_a), normalise(weights_b)
        if alpha in (0.0, 1.0):
            return
        mix = QoSDistribution.mixture([(alpha, a), (1.0 - alpha, b)])
        for level in QoSLevel:
            expected = alpha * a.at_least(level) + (1 - alpha) * b.at_least(level)
            assert mix.at_least(level) == pytest.approx(expected, abs=1e-9)


class TestCTMCProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        rates=st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=10.0),
                st.floats(min_value=0.05, max_value=10.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_birth_death_detailed_balance(self, rates):
        """Random birth-death chains: the solved stationary vector
        satisfies detailed balance exactly."""
        transitions = []
        for state, (up, down) in enumerate(rates):
            transitions.append((state, state + 1, up))
            transitions.append((state + 1, state, down))
        chain = CTMC(len(rates) + 1, transitions)
        pi = chain.steady_state()
        assert pi.sum() == pytest.approx(1.0)
        for state, (up, down) in enumerate(rates):
            assert pi[state] * up == pytest.approx(
                pi[state + 1] * down, rel=1e-6
            )

    @settings(max_examples=30, deadline=None)
    @given(
        rates=st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=10.0),
                st.floats(min_value=0.05, max_value=10.0),
            ),
            min_size=1,
            max_size=4,
        ),
        t=st.floats(min_value=0.0, max_value=20.0),
    )
    def test_transient_is_probability_vector(self, rates, t):
        transitions = []
        for state, (up, down) in enumerate(rates):
            transitions.append((state, state + 1, up))
            transitions.append((state + 1, state, down))
        chain = CTMC(len(rates) + 1, transitions)
        p = chain.transient(t)
        assert p.sum() == pytest.approx(1.0, abs=1e-8)
        assert (p >= -1e-10).all()


class TestTheoremWindowConsistency:
    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(min_value=11, max_value=14),
        tau=st.floats(min_value=0.2, max_value=8.9),
    )
    def test_theorem1_measure_matches_window(self, k, tau):
        """The cycle measure of onsets admitted by Theorem 1's predicate
        equals the analytic window measure (grid integration)."""
        from repro.geometry.theorems import simultaneous_window, theorem1_admits

        geometry = PlaneGeometry.reference(k)
        window = simultaneous_window(geometry, tau)
        cells = 4000
        step = geometry.l1 / cells
        admitted = sum(
            step
            for i in range(cells)
            if theorem1_admits(geometry, tau, (i + 0.5) * step)
        )
        assert admitted == pytest.approx(window.total_measure, abs=3 * step)

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(min_value=2, max_value=10),
        tau=st.floats(min_value=0.2, max_value=8.9),
    )
    def test_theorem2_measure_matches_window(self, k, tau):
        from repro.geometry.theorems import sequential_window, theorem2_admits

        geometry = PlaneGeometry.reference(k)
        window = sequential_window(geometry, tau)
        cells = 4000
        step = geometry.l1 / cells
        admitted = sum(
            step
            for i in range(cells)
            if theorem2_admits(geometry, tau, (i + 0.5) * step)
        )
        assert admitted == pytest.approx(window.total_measure, abs=3 * step)
