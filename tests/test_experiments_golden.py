"""Golden regression tests: the engine refactor must be provably
behavior-preserving.

``tests/golden/experiments_golden.json`` holds the full-precision rows
produced by the seed's per-point re-solve implementation of
``run_tau_sweep`` / ``run_mu_sweep`` / fig7-fig9 (captured before the
engine refactor).  Every numeric cell is pinned to 1e-9 here; the
4-decimal tables in ``experiments_output.txt`` are additionally
cross-checked at rendering precision to tie the goldens to the
committed experiment record.
"""

import json
import pathlib

import pytest

from repro.experiments import fig7, fig8, fig9, sweeps

_HERE = pathlib.Path(__file__).parent
_GOLDEN_PATH = _HERE / "golden" / "experiments_golden.json"
_OUTPUT_TXT = _HERE.parent / "experiments_output.txt"

_RUNNERS = {
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "tau-sweep": sweeps.run_tau_sweep,
    "mu-sweep": sweeps.run_mu_sweep,
}


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def results():
    """Each experiment regenerated once (module scope: the five tables
    share most of their capacity solves through the memo cache)."""
    return {name: run() for name, run in _RUNNERS.items()}


@pytest.mark.parametrize("name", sorted(_RUNNERS))
def test_experiment_matches_golden_to_1e9(name, golden, results):
    expected = golden[name]
    result = results[name]
    assert result.headers == expected["headers"]
    assert len(result.rows) == len(expected["rows"])
    for index, (row, expected_row) in enumerate(
        zip(result.rows, expected["rows"])
    ):
        for header in expected["headers"]:
            value, pinned = row[header], expected_row[header]
            where = f"{name} row {index} column {header!r}"
            if isinstance(pinned, float):
                assert value == pytest.approx(pinned, abs=1e-9), where
            else:
                assert value == pinned, where


def _parse_table(text: str, experiment_id: str):
    """Extract ``(headers, rows-of-strings)`` of the aligned-text table
    for ``experiment_id`` from experiments_output.txt (the later ASCII
    chart with the same title is skipped by requiring the ``===``
    underline)."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.startswith(f"[{experiment_id}] ") and lines[i + 1].startswith(
            "==="
        ):
            break
    else:  # pragma: no cover - corrupt fixture
        raise AssertionError(f"no table for {experiment_id}")
    headers = [h.strip() for h in lines[i + 2].split("  ") if h.strip()]
    rows = []
    for line in lines[i + 4 :]:
        if not line.strip() or line.startswith("note:"):
            break
        rows.append([cell for cell in line.split() if cell])
    return headers, rows


@pytest.mark.parametrize("name", sorted(_RUNNERS))
def test_experiment_matches_recorded_output_at_render_precision(
    name, results
):
    """The regenerated tables still print exactly what the committed
    experiments_output.txt records (floats render at 4 decimals)."""
    headers, recorded_rows = _parse_table(_OUTPUT_TXT.read_text(), name)
    result = results[name]
    assert [h for h in result.headers] == headers
    assert len(result.rows) == len(recorded_rows)
    for row, recorded in zip(result.rows, recorded_rows):
        rendered = [
            f"{row[h]:.4f}" if isinstance(row[h], float) else str(row[h])
            for h in headers
        ]
        assert rendered == recorded


def test_golden_file_covers_all_engine_experiments(golden):
    assert sorted(golden) == sorted(_RUNNERS)
    for name, table in golden.items():
        assert table["rows"], name
        # Golden rows carry real float payloads, not rendered strings.
        numeric = [
            value
            for row in table["rows"]
            for value in row.values()
            if isinstance(value, float)
        ]
        assert numeric, name
