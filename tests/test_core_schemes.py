"""Tests for repro.core.schemes."""

from repro.core.schemes import Scheme


def test_oaq_waits_for_opportunity():
    assert Scheme.OAQ.waits_for_opportunity
    assert not Scheme.BAQ.waits_for_opportunity


def test_only_oaq_supports_sequential_coverage():
    assert Scheme.OAQ.supports_sequential_coverage
    assert not Scheme.BAQ.supports_sequential_coverage


def test_str_is_name():
    assert str(Scheme.OAQ) == "OAQ"
    assert str(Scheme.BAQ) == "BAQ"
