"""Cross-cutting integration tests: the full message-passing protocol,
run many times over random signals, reproduces the closed-form
conditional QoS model -- the strongest internal-consistency check the
reproduction has (three independent layers must agree: the analytic
integrals, the rule-based sampler, and the distributed protocol over
the DES kernel)."""

import pytest

from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.simulation.qos_montecarlo import (
    simulate_conditional_distribution_protocol,
)


@pytest.fixture(scope="module")
def params():
    # Small delta and Tg keep the protocol's overheads (which the
    # analytic model neglects) second-order.
    return EvaluationParams(
        signal_termination_rate=0.2,
        crosslink_delay_minutes=0.02,
        geolocation_time_minutes=0.2,
    )


@pytest.mark.parametrize(
    "capacity,scheme",
    [
        (9, Scheme.OAQ),
        (9, Scheme.BAQ),
        (10, Scheme.OAQ),
        (12, Scheme.OAQ),
        (12, Scheme.BAQ),
        (14, Scheme.OAQ),
    ],
)
def test_protocol_reproduces_closed_form(params, capacity, scheme):
    geometry = params.constellation.plane_geometry(capacity)
    analytic = conditional_distribution(geometry, params, scheme)
    protocol = simulate_conditional_distribution_protocol(
        geometry, params, scheme, samples=1500, seed=capacity * 17
    )
    for level in QoSLevel:
        assert protocol[level] == pytest.approx(
            analytic[level], abs=0.035
        ), f"level {level.name}: protocol {protocol[level]:.4f} vs analytic {analytic[level]:.4f}"


def test_protocol_mu05_anchor(params):
    """The protocol hits the paper's P(Y=3|12)=0.44 anchor."""
    anchored = params.with_(signal_termination_rate=0.5)
    geometry = anchored.constellation.plane_geometry(12)
    protocol = simulate_conditional_distribution_protocol(
        geometry, anchored, Scheme.OAQ, samples=3000, seed=2003
    )
    assert protocol[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(0.444, abs=0.03)


def test_oaq_gain_visible_through_protocol(params):
    """The headline claim, measured end to end: OAQ achieves level >= 2
    far more often than BAQ on a degraded plane."""
    geometry = params.constellation.plane_geometry(10)
    oaq = simulate_conditional_distribution_protocol(
        geometry, params, Scheme.OAQ, samples=1200, seed=31
    )
    baq = simulate_conditional_distribution_protocol(
        geometry, params, Scheme.BAQ, samples=1200, seed=31
    )
    assert oaq.at_least(QoSLevel.SEQUENTIAL_DUAL) > 0.25
    assert baq.at_least(QoSLevel.SEQUENTIAL_DUAL) == 0.0
