"""Tests for repro.san.assembled (the topology/rate split): assembled
chains must reproduce the classic unfolding exactly, re-rate to the
same answers as a fresh rebuild, and reject topology changes."""

import numpy as np
import pytest

from repro.analytic.capacity import CapacityModelConfig, build_capacity_san
from repro.analytic.distributions import Deterministic, Erlang
from repro.errors import ModelError
from repro.san import (
    Case,
    InputGate,
    Place,
    SANModel,
    TimedActivity,
    assemble,
    generate,
    unfold,
)


def on_off_model(up_rate=0.5, repair_time=2.0, name="on-off"):
    """Exponential failure, deterministic repair."""
    fail = TimedActivity.exponential("fail", up_rate, input_arcs={"up": 1})
    repair = TimedActivity(
        "repair",
        Deterministic(repair_time),
        input_gates=[InputGate("down", predicate=lambda m: m["up"] == 0)],
        cases=[Case(output_arcs={"up": 1})],
    )
    return SANModel([Place("up", 1)], [fail, repair], name=name)


def capacity_space(lam=5e-5):
    config = CapacityModelConfig(failure_rate_per_hour=lam, threshold=10)
    return generate(build_capacity_san(config))


class TestEquivalenceWithUnfold:
    """assemble + rerate must be the classic unfold, transition for
    transition."""

    def test_same_states_in_same_order(self):
        space = capacity_space()
        assembled = assemble(space, stages=8)
        chain = unfold(space, stages=8)
        assert assembled.decode_states() == chain.states

    def test_same_generator_matrix(self):
        space = capacity_space()
        assembled = assemble(space, stages=8)
        rerated = assembled.rerate(space.model)
        rebuilt = unfold(space, stages=8).ctmc
        assert rerated.num_states == rebuilt.num_states
        difference = (rerated.generator != rebuilt.generator).nnz
        assert difference == 0  # bit-identical, not just close

    def test_same_steady_state_markings(self):
        space = generate(on_off_model())
        assembled = assemble(space, stages=12)
        pi = assembled.rerate(space.model).steady_state()
        marginals = assembled.marking_marginals(pi)
        classic = unfold(space, stages=12).steady_state_markings()
        for marking_index, probability in classic.items():
            assert marginals[marking_index] == pytest.approx(
                probability, abs=1e-12
            )

    def test_integer_codes_decode_faithfully(self):
        """encode -> decode round-trips every augmented state."""
        space = capacity_space()
        assembled = assemble(space, stages=6)
        states = assembled.decode_states()
        assert len(states) == assembled.num_states
        assert len(set(states)) == len(states)  # codes are injective
        span = assembled.stage_span
        for code, (marking_index, stage_pairs) in zip(
            assembled.codes.tolist(), states
        ):
            assert code // span == marking_index
            rebuilt = marking_index * span
            for name, stage in stage_pairs:
                position = assembled.general_names.index(name)
                rebuilt += stage * assembled.stage_strides[position]
            assert rebuilt == code


class TestRerate:
    def test_rerate_matches_fresh_rebuild_at_new_rates(self):
        """Assemble once at one lambda, re-rate across a sweep: every
        point must match a from-scratch unfolding to 1e-12."""
        space = capacity_space(lam=2e-5)
        assembled = assemble(space, stages=8)
        for lam in (4e-5, 7e-5, 9.6e-5):
            fresh_space = capacity_space(lam=lam)
            rerated = assembled.rerate(fresh_space.model)
            rebuilt = unfold(fresh_space, stages=8).ctmc
            pi_rerated = rerated.steady_state()
            pi_rebuilt = rebuilt.steady_state()
            marginals = assembled.marking_marginals(pi_rerated)
            rebuilt_marginals = assembled.marking_marginals(pi_rebuilt)
            assert np.max(np.abs(marginals - rebuilt_marginals)) <= 1e-12

    def test_zero_rate_is_a_rate_not_a_topology_change(self):
        """Regression: a rate hitting exactly 0.0 is a re-rate, not a
        structural change.  Enabling is arcs + gates only, so a slot
        whose activity evaluates to rate zero must re-rate in place
        (the zero-rate transitions drop out in the CTMC build); the old
        ``Exponential`` constructor rejected rate 0.0 outright, which
        misclassified rate-only sweep points (e.g. a repair-rate axis
        crossing zero) as topology rejections and forced full-rebuild
        fallbacks."""

        def dual_repair_model(fail=0.5, slow=1.0, fast=4.0):
            # Two redundant repair pathways: zeroing one keeps the chain
            # irreducible through the other.
            a = TimedActivity.exponential("fail", fail, input_arcs={"up": 1})
            down_gate = InputGate("down", predicate=lambda m: m["up"] == 0)
            slow_repair = TimedActivity.exponential(
                "slow_repair",
                slow,
                input_gates=[down_gate],
                cases=[Case(output_arcs={"up": 1})],
            )
            fast_repair = TimedActivity.exponential(
                "fast_repair",
                fast,
                input_gates=[down_gate],
                cases=[Case(output_arcs={"up": 1})],
            )
            return SANModel(
                [Place("up", 1)],
                [a, slow_repair, fast_repair],
                name="dual-repair",
            )

        space = generate(dual_repair_model())
        assembled = assemble(space, stages=1)
        # Positive -> zero: same topology, no ModelError, and the
        # steady state matches a fresh build at the zeroed rate.
        zero = dual_repair_model(fast=0.0)
        pi_rerated = assembled.rerate(zero).steady_state()
        fresh_zero = assemble(generate(zero), stages=1).rerate(zero)
        assert np.max(
            np.abs(pi_rerated - fresh_zero.steady_state())
        ) <= 1e-12
        # Only the surviving pathway remains: pi(up) = slow/(slow+fail).
        marginals = assembled.marking_marginals(pi_rerated)
        up_index = space.model.place_index.position("up")
        up_mass = sum(
            p
            for marking_index, p in enumerate(marginals.tolist())
            if space.markings[marking_index][up_index] == 1
        )
        assert up_mass == pytest.approx(1.0 / 1.5, abs=1e-12)
        # Zero -> positive on a topology *assembled at zero*: also fine.
        assembled_at_zero = assemble(
            generate(dual_repair_model(fast=0.0)), stages=1
        )
        hot = dual_repair_model(fast=4.0)
        back = assembled_at_zero.rerate(hot)
        fresh = assemble(generate(hot), stages=1).rerate(hot)
        assert np.max(
            np.abs(back.steady_state() - fresh.steady_state())
        ) <= 1e-12

    def test_rerate_with_precomputed_rate_vector(self):
        space = generate(on_off_model())
        assembled = assemble(space, stages=4)
        vector = assembled.rate_vector(space.model)
        via_vector = assembled.rerate(rate_vector=vector)
        via_model = assembled.rerate(space.model)
        assert (via_vector.generator != via_model.generator).nnz == 0

    def test_rerate_requires_model_or_vector(self):
        space = generate(on_off_model())
        assembled = assemble(space, stages=4)
        with pytest.raises(ModelError):
            assembled.rerate()

    def test_rate_vector_length_validated(self):
        space = generate(on_off_model())
        assembled = assemble(space, stages=4)
        with pytest.raises(ModelError):
            assembled.transition_rates(np.ones(assembled.num_slots + 1))


class TestTopologyValidation:
    def test_place_set_change_rejected(self):
        space = generate(on_off_model())
        assembled = assemble(space, stages=4)
        other = SANModel(
            [Place("up", 1), Place("extra", 0)],
            [
                TimedActivity.exponential("fail", 0.5, input_arcs={"up": 1}),
                TimedActivity(
                    "repair",
                    Deterministic(2.0),
                    input_gates=[
                        InputGate("down", predicate=lambda m: m["up"] == 0)
                    ],
                    cases=[Case(output_arcs={"up": 1})],
                ),
            ],
        )
        with pytest.raises(ModelError):
            assembled.rate_vector(other)

    def test_threshold_change_rejected(self):
        """A different deployment threshold changes which activities are
        enabled where -- that is topology, not rate."""
        assembled = assemble(capacity_space(), stages=4)
        other = generate(
            build_capacity_san(
                CapacityModelConfig(failure_rate_per_hour=5e-5, threshold=12)
            )
        )
        with pytest.raises(ModelError):
            assembled.rate_vector(other.model)

    def test_erlang_shape_change_rejected(self):
        """Swapping a Deterministic timer for an Erlang of a different
        shape changes the stage structure."""

        def erlang_model(shape):
            fail = TimedActivity.exponential(
                "fail", 0.5, input_arcs={"up": 1}
            )
            repair = TimedActivity(
                "repair",
                Erlang(shape, shape / 2.0),
                input_gates=[
                    InputGate("down", predicate=lambda m: m["up"] == 0)
                ],
                cases=[Case(output_arcs={"up": 1})],
            )
            return SANModel([Place("up", 1)], [fail, repair])

        assembled = assemble(generate(erlang_model(3)), stages=4)
        with pytest.raises(ModelError):
            assembled.rate_vector(erlang_model(5))

    def test_matching_erlang_substitutes_for_deterministic(self):
        """A Deterministic timer may be re-rated as an Erlang of exactly
        the assembled stage count (same structure, new rate)."""
        stages = 6
        assembled = assemble(generate(on_off_model()), stages=stages)
        fail = TimedActivity.exponential("fail", 0.5, input_arcs={"up": 1})
        repair = TimedActivity(
            "repair",
            Erlang(stages, stages / 3.0),  # mean 3 instead of 2
            input_gates=[InputGate("down", predicate=lambda m: m["up"] == 0)],
            cases=[Case(output_arcs={"up": 1})],
        )
        substituted = SANModel([Place("up", 1)], [fail, repair])
        ctmc = assembled.rerate(substituted)
        pi = assembled.marking_marginals(ctmc.steady_state())
        up_index = assembled.space.index[(1,)]
        # Availability (1/lam) / (1/lam + d) with the new mean d = 3.
        assert pi[up_index] == pytest.approx(2.0 / 5.0, abs=1e-9)

    def test_validate_false_skips_structure_checks(self):
        """validate=False is the fast path used when the model is known
        identical (unfold's own call)."""
        space = generate(on_off_model())
        assembled = assemble(space, stages=4)
        vector = assembled.rate_vector(space.model, validate=False)
        assert vector.shape == (assembled.num_slots,)


class TestShape:
    def test_describe_mentions_counts(self):
        assembled = assemble(generate(on_off_model()), stages=4)
        text = assembled.describe()
        assert str(assembled.num_states) in text
        assert "rate slots" in text

    def test_rejects_bad_stage_count(self):
        with pytest.raises(ModelError):
            assemble(generate(on_off_model()), stages=0)
