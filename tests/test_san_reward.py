"""Tests for repro.san.reward."""

import pytest

from repro.san import (
    Case,
    InputGate,
    Place,
    SANModel,
    TimedActivity,
    from_state_space,
    generate,
)
from repro.san.reward import (
    expected_reward,
    probability_of,
    steady_state_marking_distribution,
)


@pytest.fixture
def solved_queue():
    arrive = TimedActivity.exponential(
        "arrive",
        1.0,
        input_gates=[InputGate("room", predicate=lambda m: m["q"] < 2)],
        cases=[Case(output_arcs={"q": 1})],
    )
    serve = TimedActivity.exponential("serve", 2.0, input_arcs={"q": 1})
    model = SANModel([Place("q", 0)], [arrive, serve])
    space = generate(model)
    pi = from_state_space(space).steady_state()
    return space, steady_state_marking_distribution(space, pi)


def test_marking_distribution_sums_to_one(solved_queue):
    _, probs = solved_queue
    assert sum(probs.values()) == pytest.approx(1.0)


def test_expected_reward_mean_queue(solved_queue):
    space, probs = solved_queue
    # M/M/1/2 with rho = 0.5: pi = (4/7, 2/7, 1/7); E[q] = 4/7.
    mean = expected_reward(space, probs, lambda m: float(m["q"]))
    assert mean == pytest.approx(4.0 / 7.0)


def test_probability_of_predicate(solved_queue):
    space, probs = solved_queue
    busy = probability_of(space, probs, lambda m: m["q"] > 0)
    assert busy == pytest.approx(3.0 / 7.0)
