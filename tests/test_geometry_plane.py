"""Tests for repro.geometry.plane (paper Section 2 / 4.2.1 quantities)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry


class TestConstruction:
    def test_reference_constants(self):
        geometry = PlaneGeometry.reference(14)
        assert geometry.orbit_period == 90.0
        assert geometry.coverage_time == 9.0
        assert geometry.active_satellites == 14

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            PlaneGeometry(orbit_period=0.0, coverage_time=9.0, active_satellites=5)

    def test_rejects_nonpositive_coverage(self):
        with pytest.raises(ConfigurationError):
            PlaneGeometry(orbit_period=90.0, coverage_time=0.0, active_satellites=5)

    def test_rejects_coverage_exceeding_period(self):
        with pytest.raises(ConfigurationError):
            PlaneGeometry(orbit_period=90.0, coverage_time=90.0, active_satellites=5)

    def test_rejects_zero_satellites(self):
        with pytest.raises(ConfigurationError):
            PlaneGeometry(orbit_period=90.0, coverage_time=9.0, active_satellites=0)

    def test_with_active_satellites_copies(self):
        base = PlaneGeometry.reference(14)
        other = base.with_active_satellites(9)
        assert other.active_satellites == 9
        assert base.active_satellites == 14
        assert other.orbit_period == base.orbit_period


class TestPrimaryQuantities:
    def test_revisit_time_is_period_over_k(self):
        assert PlaneGeometry.reference(12).revisit_time == pytest.approx(7.5)
        assert PlaneGeometry.reference(9).revisit_time == pytest.approx(10.0)

    def test_l1_equals_revisit_time(self):
        for k in range(6, 15):
            geometry = PlaneGeometry.reference(k)
            assert geometry.l1 == pytest.approx(geometry.revisit_time)

    def test_l2_is_absolute_difference(self):
        assert PlaneGeometry.reference(12).l2 == pytest.approx(1.5)
        assert PlaneGeometry.reference(9).l2 == pytest.approx(1.0)

    def test_l2_zero_at_exact_tangency(self):
        # k = 10: Tr = 9 = Tc exactly; footprints are tangent.
        geometry = PlaneGeometry.reference(10)
        assert geometry.l2 == pytest.approx(0.0)
        assert geometry.underlapping  # Tr >= Tc counts as underlap


class TestOrientation:
    def test_paper_underlap_threshold(self):
        """Underlapping happens when k drops below 11 (Section 4.2.1)."""
        assert PlaneGeometry.underlap_threshold() == 10
        for k in range(1, 11):
            assert PlaneGeometry.reference(k).underlapping
        for k in range(11, 15):
            assert PlaneGeometry.reference(k).overlapping

    def test_indicator_matches_eq1(self):
        assert PlaneGeometry.reference(12).indicator == 1
        assert PlaneGeometry.reference(9).indicator == 0

    def test_interval_lengths_partition_cycle(self):
        for k in range(6, 15):
            geometry = PlaneGeometry.reference(k)
            total = (
                geometry.single_coverage_length
                + geometry.double_coverage_length
                + geometry.gap_length
            )
            assert total == pytest.approx(geometry.l1)

    def test_overlap_has_no_gap(self):
        geometry = PlaneGeometry.reference(13)
        assert geometry.gap_length == 0.0
        assert geometry.double_coverage_length > 0.0

    def test_underlap_has_no_double_coverage(self):
        geometry = PlaneGeometry.reference(8)
        assert geometry.double_coverage_length == 0.0
        assert geometry.gap_length > 0.0


class TestOpportunityBound:
    def test_paper_m_equals_two_for_tau_five(self):
        """tau = 5 < Tc = 9 implies sequential *dual* coverage at most."""
        for k in range(6, 11):
            geometry = PlaneGeometry.reference(k)
            if geometry.l2 < 5.0:
                assert geometry.max_consecutive_coverage(5.0) == 2

    def test_m_is_one_when_deadline_below_gap(self):
        geometry = PlaneGeometry.reference(6)  # L2 = 6
        assert geometry.max_consecutive_coverage(5.0) == 1

    def test_m_grows_with_deadline(self):
        geometry = PlaneGeometry.reference(9)  # L1 = 10, L2 = 1
        assert geometry.max_consecutive_coverage(5.0) == 2
        assert geometry.max_consecutive_coverage(12.0) == 3
        assert geometry.max_consecutive_coverage(22.0) == 4

    def test_m_rejected_for_overlapping_plane(self):
        with pytest.raises(ConfigurationError):
            PlaneGeometry.reference(12).max_consecutive_coverage(5.0)

    def test_m_rejects_negative_deadline(self):
        with pytest.raises(ConfigurationError):
            PlaneGeometry.reference(9).max_consecutive_coverage(-1.0)


@given(
    k=st.integers(min_value=1, max_value=200),
    period=st.floats(min_value=10.0, max_value=2000.0),
    coverage=st.floats(min_value=0.1, max_value=9.9),
)
def test_property_orientation_consistency(k, period, coverage):
    """I[k] == (Tr < Tc) for arbitrary valid configurations."""
    if coverage >= period:
        return
    geometry = PlaneGeometry(
        orbit_period=period, coverage_time=coverage, active_satellites=k
    )
    assert geometry.overlapping == (geometry.revisit_time < coverage)
    assert geometry.l2 == pytest.approx(abs(coverage - geometry.revisit_time))
    assert geometry.l1 > 0


@given(
    k=st.integers(min_value=1, max_value=50),
    tau=st.floats(min_value=0.0, max_value=500.0),
)
def test_property_m_monotone_in_deadline(k, tau):
    """M[k] never decreases when the deadline grows."""
    geometry = PlaneGeometry.reference(k)
    if geometry.overlapping:
        return
    m1 = geometry.max_consecutive_coverage(tau)
    m2 = geometry.max_consecutive_coverage(tau + 1.0)
    assert m2 >= m1 >= 1
