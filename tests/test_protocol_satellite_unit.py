"""Direct unit tests of the OAQ satellite state machine (driven by a
hand-built simulator/network rather than the scenario runner)."""

import numpy as np
import pytest

from repro.analytic.distributions import Deterministic
from repro.core.config import EvaluationParams
from repro.core.schemes import Scheme
from repro.desim.kernel import Simulator
from repro.desim.network import Network
from repro.errors import ProtocolError
from repro.protocol.ground import GroundStation
from repro.protocol.messages import (
    AlertMessage,
    CoordinationDone,
    CoordinationRequest,
    GeolocationEstimate,
)
from repro.protocol.satellite import MessagingVariant, OAQSatellite
from repro.protocol.signal import Signal


@pytest.fixture
def params():
    return EvaluationParams(
        signal_termination_rate=0.2,
        crosslink_delay_minutes=0.05,
        geolocation_time_minutes=0.5,
    )


def build_node(params, *, k=9, scheme=Scheme.OAQ, next_peer=None, name="S1"):
    simulator = Simulator()
    network = Network(simulator, default_delay=params.delta)
    ground = GroundStation(network)
    geometry = params.constellation.plane_geometry(k)
    node = OAQSatellite(
        name,
        simulator,
        network,
        params,
        geometry,
        scheme=scheme,
        computation_time=Deterministic(0.02),
        next_peer=next_peer or (lambda _n: None),
        rng=np.random.default_rng(0),
    )
    return simulator, network, ground, node


def make_estimate(error_km=30.0, by="S0"):
    return GeolocationEstimate(
        error_km=error_km,
        passes_used=1,
        simultaneous=False,
        computed_by=by,
        computed_at=0.0,
    )


class TestDetection:
    def test_inactive_signal_not_detected(self, params):
        simulator, _, ground, node = build_node(params)
        signal = Signal("sig", 0.0, 1.0)
        simulator.run_until(5.0)  # signal already over
        node.on_footprint_arrival(signal)
        simulator.run_until(20.0)
        assert node.state_of("sig") is None
        assert ground.official("sig") is None

    def test_uninvited_pass_ignored_without_detection_right(self, params):
        simulator, _, _, node = build_node(params)
        signal = Signal("sig", 0.0, 10.0)
        node.on_footprint_arrival(signal, allow_detection=False)
        assert node.state_of("sig") is None

    def test_detection_creates_ordinal_one_state(self, params):
        simulator, _, _, node = build_node(params)
        signal = Signal("sig", 0.0, 10.0)
        node.on_footprint_arrival(signal)
        state = node.state_of("sig")
        assert state.ordinal == 1
        assert state.detection_time == 0.0
        assert state.chain == ("S1",)


class TestMessages:
    def test_duplicate_request_rejected(self, params):
        simulator, network, _, node = build_node(params, name="S2")
        request = CoordinationRequest(
            signal_id="sig",
            detection_time=0.0,
            next_ordinal=2,
            estimate=make_estimate(),
            measurement_count=1,
            chain=("S1",),
        )
        node.on_message("S1", request)
        with pytest.raises(ProtocolError):
            node.on_message("S1", request)

    def test_unexpected_message_type_rejected(self, params):
        _, _, _, node = build_node(params)
        with pytest.raises(ProtocolError):
            node.on_message("S0", object())

    def test_done_forwarded_to_predecessor(self, params):
        simulator, network, _, node = build_node(params, name="S2")
        inbox = []
        network.register("S1", lambda src, msg: inbox.append((src, msg)))
        node.on_message(
            "S1",
            CoordinationRequest(
                signal_id="sig",
                detection_time=0.0,
                next_ordinal=2,
                estimate=make_estimate(),
                measurement_count=1,
                chain=("S1",),
            ),
        )
        node.on_message(
            "S3",
            CoordinationDone(
                signal_id="sig",
                final_estimate=make_estimate(by="S3"),
                terminated_by="S3",
            ),
        )
        simulator.run_until(1.0)
        assert inbox
        assert isinstance(inbox[0][1], CoordinationDone)
        assert inbox[0][1].terminated_by == "S3"

    def test_done_for_unknown_signal_ignored(self, params):
        _, _, _, node = build_node(params)
        node.on_message(
            "S9",
            CoordinationDone(
                signal_id="ghost",
                final_estimate=make_estimate(),
                terminated_by="S9",
            ),
        )
        assert node.state_of("ghost") is None


class TestTerminationConditions:
    def test_tc1_finalises_without_request(self, params):
        """A generous TC-1 threshold stops the chain at ordinal 1."""
        generous = params.with_(error_threshold_km=1000.0)
        requested = []
        simulator, network, ground, node = build_node(
            generous, next_peer=lambda _n: "S2"
        )
        network.register("S2", lambda src, msg: requested.append(msg))
        node.on_footprint_arrival(Signal("sig", 0.0, 10.0))
        simulator.run_until(2.0)
        assert ground.official("sig") is not None
        assert not requested

    def test_underlap_extends_chain_when_time_allows(self, params):
        requested = []
        simulator, network, _, node = build_node(
            params, next_peer=lambda _n: "S2"
        )
        network.register("S2", lambda src, msg: requested.append(msg))
        node.on_footprint_arrival(Signal("sig", 0.0, 10.0))
        simulator.run_until(1.0)
        assert len(requested) == 1
        assert requested[0].next_ordinal == 2

    def test_no_successor_means_finalise(self, params):
        simulator, _, ground, node = build_node(params)  # next_peer -> None
        node.on_footprint_arrival(Signal("sig", 0.0, 10.0))
        simulator.run_until(1.0)
        official = ground.official("sig")
        assert official is not None
        assert official.estimate.passes_used == 1

    def test_baq_finalises_immediately(self, params):
        requested = []
        simulator, network, ground, node = build_node(
            params, scheme=Scheme.BAQ, next_peer=lambda _n: "S2"
        )
        network.register("S2", lambda src, msg: requested.append(msg))
        node.on_footprint_arrival(Signal("sig", 0.0, 10.0))
        simulator.run_until(1.0)
        assert ground.official("sig") is not None
        assert not requested

    def test_overlap_withholds_instead_of_requesting(self, params):
        requested = []
        simulator, network, ground, node = build_node(
            params, k=12, next_peer=lambda _n: "S2"
        )
        network.register("S2", lambda src, msg: requested.append(msg))
        node.on_footprint_arrival(Signal("sig", 0.0, 10.0))
        simulator.run_until(1.0)
        assert not requested
        assert node.state_of("sig").withholding
        assert ground.official("sig") is None  # still waiting

    def test_withheld_result_released_at_deadline(self, params):
        simulator, _, ground, node = build_node(params, k=12)
        node.on_footprint_arrival(Signal("sig", 0.0, 10.0))
        simulator.run_until(params.tau + 1.0)
        official = ground.official("sig")
        assert official is not None
        assert official.sent_at == pytest.approx(params.tau)
        assert official.estimate.qos_level == 1
