"""Command-line entry point: section registries, the ``--profile``
flag (pstats actually written), the ``corpus`` subcommand dispatch and
the solve-cache registry surfaced in diagnostics."""

import pstats

import pytest

from repro.analytic.capacity import CapacityModelConfig, capacity_distribution
from repro.analytic.solve_cache import cache_stats
from repro.experiments import __main__ as cli
from repro.experiments import corpus_exp
from repro.experiments.report import ExperimentResult


def tiny_experiment():
    return ExperimentResult(
        experiment_id="tiny",
        title="tiny",
        headers=["x"],
        rows=[{"x": 1}],
    )


class TestSectionRegistries:
    def test_quick_sections_are_callables(self):
        assert cli.QUICK_SECTIONS
        assert all(callable(fn) for fn in cli.QUICK_SECTIONS)

    def test_corpus_registered_in_full_set(self):
        assert corpus_exp.run in cli.FULL_SECTIONS


class TestProfileFlag:
    def test_run_experiment_writes_pstats(self, tmp_path):
        result = cli.run_experiment(
            tiny_experiment, profile=True, profile_dir=str(tmp_path)
        )
        assert result.experiment_id == "tiny"
        path = tmp_path / "profile_tiny.pstats"
        assert path.is_file()
        # The dump must be a loadable cProfile stats file.
        stats = pstats.Stats(str(path))
        assert stats.total_calls >= 1

    def test_profile_off_writes_nothing(self, tmp_path):
        cli.run_experiment(
            tiny_experiment, profile=False, profile_dir=str(tmp_path)
        )
        assert list(tmp_path.iterdir()) == []

    def test_main_profile_flag(self, tmp_path, monkeypatch, capsys):
        # Shrink the quick set to one cheap experiment and drive the
        # real CLI: --profile must leave profile_<id>.pstats in cwd.
        monkeypatch.setattr(cli, "QUICK_SECTIONS", [tiny_experiment])
        monkeypatch.chdir(tmp_path)
        assert cli.main(["--profile"]) == 0
        out = capsys.readouterr().out
        assert "[tiny]" in out
        assert (tmp_path / "profile_tiny.pstats").is_file()
        stats = pstats.Stats(str(tmp_path / "profile_tiny.pstats"))
        assert stats.total_calls >= 1


class TestCorpusDispatch:
    def test_corpus_generate_and_score(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        code = cli.main(
            [
                "corpus",
                "generate",
                "--cells",
                "2",
                "--seed",
                "5",
                "--families",
                "small-exact",
                "--out",
                str(corpus_dir),
            ]
        )
        assert code == 0
        assert (corpus_dir / "metadata.json").is_file()
        assert len(list((corpus_dir / "cases").iterdir())) == 2
        out = capsys.readouterr().out
        assert "small-exact x2" in out

    def test_corpus_diff_identical(self, tmp_path):
        from repro.scenarios import (
            generate_corpus,
            run_corpus,
            score_run,
            scorecard_to_json,
        )

        metadata, cases = generate_corpus(
            1, seed=5, families=["small-exact"]
        )
        scorecard = score_run(run_corpus(cases), metadata=metadata)
        path = tmp_path / "scorecard.json"
        path.write_text(scorecard_to_json(scorecard))
        assert (
            cli.main(
                [
                    "corpus",
                    "diff",
                    "--scorecard",
                    str(path),
                    "--golden",
                    str(path),
                ]
            )
            == 0
        )

    def test_corpus_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main(["corpus"])


class TestCacheRegistryDiagnostics:
    def test_capacity_caches_registered(self):
        # Touch the capacity pipeline so its module-level caches exist
        # and have observed lookups, then check the weak registry that
        # experiment metadata snapshots.
        capacity_distribution(CapacityModelConfig())
        stats = cache_stats()
        for name in (
            "capacity-distribution",
            "capacity-unfold",
            "capacity-assemble",
        ):
            assert name in stats
            assert 0.0 <= stats[name].hit_rate <= 1.0
        # The distribution cache definitely observed this lookup (the
        # deeper caches are only consulted on a distribution miss).
        assert stats["capacity-distribution"].lookups >= 1
        # Snapshots are plain value objects ordered by name.
        assert list(stats) == sorted(stats)
