"""Behavioural tests of the OAQ protocol via CenterlineScenario
(paper Section 3.2, Figures 3-4)."""

import numpy as np
import pytest

from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.geometry.intervals import CoverageKind
from repro.protocol import CenterlineScenario, MessagingVariant
from repro.protocol.messages import AlertMessage, CoordinationDone, CoordinationRequest


@pytest.fixture
def params():
    return EvaluationParams(signal_termination_rate=0.2)


def underlap(params, **kwargs):
    geometry = params.constellation.plane_geometry(9)  # L1=10, L2=1
    return CenterlineScenario(geometry, params, **kwargs)


def overlap(params, **kwargs):
    geometry = params.constellation.plane_geometry(12)  # L1=7.5, L2=1.5
    return CenterlineScenario(geometry, params, **kwargs)


class TestSequentialCoordination:
    def test_sequential_dual_coverage_achieved(self, params):
        outcome = underlap(
            params, onset_position=8.0, signal_duration=6.0, seed=1
        ).run()
        assert outcome.achieved_level is QoSLevel.SEQUENTIAL_DUAL
        assert outcome.official_alert.chain == ("S1", "S2")
        assert outcome.alert_latency <= params.tau + 1e-9

    def test_coordination_request_sent_to_next_peer(self, params):
        outcome = underlap(
            params, onset_position=8.0, signal_duration=6.0, seed=1
        ).run()
        requests = [
            r for r in outcome.message_log
            if isinstance(r.message, CoordinationRequest)
        ]
        assert requests
        assert requests[0].source == "S1"
        assert requests[0].destination == "S2"
        assert requests[0].message.next_ordinal == 2

    def test_done_propagates_to_initial_detector(self, params):
        outcome = underlap(
            params, onset_position=8.0, signal_duration=6.0, seed=1
        ).run()
        dones = [
            r for r in outcome.message_log
            if isinstance(r.message, CoordinationDone) and r.destination == "S1"
        ]
        assert dones  # S1 was notified (Figure 3(d))

    def test_signal_dies_before_successor(self, params):
        """TC-3: S2 finds nothing; S1's timeout delivers its own result
        at exactly t0 + tau (Figure 4)."""
        outcome = underlap(
            params, onset_position=8.0, signal_duration=0.5, seed=2
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        assert outcome.official_alert.sent_by == "S1"
        assert outcome.alert_latency == pytest.approx(params.tau)

    def test_gap_start_short_signal_missed(self, params):
        outcome = underlap(
            params, onset_position=9.5, signal_duration=0.2, seed=3
        ).run()
        assert outcome.achieved_level is QoSLevel.MISSED
        assert not outcome.all_alerts

    def test_gap_start_surviving_signal_single(self, params):
        outcome = underlap(
            params, onset_position=9.5, signal_duration=2.0, seed=4
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        assert outcome.detection_time == pytest.approx(0.5)

    def test_tc1_stops_chain_early(self, params):
        """A generous error threshold satisfies TC-1 on the first
        iteration: no coordination request is sent."""
        generous = params.with_(error_threshold_km=1000.0)
        outcome = underlap(
            generous, onset_position=8.0, signal_duration=6.0, seed=5
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        requests = [
            r for r in outcome.message_log
            if isinstance(r.message, CoordinationRequest)
        ]
        assert not requests

    def test_tight_deadline_triggers_tc2(self, params):
        """With tau at the computation bound, TC-2 holds at the first
        completion and the chain never extends."""
        tight = params.with_(deadline_minutes=0.55)
        outcome = underlap(
            tight, onset_position=8.0, signal_duration=6.0, seed=6
        ).run()
        requests = [
            r for r in outcome.message_log
            if isinstance(r.message, CoordinationRequest)
        ]
        assert not requests
        assert outcome.achieved_level is QoSLevel.SINGLE


class TestOverlapCoordination:
    def test_withhold_then_simultaneous(self, params):
        outcome = overlap(
            params, onset_position=3.0, signal_duration=10.0, seed=7
        ).run()
        assert outcome.achieved_level is QoSLevel.SIMULTANEOUS_DUAL
        # Withheld until the overlapped footprints arrived at
        # wait = alpha_len - onset = 6 - 3 = 3 minutes.
        assert outcome.alert_latency >= 3.0

    def test_onset_in_beta_immediate_simultaneous(self, params):
        outcome = overlap(
            params, onset_position=6.5, signal_duration=3.0, seed=8
        ).run()
        assert outcome.achieved_level is QoSLevel.SIMULTANEOUS_DUAL
        assert outcome.alert_latency < 1.0

    def test_signal_dies_before_beta_preliminary_at_deadline(self, params):
        outcome = overlap(
            params, onset_position=1.0, signal_duration=1.0, seed=9
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        assert outcome.alert_latency == pytest.approx(params.tau)

    def test_opportunity_beyond_deadline_preliminary(self, params):
        """Onset right at the start of alpha with tau=3: the overlap is
        6 minutes away, unreachable."""
        tight = params.with_(deadline_minutes=3.0)
        outcome = overlap(
            tight, onset_position=0.1, signal_duration=50.0, seed=10
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE


class TestBAQ:
    def test_baq_never_waits(self, params):
        outcome = overlap(
            params,
            scheme=Scheme.BAQ,
            onset_position=3.0,
            signal_duration=10.0,
            seed=11,
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        assert outcome.alert_latency < 1.0  # right after the computation

    def test_baq_simultaneous_when_starting_in_beta(self, params):
        outcome = overlap(
            params,
            scheme=Scheme.BAQ,
            onset_position=6.5,
            signal_duration=3.0,
            seed=12,
        ).run()
        assert outcome.achieved_level is QoSLevel.SIMULTANEOUS_DUAL

    def test_baq_never_sequential(self, params):
        outcome = underlap(
            params,
            scheme=Scheme.BAQ,
            onset_position=8.0,
            signal_duration=6.0,
            seed=13,
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        requests = [
            r for r in outcome.message_log
            if isinstance(r.message, CoordinationRequest)
        ]
        assert not requests


class TestFailSilence:
    def test_done_propagation_tolerates_failed_successor(self, params):
        outcome = underlap(
            params,
            onset_position=8.0,
            signal_duration=6.0,
            seed=14,
            fail_silent={"S2": 0.5},
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        assert outcome.official_alert.sent_by == "S1"
        assert outcome.alert_latency <= params.tau + 1e-9

    def test_successor_responsibility_loses_alert(self, params):
        outcome = underlap(
            params,
            onset_position=8.0,
            signal_duration=6.0,
            seed=15,
            variant=MessagingVariant.SUCCESSOR_RESPONSIBILITY,
            fail_silent={"S2": 0.5},
        ).run()
        assert outcome.achieved_level is QoSLevel.MISSED
        assert not outcome.all_alerts

    def test_successor_responsibility_delivers_predecessor_result_on_tc3(
        self, params
    ):
        """No-backward-messaging: S2 cannot measure the dead signal, so
        it forwards S1's result to the ground itself."""
        outcome = underlap(
            params,
            onset_position=8.0,
            signal_duration=0.5,
            seed=16,
            variant=MessagingVariant.SUCCESSOR_RESPONSIBILITY,
        ).run()
        assert outcome.achieved_level is QoSLevel.SINGLE
        assert outcome.official_alert.sent_by == "S2"
        assert outcome.official_alert.estimate.computed_by == "S1"

    def test_failed_detector_means_no_detection(self, params):
        outcome = underlap(
            params,
            onset_position=8.0,
            signal_duration=6.0,
            seed=17,
            fail_silent={"S1": 0.0},
        ).run()
        assert not outcome.all_alerts


class TestOnsetBoundary:
    """The onset position lives on the half-open cycle ``[0, L1)``:
    ``L1`` is the same physical point as 0 and must wrap, not clamp
    (regression: it used to be accepted verbatim, placing the onset on
    a coordinate ``interval_at`` never resolves to the alpha start)."""

    def test_onset_at_l1_wraps_to_cycle_start(self, params):
        geometry = params.constellation.plane_geometry(9)
        scenario = CenterlineScenario(
            geometry, params, onset_position=geometry.l1, signal_duration=1.0
        )
        assert scenario.onset_position == 0.0
        assert scenario.covered_at_onset()
        interval = scenario.cycle.interval_at(scenario.onset_position)
        assert interval.kind is CoverageKind.SINGLE
        assert interval.start == 0.0

    def test_interval_at_wrap_point_is_alpha(self, params):
        geometry = params.constellation.plane_geometry(9)
        scenario = underlap(params, onset_position=0.0, signal_duration=1.0)
        assert (
            scenario.cycle.interval_at(geometry.l1).kind is CoverageKind.SINGLE
        )

    def test_onset_at_l1_runs_like_onset_zero(self, params):
        geometry = params.constellation.plane_geometry(9)
        wrapped = CenterlineScenario(
            geometry, params, onset_position=geometry.l1,
            signal_duration=2.0, seed=21,
        ).run()
        direct = CenterlineScenario(
            geometry, params, onset_position=0.0,
            signal_duration=2.0, seed=21,
        ).run()
        assert wrapped.achieved_level is direct.achieved_level
        assert wrapped.detection_time == direct.detection_time

    def test_onset_beyond_l1_rejected(self, params):
        geometry = params.constellation.plane_geometry(9)
        with pytest.raises(ConfigurationError):
            CenterlineScenario(
                geometry, params, onset_position=geometry.l1 + 0.1,
                signal_duration=1.0,
            )
        with pytest.raises(ConfigurationError):
            CenterlineScenario(
                geometry, params, onset_position=-0.1, signal_duration=1.0
            )

    def test_onset_at_l1_wraps_on_overlapping_plane_too(self, params):
        geometry = params.constellation.plane_geometry(12)
        scenario = CenterlineScenario(
            geometry, params, onset_position=geometry.l1, signal_duration=1.0
        )
        assert scenario.onset_position == 0.0


class TestTimelinessProperty:
    @pytest.mark.parametrize("capacity", [9, 10, 12, 14])
    def test_alerts_always_sent_by_deadline(self, params, capacity):
        """Timeliness guarantee over random signals: every official
        alert is sent within tau of the initial detection."""
        geometry = params.constellation.plane_geometry(capacity)
        rng = np.random.default_rng(1000 + capacity)
        for _ in range(60):
            scenario = CenterlineScenario(
                geometry, params, seed=int(rng.integers(0, 2**62))
            )
            outcome = scenario.run()
            if outcome.official_alert is not None:
                assert outcome.alert_latency <= params.tau + 1e-9
            if outcome.detection_time is not None:
                assert outcome.official_alert is not None

    def test_exactly_one_timely_alert_per_detected_signal(self, params):
        """The guarantee behind Figure 4: every detected signal yields
        exactly one alert sent within the deadline.  Extra alerts can
        only be late follow-ups from successors that were invited but
        hit TC-2 after their (too-late) pass -- the paper has them
        report anyway, and the ground station filters by send time."""
        geometry = params.constellation.plane_geometry(9)
        rng = np.random.default_rng(55)
        for _ in range(80):
            outcome = CenterlineScenario(
                geometry, params, seed=int(rng.integers(0, 2**62))
            ).run()
            timely = [
                a
                for a in outcome.all_alerts
                if a.latency <= params.tau + 1e-9
            ]
            if outcome.detection_time is None:
                assert not outcome.all_alerts
            else:
                assert len(timely) == 1
