"""Tests for repro.analytic.composition (paper Eq. 3)."""

import pytest

from repro.analytic.composition import compose, composed_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError


def degenerate(level):
    return QoSDistribution.degenerate(level)


class TestCompose:
    def test_two_point_mixture(self):
        result = compose(
            {10: 0.4, 12: 0.6},
            lambda k: degenerate(
                QoSLevel.SINGLE if k == 10 else QoSLevel.SIMULTANEOUS_DUAL
            ),
        )
        assert result[QoSLevel.SINGLE] == pytest.approx(0.4)
        assert result[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(0.6)

    def test_truncated_weights_renormalised(self):
        """Eq. (3) drops k < 9; the small missing mass is renormalised."""
        result = compose(
            {12: 0.97},
            lambda k: degenerate(QoSLevel.SINGLE),
            truncation_tolerance=0.05,
        )
        assert result[QoSLevel.SINGLE] == pytest.approx(1.0)

    def test_rejects_large_truncation(self):
        with pytest.raises(ConfigurationError):
            compose({12: 0.5}, lambda k: degenerate(QoSLevel.SINGLE))

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError):
            compose({12: 1.1, 11: -0.1}, lambda k: degenerate(QoSLevel.SINGLE))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            compose({}, lambda k: degenerate(QoSLevel.SINGLE))

    def test_zero_weight_entries_ignored(self):
        result = compose(
            {9: 0.0, 12: 1.0},
            lambda k: degenerate(
                QoSLevel.MISSED if k == 9 else QoSLevel.SINGLE
            ),
        )
        assert result[QoSLevel.MISSED] == 0.0


class TestComposedDistribution:
    def test_uses_closed_form_conditionals(self):
        params = EvaluationParams(signal_termination_rate=0.5)
        # All mass at k=12 reduces Eq. (3) to the conditional anchor.
        result = composed_distribution({12: 1.0}, params, Scheme.OAQ)
        assert result[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(0.4444, abs=5e-4)

    def test_mixture_of_orientations(self):
        params = EvaluationParams(signal_termination_rate=0.5)
        result = composed_distribution({9: 0.5, 12: 0.5}, params, Scheme.OAQ)
        # Level 2 mass can only come from k=9, level 3 only from k=12.
        assert result[QoSLevel.SEQUENTIAL_DUAL] > 0.0
        assert result[QoSLevel.SIMULTANEOUS_DUAL] > 0.0
        assert result[QoSLevel.MISSED] > 0.0

    def test_oaq_dominates_baq_composed(self):
        params = EvaluationParams(signal_termination_rate=0.2)
        weights = {9: 0.1, 10: 0.3, 12: 0.4, 14: 0.2}
        oaq = composed_distribution(weights, params, Scheme.OAQ)
        baq = composed_distribution(weights, params, Scheme.BAQ)
        for level in QoSLevel:
            assert oaq.at_least(level) >= baq.at_least(level) - 1e-12
