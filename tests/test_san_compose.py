"""Tests for repro.san.compose (replicate-and-lump composition)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, StateSpaceExplosionError
from repro.san.compose import (
    ReplicatedChain,
    lumped_state_count,
    replicate_lumped,
)
from repro.san.ctmc import CTMC


def on_off_chain(fail=0.5, repair=2.0):
    """Base: state 0 = up, state 1 = down."""
    return CTMC(2, [(0, 1, fail), (1, 0, repair)])


class TestStateCount:
    def test_formula(self):
        assert lumped_state_count(2, 7) == 8
        assert lumped_state_count(3, 2) == 6
        assert lumped_state_count(5, 1) == 5

    def test_replication_matches_formula(self):
        replicated = replicate_lumped(on_off_chain(), 7)
        assert len(replicated.states) == lumped_state_count(2, 7)

    def test_explosion_guard(self):
        base = CTMC(30, [(i, (i + 1) % 30, 1.0) for i in range(30)])
        with pytest.raises(StateSpaceExplosionError):
            replicate_lumped(base, 10, max_states=1000)


class TestBinomialLaw:
    def test_counts_are_binomial(self):
        """n i.i.d. on/off components: the number 'up' at steady state
        is Binomial(n, repair/(fail+repair))."""
        fail, repair, n = 0.5, 2.0, 6
        replicated = replicate_lumped(on_off_chain(fail, repair), n)
        pi = replicated.ctmc.steady_state()
        p_up = repair / (fail + repair)
        distribution = replicated.count_distribution(pi, base_state=0)
        for count in range(n + 1):
            expected = math.comb(n, count) * p_up**count * (1 - p_up) ** (n - count)
            assert distribution.get(count, 0.0) == pytest.approx(expected, abs=1e-9)

    def test_expected_count_is_n_times_marginal(self):
        base = CTMC(3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        pi_base = base.steady_state()
        replicated = replicate_lumped(base, 4)
        pi = replicated.ctmc.steady_state()
        for state in range(3):
            assert replicated.expected_count(pi, state) == pytest.approx(
                4.0 * pi_base[state], abs=1e-9
            )

    def test_probability_at_least(self):
        replicated = replicate_lumped(on_off_chain(1.0, 1.0), 2)
        pi = replicated.ctmc.steady_state()
        # p_up = 0.5 each: P(>=1 up) = 3/4.
        assert replicated.probability_at_least(pi, 0, 1) == pytest.approx(0.75)


class TestValidation:
    def test_rejects_zero_copies(self):
        with pytest.raises(ConfigurationError):
            replicate_lumped(on_off_chain(), 0)

    def test_rejects_distributed_initial_state(self):
        base = CTMC(
            2,
            [(0, 1, 1.0), (1, 0, 1.0)],
            initial_distribution=[(0.5, 0), (0.5, 1)],
        )
        with pytest.raises(ConfigurationError):
            replicate_lumped(base, 2)

    def test_single_copy_is_base(self):
        base = on_off_chain()
        replicated = replicate_lumped(base, 1)
        pi_base = base.steady_state()
        pi = replicated.ctmc.steady_state()
        assert replicated.expected_count(pi, 0) == pytest.approx(pi_base[0])


class TestTransientConsistency:
    def test_transient_counts_match_independent_components(self):
        """At any time t, the expected number 'up' equals n times the
        base chain's transient up-probability (exchangeability)."""
        fail, repair, n, t = 0.7, 1.3, 5, 0.9
        base = on_off_chain(fail, repair)
        replicated = replicate_lumped(base, n)
        p_base = base.transient(t)
        p_lumped = replicated.ctmc.transient(t)
        expected = replicated.expected_count(p_lumped, 0)
        assert expected == pytest.approx(n * p_base[0], abs=1e-6)
