"""Fault-injection tests beyond the paper's fail-silent model: lossy
crosslinks, and long coordination chains under a generous deadline."""

import numpy as np
import pytest

from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.errors import ConfigurationError
from repro.desim.kernel import Simulator
from repro.desim.network import Network
from repro.protocol import CenterlineScenario
from repro.protocol.messages import AlertMessage, CoordinationDone


class TestLossyNetwork:
    def test_loss_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Network(Simulator(), loss_probability=0.1)

    def test_loss_probability_validated(self):
        with pytest.raises(ConfigurationError):
            Network(
                Simulator(),
                loss_probability=1.5,
                rng=np.random.default_rng(0),
            )

    def test_loss_rate_statistics(self):
        simulator = Simulator()
        network = Network(
            simulator, loss_probability=0.3, rng=np.random.default_rng(42)
        )
        received = []
        network.register("sink", lambda s, m: received.append(m))
        for i in range(2000):
            network.send("sink", "sink", i)
        simulator.run()
        assert len(received) / 2000 == pytest.approx(0.7, abs=0.04)


class TestProtocolUnderLoss:
    @pytest.mark.parametrize("loss", [0.05, 0.15])
    def test_alert_always_transmitted_by_deadline(self, loss):
        """Under arbitrary message loss, done-propagation still
        guarantees that *some* satellite transmits an alert within the
        deadline for every detected signal (local timers need no
        messages).  Delivery of that downlink transmission is, of
        course, subject to the same loss."""
        params = EvaluationParams(signal_termination_rate=0.2)
        geometry = params.constellation.plane_geometry(9)
        rng = np.random.default_rng(777)
        detected = 0
        transmitted_timely = 0
        for _ in range(120):
            scenario = CenterlineScenario(
                geometry,
                params,
                crosslink_loss_probability=loss,
                seed=int(rng.integers(0, 2**62)),
            )
            outcome = scenario.run()
            if outcome.detection_time is None:
                continue
            detected += 1
            sent = [
                record
                for record in outcome.message_log
                if isinstance(record.message, AlertMessage)
                and record.message.latency <= params.tau + 1e-9
            ]
            if sent:
                transmitted_timely += 1
        assert detected > 0
        assert transmitted_timely == detected

    def test_lost_done_causes_redundant_timely_alert(self):
        """If the 'coordination done' notification is lost, the
        predecessor's timeout fires and a redundant (but still timely)
        alert goes out -- graceful degradation, not loss."""
        params = EvaluationParams(signal_termination_rate=0.2)
        geometry = params.constellation.plane_geometry(9)
        rng = np.random.default_rng(31337)
        saw_redundant = False
        for _ in range(150):
            scenario = CenterlineScenario(
                geometry,
                params,
                crosslink_loss_probability=0.3,
                onset_position=8.0,
                signal_duration=6.0,
                seed=int(rng.integers(0, 2**62)),
            )
            outcome = scenario.run()
            timely = [
                a for a in outcome.all_alerts if a.latency <= params.tau + 1e-9
            ]
            if len(timely) > 1:
                saw_redundant = True
                senders = {a.sent_by for a in timely}
                assert len(senders) == len(timely)  # distinct satellites
                break
        assert saw_redundant


class TestLongChains:
    def test_three_satellite_chain_under_generous_deadline(self):
        """tau = 12 > L1 admits M[9] = 3: the chain extends across two
        crosslink hops and the done notification propagates through
        both back to the initial detector."""
        params = EvaluationParams(
            deadline_minutes=12.0, signal_termination_rate=0.05
        )
        geometry = params.constellation.plane_geometry(9)
        scenario = CenterlineScenario(
            geometry,
            params,
            onset_position=8.5,  # next visitors at 1.5 and 11.5 minutes
            signal_duration=30.0,
            seed=5,
        )
        outcome = scenario.run(horizon=40.0)
        assert outcome.official_alert is not None
        assert outcome.official_alert.chain == ("S1", "S2", "S3")
        assert outcome.achieved_level is QoSLevel.SEQUENTIAL_DUAL
        assert outcome.alert_latency <= params.tau + 1e-9
        # Done notifications reached both downstream satellites.
        done_targets = {
            record.destination
            for record in outcome.message_log
            if isinstance(record.message, CoordinationDone)
            and not record.dropped
        }
        assert {"S1", "S2"} <= done_targets

    def test_chain_length_respects_eq2_bound(self):
        """Even with an immortal signal, timely chains never exceed
        M[k] for the given deadline."""
        params = EvaluationParams(
            deadline_minutes=12.0, signal_termination_rate=0.05
        )
        geometry = params.constellation.plane_geometry(9)
        bound = geometry.max_consecutive_coverage(params.tau)
        rng = np.random.default_rng(11)
        for _ in range(40):
            scenario = CenterlineScenario(
                geometry,
                params,
                signal_duration=60.0,
                seed=int(rng.integers(0, 2**62)),
            )
            outcome = scenario.run(horizon=40.0)
            timely = [
                a for a in outcome.all_alerts if a.latency <= params.tau + 1e-9
            ]
            for alert in timely:
                assert len(alert.chain) <= bound
