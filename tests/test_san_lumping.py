"""Tests for repro.san.lumping (exact symmetry lumping).

The two layers -- canonical-representative reachability
(``lumped_state_space``) and partition-refinement quotients of
assembled chains (``lump_assembled``) -- are cross-validated against
full-space solves on small symmetric models, and the capacity
integration is pinned against the counted paper model and the fig7
goldens.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_distribution,
    capacity_distribution_expanded,
    capacity_solver_stats,
    capacity_stage_timings,
    clear_capacity_caches,
    expanded_capacity_summary,
)
from repro.analytic.distributions import Deterministic
from repro.errors import ModelError
from repro.san import (
    Case,
    InputGate,
    LumpedChain,
    LumpedStateSpace,
    OutputGate,
    Place,
    SANModel,
    TimedActivity,
    assemble,
    canonical_marking,
    generate,
    lump_assembled,
    lumped_state_space,
    orbit_size,
)

_GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "experiments_golden.json"


def plane_model(
    n=3,
    fail_rates=None,
    repair=0.7,
    det_reset=False,
    initial_up=None,
    declare_groups=True,
):
    """A small symmetric plane: ``n`` binary satellites, uniform repair
    of a random failed one, optional deterministic full reset."""
    sats = [f"s{i}" for i in range(1, n + 1)]
    if fail_rates is None:
        fail_rates = [0.02] * n
    if initial_up is None:
        initial_up = [1] * n
    places = [Place(s, up) for s, up in zip(sats, initial_up)] + [
        Place("pool", 1)
    ]

    def down(m):
        return sum(1 - m[s] for s in sats)

    failures = [
        TimedActivity.exponential(f"fail_{s}", rate, input_arcs={s: 1})
        for s, rate in zip(sats, fail_rates)
    ]

    def repair_case(s):
        def probability(m):
            d = down(m)
            return (1 - m[s]) / d if d else 0.0

        return Case(probability=probability, output_arcs={s: 1, "pool": 1})

    activities = failures + [
        TimedActivity.exponential(
            "repair",
            repair,
            input_arcs={"pool": 1},
            input_gates=[InputGate("any_down", predicate=lambda m: down(m) > 0)],
            cases=[repair_case(s) for s in sats],
        )
    ]
    if det_reset:

        def restore(m):
            for s in sats:
                m[s] = 1
            m["pool"] = 1

        activities.append(
            TimedActivity(
                "reset",
                Deterministic(40.0),
                input_gates=[
                    InputGate("some_down", predicate=lambda m: down(m) > 0)
                ],
                cases=[Case(output_gates=[OutputGate("restore", restore)])],
            )
        )
    return SANModel(
        places,
        activities,
        name="toy-plane",
        exchangeable_groups=[sats] if declare_groups else (),
    )


def up_count_distribution(space, pi, sats):
    """Aggregate a state distribution by total up-satellite count."""
    result = {}
    for marking, probability in zip(space.markings, np.asarray(pi).tolist()):
        as_dict = space.model.marking_dict(marking)
        k = sum(as_dict[s] for s in sats)
        result[k] = result.get(k, 0.0) + probability
    return result


class TestGroupAction:
    def test_canonical_marking_sorts_group_members(self):
        model = plane_model(n=3)
        # (s1, s2, s3, pool) = (1, 0, 1, 1) -> members sorted ascending.
        assert canonical_marking(model, (1, 0, 1, 1)) == (0, 1, 1, 1)
        assert canonical_marking(model, (0, 1, 1, 1)) == (0, 1, 1, 1)

    def test_orbit_size_is_multinomial(self):
        model = plane_model(n=4)
        assert orbit_size(model, (1, 1, 1, 1, 1)) == 1
        assert orbit_size(model, (0, 1, 1, 1, 1)) == 4
        assert orbit_size(model, (0, 0, 1, 1, 1)) == 6

    def test_undeclared_groups_rejected(self):
        model = plane_model(n=3, declare_groups=False)
        with pytest.raises(ModelError, match="nothing to lump"):
            lumped_state_space(model)

    def test_group_declaration_validation(self):
        with pytest.raises(ModelError, match="unknown place"):
            SANModel(
                [Place("a", 1), Place("b", 1)],
                [TimedActivity.exponential("t", 1.0, input_arcs={"a": 1})],
                exchangeable_groups=[["a", "ghost"]],
            )
        with pytest.raises(ModelError, match="place-disjoint"):
            SANModel(
                [Place("a", 1), Place("b", 1)],
                [TimedActivity.exponential("t", 1.0, input_arcs={"a": 1})],
                exchangeable_groups=[["a", "b"], ["a", "b"]],
            )


class TestLumpedStateSpace:
    def test_quotient_counts_orbits(self):
        model = plane_model(n=3)
        space = lumped_state_space(model)
        full = generate(plane_model(n=3))
        # Representatives are up-counts 0..3; orbit sizes sum to the
        # full tangible count.
        assert isinstance(space, LumpedStateSpace)
        assert len(space) == 4
        assert space.full_state_count == len(full) == 8
        assert "orbit representatives" in space.describe()

    def test_quotient_steady_state_matches_full(self):
        sats = ["s1", "s2", "s3"]
        full_chain = assemble(generate(plane_model(n=3)), stages=4)
        quotient_chain = assemble(lumped_state_space(plane_model(n=3)), stages=4)
        model = plane_model(n=3)
        pi_full = full_chain.rerate(model).steady_state_solve().pi
        pi_quotient = quotient_chain.rerate(model).steady_state_solve().pi
        full_pk = up_count_distribution(
            full_chain.space, full_chain.marking_marginals(pi_full), sats
        )
        quotient_pk = up_count_distribution(
            quotient_chain.space,
            quotient_chain.marking_marginals(pi_quotient),
            sats,
        )
        assert set(full_pk) == set(quotient_pk)
        for k in full_pk:
            assert quotient_pk[k] == pytest.approx(full_pk[k], abs=1e-12)

    def test_deterministic_timer_quotient_matches_full(self):
        sats = ["s1", "s2", "s3"]
        model = plane_model(n=3, det_reset=True)
        full_chain = assemble(generate(model), stages=6)
        quotient_chain = assemble(
            lumped_state_space(plane_model(n=3, det_reset=True)), stages=6
        )
        pi_full = full_chain.rerate(model).steady_state_solve().pi
        pi_quotient = quotient_chain.rerate(model).steady_state_solve().pi
        full_pk = up_count_distribution(
            full_chain.space, full_chain.marking_marginals(pi_full), sats
        )
        quotient_pk = up_count_distribution(
            quotient_chain.space,
            quotient_chain.marking_marginals(pi_quotient),
            sats,
        )
        for k in full_pk:
            assert quotient_pk[k] == pytest.approx(full_pk[k], abs=1e-12)

    def test_asymmetric_rates_fail_verification(self):
        model = plane_model(n=3, fail_rates=[0.02, 0.02, 0.05])
        with pytest.raises(ModelError, match="not a symmetry"):
            lumped_state_space(model)

    def test_asymmetric_initial_distribution_rejected(self):
        model = plane_model(n=3, initial_up=[0, 1, 1])
        with pytest.raises(ModelError, match="initial distribution"):
            lumped_state_space(model)

    def test_explosion_guard_applies_to_quotient(self):
        from repro.errors import StateSpaceExplosionError

        model = plane_model(n=6)
        with pytest.raises(StateSpaceExplosionError):
            lumped_state_space(model, max_states=3)


class TestLumpAssembled:
    def make(self, stages=4, **kwargs):
        model = plane_model(det_reset=True, **kwargs)
        chain = assemble(generate(model), stages=stages)
        return model, chain, lump_assembled(chain)

    def test_reduction_and_describe(self):
        _, chain, lumped = self.make()
        assert isinstance(lumped, LumpedChain)
        assert lumped.num_blocks < chain.num_states
        assert lumped.num_full_states == chain.num_states
        assert lumped.reduction > 1.0
        assert lumped.num_slot_classes < chain.num_slots
        assert "blocks" in lumped.describe()

    def test_assemble_lump_flag_attaches_quotient(self):
        model = plane_model(det_reset=True)
        chain = assemble(generate(model), stages=4, lump=True)
        assert isinstance(chain.lumped, LumpedChain)
        assert assemble(generate(model), stages=4).lumped is None

    def test_steady_state_expands_exactly(self):
        model, chain, lumped = self.make()
        pi_full = chain.rerate(model).steady_state_solve().pi
        pi_quotient = lumped.rerate(model).steady_state_solve().pi
        expanded = lumped.expand(pi_quotient)
        assert np.max(np.abs(expanded - pi_full)) <= 1e-12
        # aggregate is the left inverse of expand.
        assert np.max(
            np.abs(lumped.aggregate(expanded) - pi_quotient)
        ) <= 1e-14
        # And the marking marginals agree through the quotient route.
        assert np.max(
            np.abs(
                lumped.marking_marginals(pi_quotient)
                - chain.marking_marginals(pi_full)
            )
        ) <= 1e-12

    def test_projection_and_expansion_matrices(self):
        model, chain, lumped = self.make()
        pi_quotient = lumped.rerate(model).steady_state_solve().pi
        expansion = lumped.expansion_matrix()
        projection = lumped.projection_matrix()
        assert expansion.shape == (lumped.num_full_states, lumped.num_blocks)
        assert np.max(
            np.abs(expansion @ pi_quotient - lumped.expand(pi_quotient))
        ) <= 1e-15
        rng = np.random.default_rng(7)
        reward = rng.uniform(0.0, 5.0, size=lumped.num_full_states)
        projected = lumped.project_reward(reward)
        assert np.max(np.abs(projection @ reward - projected)) <= 1e-12
        # Reward preservation: quotient expectation == full expectation.
        pi_full = lumped.expand(pi_quotient)
        assert float(pi_quotient @ projected) == pytest.approx(
            float(pi_full @ reward), abs=1e-12
        )

    def test_transient_agrees_through_quotient(self):
        model, chain, lumped = self.make()
        full = chain.rerate(model)
        quotient = lumped.rerate(model)
        for t in (0.0, 3.0, 25.0):
            p_full = full.transient(t)
            p_quotient = quotient.transient(t)
            assert np.max(
                np.abs(lumped.aggregate(p_full) - p_quotient)
            ) <= 1e-10

    def test_rerate_survives_symmetric_rate_change(self):
        model, _, lumped = self.make()
        hotter = plane_model(det_reset=True, fail_rates=[0.09] * 3)
        pi_quotient = lumped.rerate(hotter).steady_state_solve().pi
        full_chain = assemble(generate(hotter), stages=4)
        pi_full = full_chain.rerate(hotter).steady_state_solve().pi
        assert np.max(np.abs(lumped.expand(pi_quotient) - pi_full)) <= 1e-12

    def test_rerate_rejects_class_breaking_rates(self):
        _, _, lumped = self.make()
        broken = plane_model(det_reset=True, fail_rates=[0.02, 0.02, 0.09])
        with pytest.raises(ModelError, match="breaks lumping slot class"):
            lumped.rerate(broken)

    def test_coincidentally_equal_rates_stay_in_separate_classes(self):
        """Regression: ``lump_assembled`` keyed slot classes on the
        bitwise rate value alone, so two unrelated activity families
        whose rates happened to coincide at refinement time (here:
        repair rate == failure rate) were merged into one class.  The
        merged chain solved that one point correctly but any later
        re-rate that diverged the rates hit the class-constancy check
        and raised ``ModelError`` -- a sweep-point fallback for a
        perfectly lumpable model.  The key now includes the slot's case
        multiset, which separates the families without refining any
        genuinely symmetric orbit."""
        collided = plane_model(fail_rates=[0.02] * 3, repair=0.02)
        chain = assemble(generate(collided), stages=4)
        lumped = lump_assembled(chain)
        # The diverged point must re-rate in place...
        diverged = plane_model(fail_rates=[0.02] * 3, repair=0.9)
        pi_quotient = lumped.rerate(diverged).steady_state_solve().pi
        # ... and agree exactly with the full-chain solve.
        full = assemble(generate(diverged), stages=4)
        pi_full = full.rerate(diverged).steady_state_solve().pi
        assert np.max(np.abs(lumped.expand(pi_quotient) - pi_full)) <= 1e-12

    def test_asymmetric_dynamics_refine_to_singletons(self):
        model = plane_model(fail_rates=[0.02, 0.05], n=2)
        # Force the declaration despite the asymmetry.
        asymmetric = SANModel(
            model.places,
            model.timed_activities,
            model.instantaneous_activities,
            name=model.name,
            exchangeable_groups=[["s1", "s2"]],
        )
        chain = assemble(generate(asymmetric), stages=2)
        with pytest.raises(ModelError, match="not a lumpable symmetry"):
            lump_assembled(chain)


class TestCapacityLumping:
    def setup_method(self):
        clear_capacity_caches(reset_stats=True)

    def test_expanded_quotient_is_counted_chain(self):
        summary = expanded_capacity_summary(CapacityModelConfig(), stages=8)
        assert summary["orbit_representatives"] == 17
        assert summary["full_tangible_markings"] == 2**14 + 2
        assert summary["marking_reduction"] > 900

    def test_lumped_expanded_matches_counted_and_fig7_goldens(self):
        with open(_GOLDEN_PATH) as fh:
            golden = json.load(fh)["fig7"]
        for row in golden["rows"]:
            lam = float(row["lambda"])
            config = CapacityModelConfig(failure_rate_per_hour=lam)
            counted = capacity_distribution(config, stages=24)
            lumped = capacity_distribution_expanded(
                config, stages=24, lump=True
            )
            for k in set(counted) | set(lumped):
                assert lumped.get(k, 0.0) == pytest.approx(
                    counted.get(k, 0.0), abs=1e-12
                ), f"lambda={lam} k={k}"
            for header, pinned in row.items():
                if not header.startswith("P(K="):
                    continue
                k = int(header[len("P(K=") : -1])
                assert lumped.get(k, 0.0) == pytest.approx(
                    pinned, abs=1e-9
                ), f"golden {header} at lambda={lam}"

    def test_sweep_refines_once_and_warm_starts(self):
        configs = [
            CapacityModelConfig(failure_rate_per_hour=1e-5 * (1 + 0.2 * i))
            for i in range(22)
        ]
        capacity_distribution_expanded(configs[0], stages=8, lump=True)
        refine_after_first = capacity_stage_timings()["refine"]
        assert refine_after_first > 0.0
        for config in configs[1:]:
            capacity_distribution_expanded(config, stages=8, lump=True)
        # One refinement + one quotient assembly for the whole sweep.
        assert capacity_stage_timings()["refine"] == refine_after_first
        stats = capacity_solver_stats()
        assert stats["structure_fallbacks"] == 0
        assert stats["warm_started"] >= len(configs) - 1

    def test_lumped_failure_falls_back_to_full_chain(self, monkeypatch):
        import repro.analytic.capacity as capacity

        def boom(model, **kwargs):
            raise ModelError("injected: not lumpable")

        monkeypatch.setattr(capacity, "lumped_state_space", boom)
        before = capacity_solver_stats()["structure_fallbacks"]
        # A small plane keeps the unlumped expanded fallback (2^4 + 1
        # markings) cheap enough for a unit test.
        config = CapacityModelConfig(
            full_capacity=4, in_orbit_spares=1, threshold=3
        )
        fallback = capacity_distribution_expanded(config, stages=1, lump=True)
        assert capacity_solver_stats()["structure_fallbacks"] == before + 1
        monkeypatch.undo()
        clear_capacity_caches()
        unlumped = capacity_distribution_expanded(config, stages=1, lump=False)
        for k in set(fallback) | set(unlumped):
            assert fallback.get(k, 0.0) == pytest.approx(
                unlumped.get(k, 0.0), abs=1e-12
            )
