"""Tests for the extension experiments (aging, robustness)."""

import pytest

from repro.experiments import aging_exp, robustness_exp


class TestAging:
    @pytest.fixture(scope="class")
    def result(self):
        return aging_exp.run(
            times_hours=(0.0, 2000.0, 8000.0), stages=10
        )

    def test_rows_are_proper_distributions(self, result):
        for row in result.rows:
            total = sum(
                row[f"P(K={k})"] for k in range(8, 15)
            )
            assert total == pytest.approx(1.0, abs=0.01)

    def test_degradation_over_time(self, result):
        p14 = [row["P(K=14)"] for row in result.rows]
        assert p14[0] == pytest.approx(1.0)
        assert p14 == sorted(p14, reverse=True)
        p10 = [row["P(K=10)"] for row in result.rows]
        assert p10 == sorted(p10)


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return robustness_exp.run()

    def test_oaq_dominates_for_every_duration_model(self, result):
        for row in result.rows:
            assert row["OAQ P(Y>=2)"] >= row["BAQ P(Y>=2)"] - 1e-12

    def test_baq_invariant_to_duration_model(self, result):
        """BAQ never waits, so the duration distribution is irrelevant
        to it (given equal means)."""
        for k in (9, 12):
            values = {
                row["BAQ P(Y>=2)"]
                for row in result.rows
                if row["k"] == k
            }
            assert max(values) - min(values) < 1e-9

    def test_deterministic_duration_helps_oaq_most(self, result):
        """A signal that always lasts its full mean feeds every
        opportunity whose wait is below it -- the best case for OAQ."""
        by_model = {
            (row["k"], row["duration model"]): row["OAQ P(Y>=2)"]
            for row in result.rows
        }
        for k in (9, 12):
            assert by_model[(k, "deterministic")] > by_model[(k, "exponential")]

    def test_duration_models_share_mean(self):
        models = robustness_exp.duration_models(5.0)
        for dist in models.values():
            assert dist.mean() == pytest.approx(5.0)

    def test_duration_models_have_documented_cv2(self):
        """The three models are distinguished by their squared
        coefficient of variation: 1 (exponential), 17/9 (the bursty
        hyperexponential -- regression: this was once misdocumented as
        2.12) and 0 (deterministic)."""
        documented = {
            "exponential": 1.0,
            "hyperexponential": robustness_exp.HYPEREXPONENTIAL_CV2,
            "deterministic": 0.0,
        }
        assert robustness_exp.HYPEREXPONENTIAL_CV2 == pytest.approx(17.0 / 9.0)
        for mean in (1.0, 5.0):
            models = robustness_exp.duration_models(mean)
            assert set(models) == set(documented)
            for label, dist in models.items():
                cv2 = dist.variance() / dist.mean() ** 2
                assert cv2 == pytest.approx(documented[label]), label


class TestMultiplane:
    def test_more_planes_monotone_improvement(self):
        from repro.experiments import multiplane_exp

        result = multiplane_exp.run(lambdas=(1e-4,), stages=10)
        oaq = [row["OAQ P(Y>=2)"] for row in result.rows]
        baq = [row["BAQ P(Y>=2)"] for row in result.rows]
        assert oaq == sorted(oaq)
        assert baq == sorted(baq)
        for o, b in zip(oaq, baq):
            assert o >= b


class TestCalibration:
    def test_default_latency_in_flat_optimum(self):
        """The anchor fit is near-flat up to ~170 h; the default 168 h
        must sit inside that region, and long latencies must clearly
        degrade."""
        from repro.experiments import calibration_exp

        result = calibration_exp.run(
            latencies_hours=(24.0, 168.0, 720.0), stages=12
        )
        errors = {row["latency (h)"]: row["max |err|"] for row in result.rows}
        assert errors[168.0] < 0.05
        assert errors[168.0] < errors[720.0]
        assert abs(errors[168.0] - errors[24.0]) < 0.03
