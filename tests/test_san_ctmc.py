"""Tests for repro.san.ctmc against closed-form Markov-chain results."""

import math

import numpy as np
import pytest

from repro.errors import ModelError, SolverError
from repro.san import Case, InputGate, Place, SANModel, TimedActivity, generate
from repro.san.ctmc import CTMC, from_state_space, marking_probabilities


def mm1k_space(arrival, service, capacity):
    arrive = TimedActivity.exponential(
        "arrive",
        arrival,
        input_gates=[
            InputGate("not_full", predicate=lambda m: m["queue"] < capacity)
        ],
        cases=[Case(output_arcs={"queue": 1})],
    )
    serve = TimedActivity.exponential("serve", service, input_arcs={"queue": 1})
    return generate(SANModel([Place("queue", 0)], [arrive, serve]))


class TestSteadyState:
    def test_two_state_chain(self):
        # 0 -(a)-> 1, 1 -(b)-> 0: pi = (b, a) / (a + b).
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        pi = chain.steady_state()
        assert pi[0] == pytest.approx(0.6)
        assert pi[1] == pytest.approx(0.4)

    def test_mm1k_matches_geometric_formula(self):
        lam, mu, k = 1.0, 2.0, 5
        space = mm1k_space(lam, mu, k)
        pi = from_state_space(space).steady_state()
        rho = lam / mu
        normaliser = sum(rho**n for n in range(k + 1))
        by_marking = marking_probabilities(space, pi)
        for n in range(k + 1):
            assert by_marking[(n,)] == pytest.approx(rho**n / normaliser)

    def test_birth_death_detailed_balance(self):
        space = mm1k_space(0.7, 1.3, 8)
        pi = from_state_space(space).steady_state()
        by_marking = marking_probabilities(space, pi)
        for n in range(8):
            assert 0.7 * by_marking[(n,)] == pytest.approx(
                1.3 * by_marking[(n + 1,)], rel=1e-8
            )

    def test_absorbing_chain_rejected(self):
        chain = CTMC(3, [(0, 1, 1.0), (0, 2, 1.0)])  # 1 and 2 absorbing
        with pytest.raises(SolverError):
            chain.steady_state()

    def test_single_state(self):
        assert CTMC(1, []).steady_state() == pytest.approx([1.0])

    def test_rejects_negative_rate(self):
        with pytest.raises(ModelError):
            CTMC(2, [(0, 1, -1.0)])

    def test_rejects_out_of_range_state(self):
        with pytest.raises(ModelError):
            CTMC(2, [(0, 5, 1.0)])


class TestTransient:
    def test_two_state_analytic(self):
        """P(in state 1 at t) = (a/(a+b)) (1 - e^{-(a+b)t}) from state 0."""
        a, b, t = 2.0, 3.0, 0.7
        chain = CTMC(2, [(0, 1, a), (1, 0, b)])
        p = chain.transient(t)
        expected = (a / (a + b)) * (1.0 - math.exp(-(a + b) * t))
        assert p[1] == pytest.approx(expected, abs=1e-8)
        assert p.sum() == pytest.approx(1.0)

    def test_time_zero_is_initial(self):
        chain = CTMC(2, [(0, 1, 1.0)], initial_distribution=[(1.0, 0)])
        assert chain.transient(0.0)[0] == 1.0

    def test_long_horizon_approaches_steady_state(self):
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        p = chain.transient(100.0)
        pi = chain.steady_state()
        assert np.allclose(p, pi, atol=1e-6)

    def test_pure_death_chain(self):
        """Poisson decay: P(still in 0 at t) = e^{-t}."""
        chain = CTMC(2, [(0, 1, 1.0)])
        p = chain.transient(2.0)
        assert p[0] == pytest.approx(math.exp(-2.0), abs=1e-8)

    def test_rejects_negative_time(self):
        chain = CTMC(1, [])
        with pytest.raises(ModelError):
            chain.transient(-1.0)


class TestConversion:
    def test_general_transitions_rejected(self):
        from repro.analytic.distributions import Deterministic

        timer = TimedActivity("t", Deterministic(1.0), input_arcs={"p": 1})
        space = generate(SANModel([Place("p", 1)], [timer]))
        with pytest.raises(ModelError):
            from_state_space(space)

    def test_expected_reward(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        pi = chain.steady_state()
        assert chain.expected_reward(pi, lambda s: float(s)) == pytest.approx(0.5)
