"""Tests for repro.san.ctmc against closed-form Markov-chain results."""

import math

import numpy as np
import pytest

from repro.errors import ModelError, SolverError
from repro.san import Case, InputGate, Place, SANModel, TimedActivity, generate
from repro.san.ctmc import CTMC, from_state_space, marking_probabilities


def mm1k_space(arrival, service, capacity):
    arrive = TimedActivity.exponential(
        "arrive",
        arrival,
        input_gates=[
            InputGate("not_full", predicate=lambda m: m["queue"] < capacity)
        ],
        cases=[Case(output_arcs={"queue": 1})],
    )
    serve = TimedActivity.exponential("serve", service, input_arcs={"queue": 1})
    return generate(SANModel([Place("queue", 0)], [arrive, serve]))


class TestSteadyState:
    def test_two_state_chain(self):
        # 0 -(a)-> 1, 1 -(b)-> 0: pi = (b, a) / (a + b).
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        pi = chain.steady_state()
        assert pi[0] == pytest.approx(0.6)
        assert pi[1] == pytest.approx(0.4)

    def test_mm1k_matches_geometric_formula(self):
        lam, mu, k = 1.0, 2.0, 5
        space = mm1k_space(lam, mu, k)
        pi = from_state_space(space).steady_state()
        rho = lam / mu
        normaliser = sum(rho**n for n in range(k + 1))
        by_marking = marking_probabilities(space, pi)
        for n in range(k + 1):
            assert by_marking[(n,)] == pytest.approx(rho**n / normaliser)

    def test_birth_death_detailed_balance(self):
        space = mm1k_space(0.7, 1.3, 8)
        pi = from_state_space(space).steady_state()
        by_marking = marking_probabilities(space, pi)
        for n in range(8):
            assert 0.7 * by_marking[(n,)] == pytest.approx(
                1.3 * by_marking[(n + 1,)], rel=1e-8
            )

    def test_absorbing_chain_rejected(self):
        chain = CTMC(3, [(0, 1, 1.0), (0, 2, 1.0)])  # 1 and 2 absorbing
        with pytest.raises(SolverError):
            chain.steady_state()

    def test_single_state(self):
        assert CTMC(1, []).steady_state() == pytest.approx([1.0])

    def test_rejects_negative_rate(self):
        with pytest.raises(ModelError):
            CTMC(2, [(0, 1, -1.0)])

    def test_rejects_out_of_range_state(self):
        with pytest.raises(ModelError):
            CTMC(2, [(0, 5, 1.0)])


class TestTransient:
    def test_two_state_analytic(self):
        """P(in state 1 at t) = (a/(a+b)) (1 - e^{-(a+b)t}) from state 0."""
        a, b, t = 2.0, 3.0, 0.7
        chain = CTMC(2, [(0, 1, a), (1, 0, b)])
        p = chain.transient(t)
        expected = (a / (a + b)) * (1.0 - math.exp(-(a + b) * t))
        assert p[1] == pytest.approx(expected, abs=1e-8)
        assert p.sum() == pytest.approx(1.0)

    def test_time_zero_is_initial(self):
        chain = CTMC(2, [(0, 1, 1.0)], initial_distribution=[(1.0, 0)])
        assert chain.transient(0.0)[0] == 1.0

    def test_long_horizon_approaches_steady_state(self):
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        p = chain.transient(100.0)
        pi = chain.steady_state()
        assert np.allclose(p, pi, atol=1e-6)

    def test_pure_death_chain(self):
        """Poisson decay: P(still in 0 at t) = e^{-t}."""
        chain = CTMC(2, [(0, 1, 1.0)])
        p = chain.transient(2.0)
        assert p[0] == pytest.approx(math.exp(-2.0), abs=1e-8)

    def test_rejects_negative_time(self):
        chain = CTMC(1, [])
        with pytest.raises(ModelError):
            chain.transient(-1.0)


class TestEdgeCases:
    def test_two_recurrent_classes_rejected_by_residual_check(self):
        """Two disjoint recurrent classes have no unique stationary
        distribution; the solver must refuse rather than return one."""
        chain = CTMC(
            4,
            [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 2.0), (3, 2, 2.0)],
        )
        with pytest.raises(SolverError):
            chain.steady_state()

    def test_absorbing_tail_rejected(self):
        """A transient start draining into two absorbing states."""
        chain = CTMC(3, [(0, 1, 0.5), (0, 2, 1.5)])
        with pytest.raises(SolverError):
            chain.steady_state()

    def test_transient_zero_returns_independent_copy(self):
        chain = CTMC(2, [(0, 1, 1.0)], initial_distribution=[(1.0, 0)])
        p = chain.transient(0.0)
        assert p.tolist() == [1.0, 0.0]
        p[0] = 99.0  # mutating the result must not leak into the chain
        assert chain.transient(0.0).tolist() == [1.0, 0.0]

    def test_transient_zero_with_explicit_initial(self):
        chain = CTMC(3, [(0, 1, 1.0), (1, 2, 1.0)])
        initial = np.array([0.2, 0.3, 0.5])
        assert chain.transient(0.0, initial=initial).tolist() == [
            0.2,
            0.3,
            0.5,
        ]

    def test_long_horizon_split_path_matches_matrix_exponential(self):
        """lam*t > 400 triggers the horizon-splitting branch; its
        answer must agree with expm(Q^T t) p0 on a stiff chain."""
        from scipy.linalg import expm

        # Fast 0<->1 oscillation plus a slow drain into 2<->3: the
        # uniformisation rate is ~102, so t=10 gives lam*t ~ 1040,
        # i.e. three split steps -- while the slow part keeps the
        # distribution far from degenerate.
        transitions = [
            (0, 1, 100.0),
            (1, 0, 100.0),
            (1, 2, 0.05),
            (2, 3, 0.2),
            (3, 2, 0.1),
        ]
        chain = CTMC(4, transitions)
        t = 10.0
        assert float(chain.exit_rates.max()) * t > 400.0
        p = chain.transient(t)
        q = chain.generator.toarray()
        expected = expm(q.T * t) @ chain.initial_vector()
        assert p.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.allclose(p, expected, atol=1e-7)

    def test_expected_reward_single_state_chain(self):
        chain = CTMC(1, [])
        pi = chain.steady_state()
        assert chain.expected_reward(pi, lambda s: 7.5) == pytest.approx(7.5)

    def test_expected_reward_vectorized_matches_loop_on_10k_states(self):
        """The np.fromiter dot product must agree with the Python-level
        accumulation it replaced, at unfolded-chain scale."""
        n = 10_000
        ring = [(s, (s + 1) % n, 1.0) for s in range(n)]
        chain = CTMC(n, ring)
        rng = np.random.default_rng(7)
        pi = rng.random(n)
        pi /= pi.sum()
        reward = lambda s: math.sin(s) + 0.5 * s  # noqa: E731
        expected = float(sum(pi[s] * reward(s) for s in range(n)))
        assert chain.expected_reward(pi, reward) == pytest.approx(
            expected, rel=1e-12
        )

    def test_expected_reward_on_uniform_ring_is_mean_reward(self):
        n = 10_000
        ring = [(s, (s + 1) % n, 1.0) for s in range(n)]
        chain = CTMC(n, ring)
        pi = chain.steady_state()
        # The symmetric ring's stationary distribution is uniform, so
        # E[reward(s) = s] is the mean state index.
        assert chain.expected_reward(pi, float) == pytest.approx(
            (n - 1) / 2.0, rel=1e-6
        )


class TestConversion:
    def test_general_transitions_rejected(self):
        from repro.analytic.distributions import Deterministic

        timer = TimedActivity("t", Deterministic(1.0), input_arcs={"p": 1})
        space = generate(SANModel([Place("p", 1)], [timer]))
        with pytest.raises(ModelError):
            from_state_space(space)

    def test_expected_reward(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        pi = chain.steady_state()
        assert chain.expected_reward(pi, lambda s: float(s)) == pytest.approx(0.5)
