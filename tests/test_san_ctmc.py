"""Tests for repro.san.ctmc against closed-form Markov-chain results."""

import math

import numpy as np
import pytest

from repro.errors import ModelError, SolverError
from repro.san import Case, InputGate, Place, SANModel, TimedActivity, generate
from repro.san.ctmc import CTMC, from_state_space, marking_probabilities


def mm1k_space(arrival, service, capacity):
    arrive = TimedActivity.exponential(
        "arrive",
        arrival,
        input_gates=[
            InputGate("not_full", predicate=lambda m: m["queue"] < capacity)
        ],
        cases=[Case(output_arcs={"queue": 1})],
    )
    serve = TimedActivity.exponential("serve", service, input_arcs={"queue": 1})
    return generate(SANModel([Place("queue", 0)], [arrive, serve]))


class TestSteadyState:
    def test_two_state_chain(self):
        # 0 -(a)-> 1, 1 -(b)-> 0: pi = (b, a) / (a + b).
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        pi = chain.steady_state()
        assert pi[0] == pytest.approx(0.6)
        assert pi[1] == pytest.approx(0.4)

    def test_mm1k_matches_geometric_formula(self):
        lam, mu, k = 1.0, 2.0, 5
        space = mm1k_space(lam, mu, k)
        pi = from_state_space(space).steady_state()
        rho = lam / mu
        normaliser = sum(rho**n for n in range(k + 1))
        by_marking = marking_probabilities(space, pi)
        for n in range(k + 1):
            assert by_marking[(n,)] == pytest.approx(rho**n / normaliser)

    def test_birth_death_detailed_balance(self):
        space = mm1k_space(0.7, 1.3, 8)
        pi = from_state_space(space).steady_state()
        by_marking = marking_probabilities(space, pi)
        for n in range(8):
            assert 0.7 * by_marking[(n,)] == pytest.approx(
                1.3 * by_marking[(n + 1,)], rel=1e-8
            )

    def test_absorbing_chain_rejected(self):
        chain = CTMC(3, [(0, 1, 1.0), (0, 2, 1.0)])  # 1 and 2 absorbing
        with pytest.raises(SolverError):
            chain.steady_state()

    def test_single_state(self):
        assert CTMC(1, []).steady_state() == pytest.approx([1.0])

    def test_rejects_negative_rate(self):
        with pytest.raises(ModelError):
            CTMC(2, [(0, 1, -1.0)])

    def test_rejects_out_of_range_state(self):
        with pytest.raises(ModelError):
            CTMC(2, [(0, 5, 1.0)])


class TestTransient:
    def test_two_state_analytic(self):
        """P(in state 1 at t) = (a/(a+b)) (1 - e^{-(a+b)t}) from state 0."""
        a, b, t = 2.0, 3.0, 0.7
        chain = CTMC(2, [(0, 1, a), (1, 0, b)])
        p = chain.transient(t)
        expected = (a / (a + b)) * (1.0 - math.exp(-(a + b) * t))
        assert p[1] == pytest.approx(expected, abs=1e-8)
        assert p.sum() == pytest.approx(1.0)

    def test_time_zero_is_initial(self):
        chain = CTMC(2, [(0, 1, 1.0)], initial_distribution=[(1.0, 0)])
        assert chain.transient(0.0)[0] == 1.0

    def test_long_horizon_approaches_steady_state(self):
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        p = chain.transient(100.0)
        pi = chain.steady_state()
        assert np.allclose(p, pi, atol=1e-6)

    def test_pure_death_chain(self):
        """Poisson decay: P(still in 0 at t) = e^{-t}."""
        chain = CTMC(2, [(0, 1, 1.0)])
        p = chain.transient(2.0)
        assert p[0] == pytest.approx(math.exp(-2.0), abs=1e-8)

    def test_rejects_negative_time(self):
        chain = CTMC(1, [])
        with pytest.raises(ModelError):
            chain.transient(-1.0)


class TestEdgeCases:
    def test_two_recurrent_classes_rejected_by_residual_check(self):
        """Two disjoint recurrent classes have no unique stationary
        distribution; the solver must refuse rather than return one."""
        chain = CTMC(
            4,
            [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 2.0), (3, 2, 2.0)],
        )
        with pytest.raises(SolverError):
            chain.steady_state()

    def test_absorbing_tail_rejected(self):
        """A transient start draining into two absorbing states."""
        chain = CTMC(3, [(0, 1, 0.5), (0, 2, 1.5)])
        with pytest.raises(SolverError):
            chain.steady_state()

    def test_transient_zero_returns_independent_copy(self):
        chain = CTMC(2, [(0, 1, 1.0)], initial_distribution=[(1.0, 0)])
        p = chain.transient(0.0)
        assert p.tolist() == [1.0, 0.0]
        p[0] = 99.0  # mutating the result must not leak into the chain
        assert chain.transient(0.0).tolist() == [1.0, 0.0]

    def test_transient_zero_with_explicit_initial(self):
        chain = CTMC(3, [(0, 1, 1.0), (1, 2, 1.0)])
        initial = np.array([0.2, 0.3, 0.5])
        assert chain.transient(0.0, initial=initial).tolist() == [
            0.2,
            0.3,
            0.5,
        ]

    def test_long_horizon_split_path_matches_matrix_exponential(self):
        """lam*t > 400 triggers the horizon-splitting branch; its
        answer must agree with expm(Q^T t) p0 on a stiff chain."""
        from scipy.linalg import expm

        # Fast 0<->1 oscillation plus a slow drain into 2<->3: the
        # uniformisation rate is ~102, so t=10 gives lam*t ~ 1040,
        # i.e. three split steps -- while the slow part keeps the
        # distribution far from degenerate.
        transitions = [
            (0, 1, 100.0),
            (1, 0, 100.0),
            (1, 2, 0.05),
            (2, 3, 0.2),
            (3, 2, 0.1),
        ]
        chain = CTMC(4, transitions)
        t = 10.0
        assert float(chain.exit_rates.max()) * t > 400.0
        p = chain.transient(t)
        q = chain.generator.toarray()
        expected = expm(q.T * t) @ chain.initial_vector()
        assert p.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.allclose(p, expected, atol=1e-7)

    def test_expected_reward_single_state_chain(self):
        chain = CTMC(1, [])
        pi = chain.steady_state()
        assert chain.expected_reward(pi, lambda s: 7.5) == pytest.approx(7.5)

    def test_expected_reward_vectorized_matches_loop_on_10k_states(self):
        """The np.fromiter dot product must agree with the Python-level
        accumulation it replaced, at unfolded-chain scale."""
        n = 10_000
        ring = [(s, (s + 1) % n, 1.0) for s in range(n)]
        chain = CTMC(n, ring)
        rng = np.random.default_rng(7)
        pi = rng.random(n)
        pi /= pi.sum()
        reward = lambda s: math.sin(s) + 0.5 * s  # noqa: E731
        expected = float(sum(pi[s] * reward(s) for s in range(n)))
        assert chain.expected_reward(pi, reward) == pytest.approx(
            expected, rel=1e-12
        )

    def test_expected_reward_on_uniform_ring_is_mean_reward(self):
        n = 10_000
        ring = [(s, (s + 1) % n, 1.0) for s in range(n)]
        chain = CTMC(n, ring)
        pi = chain.steady_state()
        # The symmetric ring's stationary distribution is uniform, so
        # E[reward(s) = s] is the mean state index.
        assert chain.expected_reward(pi, float) == pytest.approx(
            (n - 1) / 2.0, rel=1e-6
        )


def birth_death_chain(n, birth, death):
    transitions = []
    for s in range(n - 1):
        transitions.append((s, s + 1, birth))
        transitions.append((s + 1, s, death))
    return CTMC(n, transitions, initial_distribution=[(1.0, 0)])


class TestTransientInitialValidation:
    def test_rejects_wrong_shape(self):
        chain = CTMC(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        with pytest.raises(ModelError):
            chain.transient(1.0, initial=np.array([0.5, 0.5]))

    def test_rejects_negative_mass(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ModelError):
            chain.transient(1.0, initial=np.array([1.5, -0.5]))

    def test_rejects_unnormalised(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ModelError):
            chain.transient(1.0, initial=np.array([0.6, 0.6]))

    def test_rejects_non_finite(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ModelError):
            chain.transient(1.0, initial=np.array([np.nan, 1.0]))

    def test_accepts_valid_distribution(self):
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        p = chain.transient(50.0, initial=np.array([0.25, 0.75]))
        pi = chain.steady_state()
        assert np.allclose(p, pi, atol=1e-6)


class TestRewardVectors:
    def test_precomputed_array_matches_callable(self):
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        pi = chain.steady_state()
        from_callable = chain.expected_reward(pi, lambda s: float(s * s))
        from_array = chain.expected_reward(pi, np.array([0.0, 1.0]))
        assert from_array == pytest.approx(from_callable)

    def test_array_shape_validated(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        pi = chain.steady_state()
        with pytest.raises(ModelError):
            chain.expected_reward(pi, np.array([1.0, 2.0, 3.0]))

    def test_callable_evaluated_once_across_calls(self):
        chain = CTMC(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        pi = chain.steady_state()
        calls = []

        def reward(state):
            calls.append(state)
            return float(state)

        first = chain.expected_reward(pi, reward)
        second = chain.expected_reward(pi, reward)
        assert first == second
        assert len(calls) == 3  # one sweep, then served from the cache


class TestIterativeSteadyState:
    def test_iterative_matches_direct_to_1e12(self):
        chain = birth_death_chain(150, 1.0, 1.3)
        direct = chain.steady_state_solve(
            method="direct", prepare_warm_start=True
        )
        assert direct.method in ("dense-direct", "sparse-direct")
        assert direct.warm_start is not None
        # Re-solve a nearby chain from the warm start.
        nearby = birth_death_chain(150, 1.05, 1.3)
        warm = nearby.steady_state_solve(
            method="auto", warm_start=direct.warm_start
        )
        assert warm.method == "gmres"
        assert warm.warm_started
        assert warm.iterations > 0
        reference = nearby.steady_state_solve(method="direct")
        assert np.max(np.abs(warm.pi - reference.pi)) <= 1e-12

    def test_cold_auto_with_prepare_uses_iterative_path(self):
        chain = birth_death_chain(120, 0.9, 1.1)
        solution = chain.steady_state_solve(
            method="auto", prepare_warm_start=True
        )
        assert solution.method == "gmres"
        assert not solution.warm_started  # no previous pi to start from
        assert solution.warm_start is not None
        reference = chain.steady_state_solve(method="direct")
        assert np.max(np.abs(solution.pi - reference.pi)) <= 1e-12

    def test_size_mismatched_warm_start_falls_back_with_reason(self):
        small = birth_death_chain(100, 1.0, 1.2)
        prepared = small.steady_state_solve(
            method="direct", prepare_warm_start=True
        ).warm_start
        large = birth_death_chain(140, 1.0, 1.2)
        solution = large.steady_state_solve(
            method="auto", warm_start=prepared
        )
        assert solution.method in ("dense-direct", "sparse-direct")
        assert not solution.warm_started
        assert solution.fallback is not None

    def test_iterative_without_warm_start_raises(self):
        chain = birth_death_chain(100, 1.0, 1.2)
        with pytest.raises(SolverError):
            chain.steady_state_solve(method="iterative")

    def test_unknown_method_rejected(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ModelError):
            chain.steady_state_solve(method="magic")

    def test_small_chain_ignores_warm_start(self):
        """Below _ITERATIVE_MIN_STATES the direct solver is cheaper and
        the iterative machinery is skipped entirely."""
        chain = CTMC(2, [(0, 1, 2.0), (1, 0, 3.0)])
        solution = chain.steady_state_solve(
            method="auto", prepare_warm_start=True
        )
        assert solution.method == "dense-direct"
        assert solution.warm_start is None


class TestFromArrays:
    def test_matches_tuple_construction(self):
        source = np.array([0, 1, 1])
        target = np.array([1, 0, 2])
        rates = np.array([2.0, 1.0, 0.5])
        from_arrays = CTMC.from_arrays(3, source, target, rates)
        from_tuples = CTMC(3, [(0, 1, 2.0), (1, 0, 1.0), (1, 2, 0.5)])
        assert (from_arrays.generator != from_tuples.generator).nnz == 0

    def test_drops_zero_rates_and_self_loops(self):
        source = np.array([0, 0, 1])
        target = np.array([1, 0, 0])
        rates = np.array([1.0, 5.0, 0.0])
        chain = CTMC.from_arrays(2, source, target, rates)
        assert chain.generator[0, 1] == 1.0
        assert chain.generator[1, 0] == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ModelError):
            CTMC.from_arrays(
                2, np.array([0]), np.array([1]), np.array([-1.0])
            )

    def test_rejects_out_of_range_state(self):
        with pytest.raises(ModelError):
            CTMC.from_arrays(
                2, np.array([0]), np.array([7]), np.array([1.0])
            )


class TestConversion:
    def test_general_transitions_rejected(self):
        from repro.analytic.distributions import Deterministic

        timer = TimedActivity("t", Deterministic(1.0), input_arcs={"p": 1})
        space = generate(SANModel([Place("p", 1)], [timer]))
        with pytest.raises(ModelError):
            from_state_space(space)

    def test_expected_reward(self):
        chain = CTMC(2, [(0, 1, 1.0), (1, 0, 1.0)])
        pi = chain.steady_state()
        assert chain.expected_reward(pi, lambda s: float(s)) == pytest.approx(0.5)
