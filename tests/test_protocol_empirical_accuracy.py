"""End-to-end integration: the OAQ protocol driven by the *real*
estimation stack's error distributions."""

import numpy as np
import pytest

from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.protocol import CenterlineScenario, EmpiricalWLSAccuracyModel


@pytest.fixture(scope="module")
def model():
    # Built once: each construction runs the WLS pipeline ~24 times.
    return EmpiricalWLSAccuracyModel(trials=6, seed=314)


class TestEmpiricalModel:
    def test_sampled_errors_positive(self, model):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert model.single_pass_error_km(rng) > 0.0
            assert model.refined_error_km(10.0, 2, rng) > 0.0
            assert model.simultaneous_error_km(rng) > 0.0

    def test_dual_coverage_samples_better_than_single(self, model):
        rng = np.random.default_rng(1)
        singles = [model.single_pass_error_km(rng) for _ in range(40)]
        seq = [model.refined_error_km(10.0, 2, rng) for _ in range(40)]
        assert float(np.median(seq)) < float(np.median(singles))

    def test_protocol_runs_with_empirical_model(self, model):
        """Full stack: real-WLS error samples feed the protocol's TC-1
        and alert payloads."""
        params = EvaluationParams(signal_termination_rate=0.2)
        geometry = params.constellation.plane_geometry(9)
        scenario = CenterlineScenario(
            geometry,
            params,
            onset_position=8.0,
            signal_duration=6.0,
            accuracy_model=model,
            seed=9,
        )
        outcome = scenario.run()
        assert outcome.achieved_level in (
            QoSLevel.SEQUENTIAL_DUAL,
            QoSLevel.SINGLE,
        )
        assert outcome.official_alert is not None
        assert outcome.official_alert.estimate.error_km > 0.0
        assert outcome.alert_latency <= params.tau + 1e-9
