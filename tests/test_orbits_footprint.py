"""Tests for repro.orbits.footprint."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH
from repro.orbits.footprint import (
    Footprint,
    coverage_time_minutes,
    elevation_from_half_angle,
    half_angle_for_coverage_time,
    half_angle_from_elevation,
)
from repro.orbits.frames import GeodeticPoint, geodetic_to_ecef


class TestCalibration:
    def test_reference_half_angle_is_18_degrees(self):
        """Tc = 9 min on a 90-minute orbit => psi = 18 degrees."""
        psi = half_angle_for_coverage_time(90.0, 9.0)
        assert math.degrees(psi) == pytest.approx(18.0)

    def test_coverage_time_inverse(self):
        psi = half_angle_for_coverage_time(90.0, 9.0)
        assert coverage_time_minutes(90.0, psi) == pytest.approx(9.0)

    def test_rejects_bad_coverage_time(self):
        with pytest.raises(ConfigurationError):
            half_angle_for_coverage_time(90.0, 90.0)
        with pytest.raises(ConfigurationError):
            half_angle_for_coverage_time(90.0, 0.0)


class TestElevationGeometry:
    def test_zero_elevation_is_horizon(self):
        psi = half_angle_from_elevation(500.0, 0.0)
        horizon = math.acos(EARTH.radius_km / (EARTH.radius_km + 500.0))
        assert psi == pytest.approx(horizon)

    def test_elevation_roundtrip(self):
        for elevation in (0.05, 0.2, 0.6):
            psi = half_angle_from_elevation(800.0, elevation)
            assert elevation_from_half_angle(800.0, psi) == pytest.approx(
                elevation, abs=1e-10
            )

    def test_higher_elevation_smaller_footprint(self):
        low = half_angle_from_elevation(500.0, math.radians(5.0))
        high = half_angle_from_elevation(500.0, math.radians(25.0))
        assert high < low

    def test_rejects_half_angle_beyond_horizon(self):
        with pytest.raises(ConfigurationError):
            elevation_from_half_angle(500.0, math.pi / 3)


class TestFootprint:
    def test_reference_radius(self):
        footprint = Footprint.reference()
        expected = EARTH.radius_km * math.radians(18.0)
        assert footprint.radius_km == pytest.approx(expected)

    def test_covers_subsatellite_point(self):
        footprint = Footprint.reference()
        satellite = np.array([EARTH.radius_km + 300.0, 0.0, 0.0])
        assert footprint.covers(satellite, GeodeticPoint.from_degrees(0.0, 0.0))

    def test_edge_of_coverage(self):
        footprint = Footprint.reference()
        satellite = np.array([EARTH.radius_km + 300.0, 0.0, 0.0])
        inside = GeodeticPoint.from_degrees(17.9, 0.0)
        outside = GeodeticPoint.from_degrees(18.1, 0.0)
        assert footprint.covers(satellite, inside)
        assert not footprint.covers(satellite, outside)

    def test_covers_angle_fast_path(self):
        footprint = Footprint(half_angle=0.3)
        assert footprint.covers_angle(0.29)
        assert not footprint.covers_angle(0.31)

    def test_rejects_invalid_half_angle(self):
        with pytest.raises(ConfigurationError):
            Footprint(half_angle=0.0)
        with pytest.raises(ConfigurationError):
            Footprint(half_angle=math.pi)
