"""Tests for repro.geolocation.accuracy."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geolocation.accuracy import cep_km, error_ellipse, rmse_km


class TestScalarMetrics:
    def test_cep_is_median(self):
        assert cep_km([1.0, 2.0, 3.0, 4.0, 100.0]) == 3.0

    def test_rmse(self):
        assert rmse_km([3.0, 4.0]) == pytest.approx(math.sqrt(12.5))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            cep_km([])
        with pytest.raises(ConfigurationError):
            rmse_km([])


class TestErrorEllipse:
    def test_isotropic_covariance(self):
        # 1e-6 rad std in both axes at the equator.
        cov = np.diag([1e-12, 1e-12])
        ellipse = error_ellipse(cov, latitude=0.0)
        assert ellipse.semi_major_km == pytest.approx(ellipse.semi_minor_km)
        assert ellipse.elongation == pytest.approx(1.0)

    def test_elongated_covariance(self):
        cov = np.diag([100e-12, 1e-12])  # 10x std ratio in lat
        ellipse = error_ellipse(cov, latitude=0.0)
        assert ellipse.elongation == pytest.approx(10.0, rel=1e-6)
        # Major axis along north (the latitude direction).
        assert abs(math.cos(ellipse.orientation_rad)) == pytest.approx(1.0)

    def test_latitude_shrinks_east_axis(self):
        cov = np.diag([1e-12, 1e-12])
        ellipse = error_ellipse(cov, latitude=math.radians(60.0))
        # cos(60) = 0.5: east axis is half the north axis.
        assert ellipse.elongation == pytest.approx(2.0, rel=1e-9)

    def test_area_positive(self):
        cov = np.array([[4e-12, 1e-12], [1e-12, 2e-12]])
        ellipse = error_ellipse(cov, latitude=0.3)
        assert ellipse.area_km2 > 0.0

    def test_accepts_3x3_covariance(self):
        cov = np.diag([1e-12, 1e-12, 1.0])
        ellipse = error_ellipse(cov, latitude=0.0)
        assert ellipse.semi_major_km > 0

    def test_rejects_small_matrix(self):
        with pytest.raises(ConfigurationError):
            error_ellipse(np.array([[1.0]]), latitude=0.0)
