"""Report-layer regression tests: JSON-safe coercion of experiment
results whose rows/metadata hold numpy scalars, arrays and non-finite
floats."""

import json
import math

import numpy as np
import pytest

from repro.experiments.report import ExperimentResult, json_safe


class TestJsonSafe:
    def test_numpy_scalars_become_python(self):
        assert json_safe(np.float64(0.25)) == 0.25
        assert isinstance(json_safe(np.float64(0.25)), float)
        assert json_safe(np.int64(7)) == 7
        assert isinstance(json_safe(np.int64(7)), int)
        assert json_safe(np.bool_(True)) is True

    def test_non_finite_floats_deterministic(self):
        assert json_safe(float("nan")) == "NaN"
        assert json_safe(np.float64("nan")) == "NaN"
        assert json_safe(float("inf")) == "Infinity"
        assert json_safe(float("-inf")) == "-Infinity"

    def test_arrays_become_lists(self):
        value = json_safe(np.array([[1.0, 2.0], [3.0, np.nan]]))
        assert value == [[1.0, 2.0], [3.0, "NaN"]]

    def test_mapping_keys_stringified(self):
        value = json_safe({np.int64(3): np.float64(0.5), 4: "x"})
        assert value == {"3": 0.5, "4": "x"}

    def test_nested_containers(self):
        value = json_safe(
            {"a": (np.int64(1), [np.float64(2.0)]), "b": {np.int64(9)}}
        )
        assert value == {"a": [1, [2.0]], "b": [9]}

    def test_output_is_strict_json(self):
        payload = {
            "pk": {np.int64(k): np.float64(p) for k, p in [(9, 0.1), (10, 0.9)]},
            "deltas": np.array([1e-12, np.inf]),
            "bad": float("nan"),
        }
        text = json.dumps(json_safe(payload), allow_nan=False, sort_keys=True)
        assert json.loads(text)["bad"] == "NaN"

    def test_finite_floats_untouched(self):
        assert json_safe(0.1) == 0.1
        assert math.isclose(json_safe(np.float64(1 / 3)), 1 / 3)


class TestExperimentResultMetadataSerialization:
    def _result(self):
        # The regression: sweep engines put numpy scalars into rows and
        # cache/solver statistics into metadata; json.dumps used to
        # choke on them (TypeError) or emit non-standard NaN literals.
        return ExperimentResult(
            experiment_id="unit",
            title="t",
            headers=["x", "y"],
            rows=[{"x": np.int64(1), "y": np.float64(0.5)},
                  {"x": np.int64(2), "y": float("nan")}],
            timings={"total": np.float64(1.5)},
            metadata={
                "cache_stats": {
                    "capacity": {"hits": np.int64(3), "hit_rate": 0.75}
                },
                "deltas": np.array([0.0, np.inf]),
            },
        )

    def test_metadata_serializes_strictly(self):
        result = self._result()
        payload = json_safe(
            {
                "rows": result.rows,
                "timings": result.timings,
                "metadata": result.metadata,
            }
        )
        text = json.dumps(payload, allow_nan=False, sort_keys=True)
        again = json.loads(text)
        assert again["rows"][0] == {"x": 1, "y": 0.5}
        assert again["rows"][1]["y"] == "NaN"
        assert again["metadata"]["cache_stats"]["capacity"]["hits"] == 3
        assert again["metadata"]["deltas"] == [0.0, "Infinity"]

    def test_raw_metadata_would_fail_without_coercion(self):
        result = self._result()
        with pytest.raises((TypeError, ValueError)):
            json.dumps(result.metadata, allow_nan=False)
