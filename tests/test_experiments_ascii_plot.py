"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import line_chart


class TestLineChart:
    def test_renders_title_markers_and_legend(self):
        chart = line_chart(
            {"rising": [(0, 0.0), (1, 0.5), (2, 1.0)]},
            title="demo",
            width=20,
            height=6,
        )
        assert chart.splitlines()[0] == "demo"
        assert "o rising" in chart
        assert "o" in chart

    def test_extreme_points_land_on_edges(self):
        chart = line_chart(
            {"s": [(0, 0.0), (10, 1.0)]}, width=20, height=6
        )
        lines = chart.splitlines()
        top = next(line for line in lines if line.startswith("1.00"))
        bottom = next(line for line in lines if line.startswith("0.00"))
        assert top.rstrip().endswith("o|")  # max at the right edge, top row
        assert bottom.lstrip("0. ").startswith("|o")  # min at the left edge

    def test_two_series_get_distinct_markers(self):
        chart = line_chart(
            {
                "a": [(0, 0.0), (1, 0.2)],
                "b": [(0, 1.0), (1, 0.9)],
            },
            width=20,
            height=8,
        )
        assert "o a" in chart and "x b" in chart

    def test_collision_marked_with_star(self):
        chart = line_chart(
            {"a": [(0, 0.5)], "b": [(0, 0.5)]},
            width=12,
            height=5,
            y_range=(0.0, 1.0),
        )
        assert "*" in chart

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"flat": [(0, 0.3), (1, 0.3)]}, width=12, height=5)
        assert "flat" in chart

    def test_explicit_y_range(self):
        chart = line_chart(
            {"s": [(0, 0.4)]}, width=12, height=5, y_range=(0.0, 1.0)
        )
        assert chart.splitlines()[0].startswith("1.00")

    def test_rejects_empty_series(self):
        with pytest.raises(ConfigurationError):
            line_chart({})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            line_chart({"s": [(0, 1)]}, width=2, height=2)

    def test_rejects_bad_y_range(self):
        with pytest.raises(ConfigurationError):
            line_chart({"s": [(0, 1)]}, y_range=(1.0, 0.0))

    def test_x_axis_labels_present(self):
        chart = line_chart({"s": [(1e-5, 0.1), (1e-4, 0.9)]}, width=30, height=5)
        assert "1e-05" in chart and "0.0001" in chart
