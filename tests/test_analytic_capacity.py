"""Tests for repro.analytic.capacity (the Fig. 7 orbital-plane model)."""

import pytest

from repro.analytic.capacity import (
    CapacityModelConfig,
    build_capacity_san,
    capacity_distribution,
    capacity_distribution_exponential,
)
from repro.core.config import EvaluationParams
from repro.errors import ConfigurationError
from repro.san import generate


class TestConfig:
    def test_defaults_match_paper(self):
        config = CapacityModelConfig()
        assert config.full_capacity == 14
        assert config.in_orbit_spares == 2
        assert config.scheduled_period_hours == 30000.0

    def test_from_params(self):
        params = EvaluationParams(
            node_failure_rate_per_hour=3e-5, deployment_threshold=12
        )
        config = CapacityModelConfig.from_params(params)
        assert config.failure_rate_per_hour == 3e-5
        assert config.threshold == 12

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            CapacityModelConfig(threshold=0)
        with pytest.raises(ConfigurationError):
            CapacityModelConfig(threshold=15)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            CapacityModelConfig(failure_rate_per_hour=0.0)


class TestModelStructure:
    def test_state_space_is_small(self):
        model = build_capacity_san(CapacityModelConfig())
        space = generate(model)
        # active 0..14 x spares/pending structure stays tiny.
        assert 10 < len(space) < 60

    def test_tangible_markings_respect_invariants(self):
        """In-orbit spares only coexist with a full plane, and below the
        threshold the pending launches top the capacity back up."""
        config = CapacityModelConfig(threshold=10)
        model = build_capacity_san(config)
        space = generate(model)
        for marking in space.markings:
            view = model.marking_dict(marking)
            if view["spares"] > 0:
                assert view["active"] == config.full_capacity
            if view["active"] < config.threshold:
                assert view["active"] + view["pending"] == config.threshold

    def test_deterministic_timers_present(self):
        model = build_capacity_san(CapacityModelConfig())
        space = generate(model)
        names = {t.activity for t in space.general}
        assert names == {"scheduled_deployment", "replacement_arrival"}

    def test_exponential_variant_is_markovian(self):
        model = build_capacity_san(
            CapacityModelConfig(), exponential_timers=True
        )
        space = generate(model)
        assert space.is_markovian


class TestDistributionShape:
    """The qualitative Fig. 7 claims, as assertions."""

    def test_distribution_is_proper(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=5e-5), stages=16
        )
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-8)
        assert all(p >= -1e-12 for p in dist.values())

    def test_full_capacity_dominates_at_low_lambda(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-5), stages=16
        )
        assert dist[14] == max(dist.values())
        assert dist[14] > 0.5

    def test_threshold_dominates_at_high_lambda(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=10),
            stages=16,
        )
        assert dist[10] == max(dist.values())
        assert dist[10] > 0.5

    def test_below_threshold_unlikely(self):
        """Eq. (3) neglects k < 9 as 'extremely unlikely'."""
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=10),
            stages=16,
        )
        assert sum(p for k, p in dist.items() if k < 9) < 0.02

    def test_p_eta_monotone_in_lambda(self):
        values = []
        for lam in (1e-5, 3e-5, 6e-5, 1e-4):
            dist = capacity_distribution(
                CapacityModelConfig(failure_rate_per_hour=lam, threshold=10),
                stages=12,
            )
            values.append(dist[10])
        assert values == sorted(values)

    def test_threshold_location_follows_eta(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=12),
            stages=16,
        )
        assert dist[12] == max(dist.values())

    def test_shorter_scheduled_period_lifts_full_capacity(self):
        slow = capacity_distribution(
            CapacityModelConfig(
                failure_rate_per_hour=5e-5, scheduled_period_hours=30000.0
            ),
            stages=12,
        )
        fast = capacity_distribution(
            CapacityModelConfig(
                failure_rate_per_hour=5e-5, scheduled_period_hours=10000.0
            ),
            stages=12,
        )
        assert fast[14] > slow[14]

    def test_exponential_timers_misplace_mass(self):
        """Without deterministic-timer support the distribution shifts
        visibly -- the reason the paper needed UltraSAN's deterministic
        activities."""
        config = CapacityModelConfig(failure_rate_per_hour=5e-5)
        deterministic = capacity_distribution(config, stages=24)
        exponential = capacity_distribution_exponential(config)
        tv = 0.5 * sum(
            abs(deterministic.get(k, 0.0) - exponential.get(k, 0.0))
            for k in set(deterministic) | set(exponential)
        )
        assert tv > 0.02
