"""Tests for repro.analytic.capacity (the Fig. 7 orbital-plane model)."""

import pytest

from repro.analytic.capacity import (
    CapacityModelConfig,
    assemble_capacity_topology,
    build_capacity_san,
    capacity_cache_stats,
    capacity_caches_disabled,
    capacity_distribution,
    capacity_distribution_exponential,
    capacity_solver_stats,
    capacity_stage_timings,
    clear_capacity_caches,
)
from repro.core.config import EvaluationParams
from repro.errors import ConfigurationError
from repro.san import generate


class TestConfig:
    def test_defaults_match_paper(self):
        config = CapacityModelConfig()
        assert config.full_capacity == 14
        assert config.in_orbit_spares == 2
        assert config.scheduled_period_hours == 30000.0

    def test_from_params(self):
        params = EvaluationParams(
            node_failure_rate_per_hour=3e-5, deployment_threshold=12
        )
        config = CapacityModelConfig.from_params(params)
        assert config.failure_rate_per_hour == 3e-5
        assert config.threshold == 12

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            CapacityModelConfig(threshold=0)
        with pytest.raises(ConfigurationError):
            CapacityModelConfig(threshold=15)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            CapacityModelConfig(failure_rate_per_hour=0.0)


class TestModelStructure:
    def test_state_space_is_small(self):
        model = build_capacity_san(CapacityModelConfig())
        space = generate(model)
        # active 0..14 x spares/pending structure stays tiny.
        assert 10 < len(space) < 60

    def test_tangible_markings_respect_invariants(self):
        """In-orbit spares only coexist with a full plane, and below the
        threshold the pending launches top the capacity back up."""
        config = CapacityModelConfig(threshold=10)
        model = build_capacity_san(config)
        space = generate(model)
        for marking in space.markings:
            view = model.marking_dict(marking)
            if view["spares"] > 0:
                assert view["active"] == config.full_capacity
            if view["active"] < config.threshold:
                assert view["active"] + view["pending"] == config.threshold

    def test_deterministic_timers_present(self):
        model = build_capacity_san(CapacityModelConfig())
        space = generate(model)
        names = {t.activity for t in space.general}
        assert names == {"scheduled_deployment", "replacement_arrival"}

    def test_exponential_variant_is_markovian(self):
        model = build_capacity_san(
            CapacityModelConfig(), exponential_timers=True
        )
        space = generate(model)
        assert space.is_markovian


class TestDistributionShape:
    """The qualitative Fig. 7 claims, as assertions."""

    def test_distribution_is_proper(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=5e-5), stages=16
        )
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-8)
        assert all(p >= -1e-12 for p in dist.values())

    def test_full_capacity_dominates_at_low_lambda(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-5), stages=16
        )
        assert dist[14] == max(dist.values())
        assert dist[14] > 0.5

    def test_threshold_dominates_at_high_lambda(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=10),
            stages=16,
        )
        assert dist[10] == max(dist.values())
        assert dist[10] > 0.5

    def test_below_threshold_unlikely(self):
        """Eq. (3) neglects k < 9 as 'extremely unlikely'."""
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=10),
            stages=16,
        )
        assert sum(p for k, p in dist.items() if k < 9) < 0.02

    def test_p_eta_monotone_in_lambda(self):
        values = []
        for lam in (1e-5, 3e-5, 6e-5, 1e-4):
            dist = capacity_distribution(
                CapacityModelConfig(failure_rate_per_hour=lam, threshold=10),
                stages=12,
            )
            values.append(dist[10])
        assert values == sorted(values)

    def test_threshold_location_follows_eta(self):
        dist = capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=12),
            stages=16,
        )
        assert dist[12] == max(dist.values())

    def test_shorter_scheduled_period_lifts_full_capacity(self):
        slow = capacity_distribution(
            CapacityModelConfig(
                failure_rate_per_hour=5e-5, scheduled_period_hours=30000.0
            ),
            stages=12,
        )
        fast = capacity_distribution(
            CapacityModelConfig(
                failure_rate_per_hour=5e-5, scheduled_period_hours=10000.0
            ),
            stages=12,
        )
        assert fast[14] > slow[14]

    def test_rerate_path_matches_full_regeneration(self):
        """The topology/rate-split acceptance contract: a fixed-topology
        rate sweep through the re-rate + warm-start path must match
        per-point full regeneration to 1e-12 on every P(k)."""
        lambdas = (2e-5, 4e-5, 6e-5, 8e-5)
        configs = [
            CapacityModelConfig(failure_rate_per_hour=lam, threshold=10)
            for lam in lambdas
        ]
        with capacity_caches_disabled():
            baseline = [
                capacity_distribution(config, stages=8) for config in configs
            ]
        clear_capacity_caches(reset_stats=True)
        rerated = [
            capacity_distribution(config, stages=8) for config in configs
        ]
        for baseline_row, rerated_row in zip(baseline, rerated):
            assert baseline_row.keys() == rerated_row.keys()
            for k in baseline_row:
                assert abs(baseline_row[k] - rerated_row[k]) <= 1e-12

    def test_rate_sweep_assembles_once(self):
        """Configs differing only in lambda share one assembled
        topology."""
        clear_capacity_caches(reset_stats=True)
        for lam in (2e-5, 5e-5, 9e-5):
            capacity_distribution(
                CapacityModelConfig(failure_rate_per_hour=lam, threshold=10),
                stages=8,
            )
        stats = capacity_cache_stats()["assemble"]
        assert stats.misses == 1
        assert stats.hits == 2

    def test_solver_stats_track_iterative_and_warm_starts(self):
        clear_capacity_caches(reset_stats=True)
        for lam in (2e-5, 5e-5, 9e-5):
            capacity_distribution(
                CapacityModelConfig(failure_rate_per_hour=lam, threshold=10),
                stages=8,
            )
        stats = capacity_solver_stats()
        assert stats["iterative"] == 3
        assert stats["warm_started"] == 2  # all but the cold first point
        assert stats["gmres_iterations"] > 0
        assert stats["structure_fallbacks"] == 0

    def test_stage_timings_cover_the_pipeline(self):
        clear_capacity_caches(reset_stats=True)
        capacity_distribution(
            CapacityModelConfig(failure_rate_per_hour=5e-5), stages=8
        )
        timings = capacity_stage_timings()
        assert set(timings) == {
            "assemble", "refine", "quotient", "rerate", "solve",
        }
        assert timings["assemble"] > 0.0
        assert timings["solve"] > 0.0
        # The counted path never touches the lumping stages.
        assert timings["refine"] == 0.0
        assert timings["quotient"] == 0.0

    def test_assemble_capacity_topology_is_rate_independent(self):
        """The public structure-phase entry point returns the identical
        cached object for rate-only config changes."""
        clear_capacity_caches(reset_stats=True)
        first = assemble_capacity_topology(
            CapacityModelConfig(failure_rate_per_hour=1e-5), stages=8
        )
        second = assemble_capacity_topology(
            CapacityModelConfig(failure_rate_per_hour=9e-5), stages=8
        )
        assert first is second
        distinct = assemble_capacity_topology(
            CapacityModelConfig(failure_rate_per_hour=1e-5, threshold=12),
            stages=8,
        )
        assert distinct is not first

    def test_exponential_timers_misplace_mass(self):
        """Without deterministic-timer support the distribution shifts
        visibly -- the reason the paper needed UltraSAN's deterministic
        activities."""
        config = CapacityModelConfig(failure_rate_per_hour=5e-5)
        deterministic = capacity_distribution(config, stages=24)
        exponential = capacity_distribution_exponential(config)
        tv = 0.5 * sum(
            abs(deterministic.get(k, 0.0) - exponential.get(k, 0.0))
            for k in set(deterministic) | set(exponential)
        )
        assert tv > 0.02


class TestDeploymentPolicyVariants:
    """The ``deployment_policy`` / ``repair_rate_per_hour`` structural
    axes: counted-vs-expanded agreement, zero-rate re-rates in place,
    and cache-key completeness (no aliasing across policies)."""

    def setup_method(self):
        clear_capacity_caches(reset_stats=True)

    SMALL = dict(full_capacity=5, in_orbit_spares=1, threshold=4)

    @pytest.mark.parametrize("policy", ["combined", "threshold", "scheduled"])
    @pytest.mark.parametrize("repair", [None, 0.0, 5e-4])
    def test_counted_matches_lumped_expanded(self, policy, repair):
        from repro.analytic.capacity import capacity_distribution_expanded

        config = CapacityModelConfig(
            failure_rate_per_hour=5e-5,
            deployment_policy=policy,
            repair_rate_per_hour=repair,
            **self.SMALL,
        )
        counted = capacity_distribution(config, stages=4)
        expanded = capacity_distribution_expanded(config, stages=4, lump=True)
        for k in set(counted) | set(expanded):
            assert expanded.get(k, 0.0) == pytest.approx(
                counted.get(k, 0.0), abs=1e-12
            ), f"policy={policy} repair={repair} k={k}"
        assert capacity_solver_stats()["structure_fallbacks"] == 0

    def test_zero_repair_rate_rerates_in_place(self):
        """Regression: repair *presence* is structural, its value is a
        rate -- a topology assembled at rate exactly 0.0 must re-rate to
        a positive rate (and back) without a structure fallback."""
        def config(rho):
            return CapacityModelConfig(
                failure_rate_per_hour=5e-5,
                repair_rate_per_hour=rho,
                **self.SMALL,
            )

        at_zero = capacity_distribution(config(0.0), stages=4)
        assert capacity_cache_stats()["assemble"].misses == 1
        positive = capacity_distribution(config(5e-4), stages=4)
        back = capacity_distribution(config(0.0), stages=4)
        # One topology served all three points; no rejection fallbacks.
        assert capacity_cache_stats()["assemble"].misses == 1
        assert capacity_solver_stats()["structure_fallbacks"] == 0
        assert positive != at_zero  # repair actually changes P(k)
        assert back == at_zero
        # And rate 0.0 behaves exactly like structurally-absent repair.
        absent = capacity_distribution(config(None), stages=4)
        for k in set(absent) | set(at_zero):
            assert at_zero.get(k, 0.0) == pytest.approx(
                absent.get(k, 0.0), abs=1e-12
            )

    def test_topology_key_separates_structural_axes(self):
        """Regression: policy kind and repair presence are part of the
        assemble-cache key -- configs differing only in those axes must
        occupy distinct entries (the old key aliased them onto one
        topology, poisoning every later re-rate)."""
        from repro.analytic.capacity import _ASSEMBLE_CACHE

        variants = [
            CapacityModelConfig(**self.SMALL),
            CapacityModelConfig(deployment_policy="threshold", **self.SMALL),
            CapacityModelConfig(deployment_policy="scheduled", **self.SMALL),
            CapacityModelConfig(repair_rate_per_hour=0.0, **self.SMALL),
        ]
        for config in variants:
            assemble_capacity_topology(config, stages=2)
        assert len(_ASSEMBLE_CACHE.keys()) == len(variants)
        # The policies genuinely differ in steady state (threshold-only
        # planes cannot restock spares; scheduled-only planes lack the
        # sustain trigger) -- aliasing would have hidden that.
        distributions = [
            tuple(
                sorted(capacity_distribution(config, stages=4).items())
            )
            for config in variants
        ]
        assert len(set(distributions)) == len(variants)

    def test_distribution_cache_key_includes_policy_fields(self):
        """Solve-cache completeness: spare count, deployment policy and
        eta each produce distinct distribution-cache entries."""
        from repro.analytic.capacity import _DISTRIBUTION_CACHE

        base = dict(failure_rate_per_hour=5e-5)
        configs = [
            CapacityModelConfig(**self.SMALL, **base),
            CapacityModelConfig(
                full_capacity=5, in_orbit_spares=2, threshold=4, **base
            ),
            CapacityModelConfig(
                full_capacity=5, in_orbit_spares=1, threshold=3, **base
            ),
            CapacityModelConfig(
                deployment_policy="threshold", **self.SMALL, **base
            ),
        ]
        for config in configs:
            capacity_distribution(config, stages=2)
        assert len(_DISTRIBUTION_CACHE.keys()) == len(configs)
