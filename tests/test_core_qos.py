"""Tests for repro.core.qos (the four-level QoS spectrum)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.qos import QOS_SPECTRUM, QoSDistribution, QoSLevel
from repro.errors import ConfigurationError


class TestQoSLevel:
    def test_ordering(self):
        assert QoSLevel.SIMULTANEOUS_DUAL > QoSLevel.SEQUENTIAL_DUAL
        assert QoSLevel.SEQUENTIAL_DUAL > QoSLevel.SINGLE
        assert QoSLevel.SINGLE > QoSLevel.MISSED

    def test_spectrum_is_descending(self):
        assert list(QOS_SPECTRUM) == [3, 2, 1, 0]

    def test_descriptions_exist(self):
        for level in QoSLevel:
            assert level.description

    def test_achievable_levels_match_table1(self):
        assert QoSLevel.achievable_levels(True) == (
            QoSLevel.SIMULTANEOUS_DUAL,
            QoSLevel.SINGLE,
        )
        assert QoSLevel.achievable_levels(False) == (
            QoSLevel.SEQUENTIAL_DUAL,
            QoSLevel.SINGLE,
            QoSLevel.MISSED,
        )


class TestQoSDistribution:
    def test_probabilities_accessible(self):
        dist = QoSDistribution({QoSLevel.SINGLE: 0.7, QoSLevel.MISSED: 0.3})
        assert dist[QoSLevel.SINGLE] == pytest.approx(0.7)
        assert dist[QoSLevel.SIMULTANEOUS_DUAL] == 0.0

    def test_at_least_is_survival_function(self):
        dist = QoSDistribution(
            {
                QoSLevel.SIMULTANEOUS_DUAL: 0.2,
                QoSLevel.SEQUENTIAL_DUAL: 0.3,
                QoSLevel.SINGLE: 0.4,
                QoSLevel.MISSED: 0.1,
            }
        )
        assert dist.at_least(QoSLevel.MISSED) == pytest.approx(1.0)
        assert dist.at_least(QoSLevel.SINGLE) == pytest.approx(0.9)
        assert dist.at_least(QoSLevel.SEQUENTIAL_DUAL) == pytest.approx(0.5)
        assert dist.at_least(QoSLevel.SIMULTANEOUS_DUAL) == pytest.approx(0.2)

    def test_expected_level(self):
        dist = QoSDistribution({QoSLevel.SIMULTANEOUS_DUAL: 0.5, QoSLevel.SINGLE: 0.5})
        assert dist.expected_level() == pytest.approx(2.0)

    def test_degenerate(self):
        dist = QoSDistribution.degenerate(QoSLevel.SINGLE)
        assert dist[QoSLevel.SINGLE] == 1.0
        assert dist.at_least(QoSLevel.SEQUENTIAL_DUAL) == 0.0

    def test_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            QoSDistribution({QoSLevel.SINGLE: 0.5})

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            QoSDistribution({QoSLevel.SINGLE: 1.2, QoSLevel.MISSED: -0.2})

    def test_mixture_weighted_average(self):
        a = QoSDistribution.degenerate(QoSLevel.SINGLE)
        b = QoSDistribution.degenerate(QoSLevel.MISSED)
        mix = QoSDistribution.mixture([(0.25, a), (0.75, b)])
        assert mix[QoSLevel.SINGLE] == pytest.approx(0.25)
        assert mix[QoSLevel.MISSED] == pytest.approx(0.75)

    def test_mixture_renormalises_truncated_weights(self):
        a = QoSDistribution.degenerate(QoSLevel.SINGLE)
        mix = QoSDistribution.mixture([(0.999, a)], tolerance=0.01)
        assert mix[QoSLevel.SINGLE] == pytest.approx(1.0)

    def test_mixture_rejects_far_from_one(self):
        a = QoSDistribution.degenerate(QoSLevel.SINGLE)
        with pytest.raises(ConfigurationError):
            QoSDistribution.mixture([(0.5, a)], tolerance=0.01)

    def test_equality_and_isclose(self):
        a = QoSDistribution({QoSLevel.SINGLE: 0.6, QoSLevel.MISSED: 0.4})
        b = QoSDistribution({QoSLevel.SINGLE: 0.6, QoSLevel.MISSED: 0.4})
        assert a == b
        assert a.isclose(b)

    def test_as_dict_is_copy(self):
        dist = QoSDistribution.degenerate(QoSLevel.SINGLE)
        d = dist.as_dict()
        d[QoSLevel.SINGLE] = 0.0
        assert dist[QoSLevel.SINGLE] == 1.0


@given(
    weights=st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4
    )
)
def test_property_normalised_distribution_valid(weights):
    total = sum(weights)
    dist = QoSDistribution(
        {level: w / total for level, w in zip(QoSLevel, weights)}
    )
    # Survival function is monotone decreasing in the level.
    values = [dist.at_least(level) for level in QoSLevel]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
    assert values[0] == pytest.approx(1.0)
