"""Golden-corpus smoke: the checked-in corpus regenerates
byte-identically from its recorded metadata, every cell passes its
declared checks, and the scored run matches the checked-in scorecard
behaviourally (timings excluded)."""

import os

import pytest

from repro.experiments.corpus_exp import GOLDEN_CELLS, GOLDEN_DIR, GOLDEN_SEED
from repro.scenarios import (
    diff_scorecards,
    dump_case,
    generate_from_metadata,
    load_scorecard,
    read_corpus,
    run_corpus,
    score_run,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "corpus")


@pytest.fixture(scope="module")
def golden_corpus():
    return read_corpus(GOLDEN)


class TestGoldenCorpusPin:
    def test_location_matches_cli_default(self):
        assert os.path.abspath(GOLDEN) == os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, GOLDEN_DIR)
        )

    def test_recorded_provenance(self, golden_corpus):
        metadata, cases = golden_corpus
        assert metadata.seed == GOLDEN_SEED
        assert metadata.n_cells == GOLDEN_CELLS == len(cases)
        assert metadata.git_describe is None

    def test_regeneration_is_byte_identical(self, golden_corpus):
        metadata, cases = golden_corpus
        _, regenerated = generate_from_metadata(metadata)
        regenerated = sorted(regenerated, key=lambda case: case.case_id)
        assert [dump_case(c) for c in regenerated] == [
            dump_case(c) for c in cases
        ]


@pytest.mark.corpus
class TestGoldenCorpusConformance:
    @pytest.fixture(scope="class")
    def scored(self, golden_corpus):
        metadata, cases = golden_corpus
        result = run_corpus(cases)
        return result, score_run(result, metadata=metadata)

    def test_every_cell_passes(self, scored):
        result, scorecard = scored
        failing = [
            cell.case_id for cell in result.cells if cell.status != "pass"
        ]
        assert failing == []
        assert scorecard["summary"]["all_passed"] is True

    def test_zero_unexplained_fallbacks(self, scored):
        _, scorecard = scored
        assert scorecard["summary"]["unexplained_fallbacks"] == 0

    def test_matches_checked_in_scorecard(self, scored):
        _, scorecard = scored
        golden = load_scorecard(os.path.join(GOLDEN, "scorecard.json"))
        assert diff_scorecards(golden, scorecard) == []
