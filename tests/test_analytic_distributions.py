"""Tests for repro.analytic.distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    Uniform,
    Weibull,
)
from repro.errors import ConfigurationError

ALL_DISTRIBUTIONS = [
    Exponential(0.5),
    Deterministic(3.0),
    Erlang(4, 2.0),
    Uniform(1.0, 4.0),
    Weibull(1.5, 2.0),
    HyperExponential([1.0, 0.1], [0.3, 0.7]),
]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_cdf_limits(self, dist):
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(1e9) == pytest.approx(1.0)

    def test_cdf_monotone(self, dist):
        xs = np.linspace(0.0, 20.0, 200)
        values = [dist.cdf(float(x)) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_survival_complements_cdf(self, dist):
        for x in (0.5, 1.0, 2.5, 7.0):
            assert dist.survival(x) == pytest.approx(1.0 - dist.cdf(x), abs=1e-9)

    def test_sample_mean_close_to_mean(self, dist):
        rng = np.random.default_rng(42)
        samples = [dist.sample(rng) for _ in range(4000)]
        tolerance = 5.0 * math.sqrt(max(dist.variance(), 1e-12) / len(samples)) + 1e-9
        assert np.mean(samples) == pytest.approx(dist.mean(), abs=max(tolerance, 0.05))

    def test_samples_nonnegative(self, dist):
        rng = np.random.default_rng(7)
        assert all(dist.sample(rng) >= 0.0 for _ in range(200))

    def test_cdf_matches_empirical(self, dist):
        rng = np.random.default_rng(11)
        samples = np.array([dist.sample(rng) for _ in range(4000)])
        x = float(np.median(samples))
        empirical = float(np.mean(samples <= x))
        assert dist.cdf(x) == pytest.approx(empirical, abs=0.04)


class TestExponential:
    def test_mean_and_variance(self):
        dist = Exponential(4.0)
        assert dist.mean() == pytest.approx(0.25)
        assert dist.variance() == pytest.approx(0.0625)

    def test_memoryless_survival(self):
        dist = Exponential(0.7)
        assert dist.survival(3.0) == pytest.approx(math.exp(-2.1))

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            Exponential(-1e-9)

    def test_zero_rate_never_fires(self):
        # The degenerate limit that design sweeps hit (a rate swept to
        # exactly 0.0): the event never happens, but the distribution is
        # still a valid *rate* value so assembled SANs re-rate in place.
        dist = Exponential(0.0)
        rng = np.random.default_rng(3)
        assert dist.cdf(1e12) == 0.0
        assert dist.survival(1e12) == 1.0
        assert dist.pdf(5.0) == 0.0
        assert dist.mean() == math.inf
        assert dist.variance() == math.inf
        assert dist.sample(rng) == math.inf
        assert np.all(np.isinf(dist.sample_many(rng, 4)))

    def test_vectorised_sampling(self):
        rng = np.random.default_rng(1)
        samples = Exponential(1.0).sample_many(rng, 1000)
        assert samples.shape == (1000,)


class TestDeterministic:
    def test_step_cdf(self):
        dist = Deterministic(2.0)
        assert dist.cdf(1.999) == 0.0
        assert dist.cdf(2.0) == 1.0

    def test_zero_variance(self):
        assert Deterministic(5.0).variance() == 0.0

    def test_sampling_is_constant(self):
        rng = np.random.default_rng(0)
        assert Deterministic(3.5).sample(rng) == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Deterministic(-1.0)


class TestErlang:
    def test_approximating_matches_mean(self):
        dist = Erlang.approximating(10.0, stages=16)
        assert dist.mean() == pytest.approx(10.0)
        assert dist.variance() == pytest.approx(100.0 / 16)

    def test_shape_one_is_exponential(self):
        erlang = Erlang(1, 0.5)
        expo = Exponential(0.5)
        for x in (0.5, 1.0, 3.0):
            assert erlang.cdf(x) == pytest.approx(expo.cdf(x))

    def test_cdf_converges_to_deterministic(self):
        # High stage counts concentrate around the mean.
        dist = Erlang.approximating(10.0, stages=400)
        assert dist.cdf(9.0) < 0.05
        assert dist.cdf(11.0) > 0.95

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            Erlang(0, 1.0)


class TestUniform:
    def test_bounds(self):
        dist = Uniform(2.0, 6.0)
        assert dist.cdf(2.0) == 0.0
        assert dist.cdf(4.0) == pytest.approx(0.5)
        assert dist.cdf(6.0) == 1.0

    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            Uniform(3.0, 3.0)


class TestHyperExponential:
    def test_mean_is_weighted(self):
        dist = HyperExponential([1.0, 0.1], [0.5, 0.5])
        assert dist.mean() == pytest.approx(0.5 * 1.0 + 0.5 * 10.0)

    def test_variance_exceeds_exponential(self):
        """Hyperexponential CV^2 > 1: more variable than exponential."""
        dist = HyperExponential([1.0, 0.1], [0.5, 0.5])
        assert dist.variance() > dist.mean() ** 2

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            HyperExponential([1.0, 2.0], [0.5, 0.6])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            HyperExponential([1.0], [0.5, 0.5])


@settings(max_examples=50)
@given(rate=st.floats(min_value=0.01, max_value=100.0), x=st.floats(min_value=0.0, max_value=50.0))
def test_property_exponential_cdf_in_unit_interval(rate, x):
    dist = Exponential(rate)
    assert 0.0 <= dist.cdf(x) <= 1.0


@settings(max_examples=50)
@given(
    shape=st.integers(min_value=1, max_value=30),
    rate=st.floats(min_value=0.05, max_value=10.0),
)
def test_property_erlang_mean_variance(shape, rate):
    dist = Erlang(shape, rate)
    assert dist.mean() == pytest.approx(shape / rate)
    assert dist.variance() == pytest.approx(shape / rate**2)
