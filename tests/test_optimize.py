"""Tests for :mod:`repro.optimize` (spare-policy design-space sweep).

Covers the design-space builders (determinism, topology grouping,
policy validation), the cell evaluator and its Eq. (3) composition,
the Pareto/recommendation/scorecard layer, the golden-pinned smoke
grid, and the :class:`GroundSparePolicy` edge cases -- each edge case
cross-checked analytic-vs-Monte-Carlo with Wilson containment on iid
capacity draws (``sample_capacity_states``).
"""

import json
import pathlib

import pytest

from repro.analytic.capacity import (
    capacity_distribution_expanded,
    clear_capacity_caches,
)
from repro.errors import ConfigurationError
from repro.faults.stats import wilson_interval
from repro.optimize import (
    DesignPoint,
    GroundSparePolicy,
    classify_fallbacks,
    composed_alert_qos,
    design_grid,
    evaluate_cell,
    grid_topology_count,
    minimum_capacity,
    pareto_frontier,
    recommend_policy,
    smoke_grid,
    spare_cost,
)
from repro.simulation.plane_process import sample_capacity_states

_GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "optimize_golden.json"
)


class TestGroundSparePolicy:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="policy kind"):
            GroundSparePolicy(kind="adhoc")

    def test_rejects_negative_spares(self):
        with pytest.raises(ConfigurationError, match="in_orbit_spares"):
            GroundSparePolicy(in_orbit_spares=-1)

    def test_to_config_maps_every_field(self):
        policy = GroundSparePolicy(
            kind="threshold",
            in_orbit_spares=3,
            threshold=11,
            scheduled_period_hours=5000.0,
            replacement_latency_hours=72.0,
            repair_rate_per_hour=1e-4,
        )
        config = policy.to_config(
            full_capacity=14, failure_rate_per_hour=2e-5
        )
        assert config.deployment_policy == "threshold"
        assert config.in_orbit_spares == 3
        assert config.threshold == 11
        assert config.scheduled_period_hours == 5000.0
        assert config.replacement_latency_hours == 72.0
        assert config.repair_rate_per_hour == 1e-4
        assert config.failure_rate_per_hour == 2e-5

    def test_equal_policies_compare_equal(self):
        assert GroundSparePolicy() == GroundSparePolicy()
        assert GroundSparePolicy(repair_rate_per_hour=0.0) != (
            GroundSparePolicy(repair_rate_per_hour=None)
        )


class TestDesignGrid:
    def test_default_grid_size_and_topologies(self):
        cells = design_grid()
        assert len(cells) == 1134
        assert grid_topology_count(cells) == 42

    def test_grid_is_deterministic_and_topology_grouped(self):
        a = design_grid()
        b = design_grid()
        assert a == b
        # Topology-grouped: each group's cells are contiguous, so the
        # number of group *changes* equals the number of groups - 1.
        groups = [cell.topology_group() for cell in a]
        changes = sum(
            1 for i in range(1, len(groups)) if groups[i] != groups[i - 1]
        )
        assert changes == grid_topology_count(a) - 1

    def test_smoke_grid_pins_none_vs_zero_repair(self):
        cells = smoke_grid()
        assert len(cells) == 24
        repair_axis = {
            cell.policy.repair_rate_per_hour for cell in cells
        }
        assert repair_axis == {None, 0.0}

    def test_minimum_capacity_scales_reference_ratio(self):
        assert minimum_capacity(14) == 10
        assert minimum_capacity(28) == 20
        assert minimum_capacity(1) == 1
        assert minimum_capacity(7) == 5  # ceil(5.0)

    def test_plane_scale_validated(self):
        with pytest.raises(ConfigurationError, match="plane_scale"):
            DesignPoint(
                plane_scale=0,
                full_capacity=14,
                failure_rate_per_hour=1e-5,
                policy=GroundSparePolicy(),
            )


class TestComposedQoS:
    def test_zero_capacity_contributes_nothing(self):
        assert composed_alert_qos({0: 1.0}) == 0.0

    def test_matches_manual_mixture(self):
        from repro.analytic.qos_model import conditional_distribution
        from repro.core.config import EvaluationParams
        from repro.core.qos import QoSLevel
        from repro.core.schemes import Scheme

        params = EvaluationParams()
        pk = {0: 0.1, 10: 0.5, 14: 0.4}
        expected = sum(
            p
            * conditional_distribution(
                params.constellation.plane_geometry(k), params, Scheme.OAQ
            ).at_least(QoSLevel.SEQUENTIAL_DUAL)
            for k, p in pk.items()
            if k >= 1
        )
        assert composed_alert_qos(pk) == pytest.approx(expected, abs=1e-15)

    def test_saturates_beyond_pairwise_domain(self):
        # The closed forms are only valid for Tc * k <= 2 * theta
        # (k <= 20 for the reference geometry); larger capacities are
        # evaluated at the bound instead of crashing or extrapolating.
        at_bound = composed_alert_qos({20: 1.0})
        beyond = composed_alert_qos({28: 1.0})
        assert beyond == pytest.approx(at_bound, abs=1e-15)


class TestCostModel:
    def point(self, **kwargs):
        policy = GroundSparePolicy(**kwargs)
        return DesignPoint(
            plane_scale=1,
            full_capacity=14,
            failure_rate_per_hour=1e-4,
            policy=policy,
        )

    def test_threshold_policy_has_no_campaign_term(self):
        cost = spare_cost(self.point(kind="threshold"), 14.0)
        # spares + lambda * 8760 * E[K]; no campaign term.
        assert cost == pytest.approx(2 + 1e-4 * 8760 * 14.0)

    def test_campaign_term_for_scheduled_policies(self):
        base = spare_cost(
            self.point(kind="combined", scheduled_period_hours=8760.0), 14.0
        )
        slower = spare_cost(
            self.point(kind="combined", scheduled_period_hours=17520.0), 14.0
        )
        assert base - slower == pytest.approx(1.0)  # one campaign @ weight 2

    def test_repair_offsets_launch_consumption(self):
        without = spare_cost(self.point(kind="threshold"), 13.0)
        with_repair = spare_cost(
            self.point(kind="threshold", repair_rate_per_hour=1e-3), 13.0
        )
        assert with_repair < without
        # Consumption never goes negative however strong the repair.
        floor = spare_cost(
            self.point(kind="threshold", repair_rate_per_hour=10.0), 13.0
        )
        assert floor == pytest.approx(2.0)


class TestParetoLayer:
    ROWS = [
        {"cost": 1.0, "availability": 0.90, "qos_alert": 0.5},
        {"cost": 2.0, "availability": 0.99, "qos_alert": 0.6},
        {"cost": 3.0, "availability": 0.95, "qos_alert": 0.55},  # dominated
        {"cost": 0.5, "availability": 0.80, "qos_alert": 0.7},
    ]

    def test_frontier_drops_dominated_rows(self):
        frontier = pareto_frontier(self.ROWS)
        costs = [row["cost"] for row in frontier]
        assert costs == [0.5, 1.0, 2.0]

    def test_frontier_keeps_objective_ties(self):
        twin = [dict(self.ROWS[0]), dict(self.ROWS[0])]
        assert len(pareto_frontier(twin)) == 2

    def test_recommendation_picks_cheapest_feasible(self):
        rec = recommend_policy(
            self.ROWS, availability_target=0.89, qos_target=0.45
        )
        assert rec["constraints_met"] is True
        assert rec["cell"]["cost"] == 1.0

    def test_recommendation_flags_unmet_constraints(self):
        rec = recommend_policy(
            self.ROWS, availability_target=0.999999, qos_target=0.9
        )
        assert rec["constraints_met"] is False
        assert rec["cell"]["availability"] == 0.99  # least-bad cell
        assert recommend_policy([])["cell"] is None

    def test_classify_fallbacks_contract(self):
        rows = [
            {"structure_fallbacks": 0, "solver_fallbacks": 0},
            {"structure_fallbacks": 0, "solver_fallbacks": 2},
            {"structure_fallbacks": 1, "solver_fallbacks": 0},
        ]
        scorecard = classify_fallbacks(rows)
        assert scorecard["cells"] == 3
        assert scorecard["clean"] == 1
        assert [e["cell"] for e in scorecard["explained"]] == [1]
        assert [e["cell"] for e in scorecard["unexplained"]] == [2]


class TestGoldenSmokeGrid:
    """The pinned smoke grid: 24 cells crossing every structural axis,
    solved on the quotient with zero unexplained fallbacks.  Regenerate
    with the snippet in the golden file's sibling docstring (or rerun
    the generation block in this repo's PR history) after intentional
    behaviour changes."""

    def setup_method(self):
        clear_capacity_caches(reset_stats=True)

    def test_smoke_grid_matches_golden(self):
        with open(_GOLDEN_PATH) as fh:
            golden = json.load(fh)
        cells = smoke_grid()
        assert len(cells) == golden["cells"]
        rows = [evaluate_cell(c, stages=golden["stages"]) for c in cells]
        scorecard = classify_fallbacks(rows)
        assert scorecard["unexplained"] == []
        assert len(pareto_frontier(rows)) == golden["frontier_size"]
        assert (
            recommend_policy(rows)["constraints_met"]
            is golden["recommendation_constraints_met"]
        )
        for row, pinned in zip(rows, golden["rows"]):
            for key, value in pinned.items():
                if isinstance(value, float):
                    assert row[key] == pytest.approx(
                        value, abs=1e-9
                    ), f"{key} drifted in {pinned}"
                else:
                    assert row[key] == value, f"{key} drifted in {pinned}"


def _containment(config, *, k_floor, samples=240, seed=20267):
    """Analytic P(K >= k_floor) must land in the MC Wilson interval."""
    analytic = capacity_distribution_expanded(config, stages=8, lump=True)
    p_analytic = sum(p for k, p in analytic.items() if k >= k_floor)
    # Warmup past several replacement cycles; window = one scheduled
    # period so the uniform draw averages the deterministic cycle.
    values = sample_capacity_states(
        config,
        samples=samples,
        warmup_hours=3 * config.scheduled_period_hours,
        window_hours=config.scheduled_period_hours,
        seed=seed,
    )
    successes = sum(1 for v in values if v >= k_floor)
    interval = wilson_interval(successes, samples, confidence=0.999)
    assert interval.low <= p_analytic <= interval.high, (
        f"analytic P(K>={k_floor})={p_analytic:.4f} outside Wilson "
        f"[{interval.low:.4f}, {interval.high:.4f}] "
        f"({successes}/{samples} MC successes)"
    )


@pytest.mark.slow
class TestPolicyEdgeCases:
    """Satellite: GroundSparePolicy edge cases, analytic vs MC."""

    def setup_method(self):
        clear_capacity_caches(reset_stats=True)

    def test_zero_in_orbit_spares(self):
        config = GroundSparePolicy(
            kind="combined", in_orbit_spares=0, threshold=5,
            scheduled_period_hours=8760.0,
        ).to_config(full_capacity=6, failure_rate_per_hour=2e-4)
        _containment(config, k_floor=5)

    def test_threshold_at_capacity_boundary(self):
        # eta == full_capacity: any failure leaves active < eta, so the
        # trigger deploys immediately -- the most aggressive threshold.
        config = GroundSparePolicy(
            kind="threshold", in_orbit_spares=2, threshold=6,
        ).to_config(full_capacity=6, failure_rate_per_hour=2e-4)
        _containment(config, k_floor=6)

    def test_scheduled_period_shorter_than_launch_delay(self):
        # phi < replacement latency: restores outpace in-flight
        # replacements, so arrive-or-discard markings (arrival at a
        # fully-healthy plane) are actually visited.
        config = GroundSparePolicy(
            kind="combined", in_orbit_spares=1, threshold=5,
            scheduled_period_hours=100.0,
            replacement_latency_hours=168.0,
            repair_rate_per_hour=1e-3,
        ).to_config(full_capacity=6, failure_rate_per_hour=2e-4)
        _containment(config, k_floor=5)
