"""Tests for :mod:`repro.simulation.batch` -- the batched Monte-Carlo
replication engine.

The load-bearing contract: for any seed, ``ScenarioTemplate(...)
.replicate(seed).run()`` is **bit-identical** to building a fresh
``CenterlineScenario(..., seed=seed)`` and running it, in both strict
and lazy event-scheduling modes, across all four protocol branches
(overlap/underlap x OAQ/BAQ).  Everything downstream (the faults
campaign golden, the protocol experiment, the batched QoS sampler's
statistical pins) rests on that equivalence.
"""

import numpy as np
import pytest

from repro.core.config import EvaluationParams
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.faults.stats import wilson_interval
from repro.protocol.runner import CenterlineScenario
from repro.simulation.batch import (
    ScenarioTemplate,
    batch_stage_timings,
    reset_batch_stage_timings,
)

PARAMS = EvaluationParams(signal_termination_rate=0.2)
#: k=9 underlaps (coverage gap; coordination chains form), k=12
#: overlaps (simultaneous double coverage) -- the two physical regimes.
CAPACITIES = (9, 12)
SEEDS = range(120)


def _outcome_key(outcome):
    official = outcome.official_alert
    return (
        int(outcome.achieved_level),
        outcome.detection_time,
        outcome.duplicates,
        len(outcome.all_alerts),
        None if official is None else (official.sent_at, official.sent_by),
        outcome.signal.duration,
    )


class TestTemplateBitIdentity:
    @pytest.mark.parametrize("capacity", CAPACITIES)
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    @pytest.mark.parametrize("lazy", [True, False])
    def test_replicate_matches_fresh_scenario(self, capacity, scheme, lazy):
        geometry = PARAMS.constellation.plane_geometry(capacity)
        template = ScenarioTemplate(
            geometry, PARAMS, scheme=scheme, lazy_events=lazy
        )
        for seed in SEEDS:
            legacy = CenterlineScenario(
                geometry, PARAMS, scheme=scheme, seed=seed
            ).run()
            replayed = template.replicate(seed).run()
            assert _outcome_key(replayed) == _outcome_key(legacy), (
                f"k={capacity} {scheme.name} lazy={lazy} seed={seed}"
            )

    def test_explicit_signal_overrides_draws(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        outcome = template.replicate(
            3, onset_position=1.0, signal_duration=4.0
        ).run()
        legacy = CenterlineScenario(
            geometry,
            PARAMS,
            scheme=Scheme.OAQ,
            onset_position=1.0,
            signal_duration=4.0,
            seed=3,
        ).run()
        assert _outcome_key(outcome) == _outcome_key(legacy)

    def test_fail_silent_matches_fresh_scenario(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        for seed in range(40):
            legacy = CenterlineScenario(
                geometry,
                PARAMS,
                scheme=Scheme.OAQ,
                fail_silent={"S2": 0.0},
                seed=seed,
            ).run()
            replayed = template.replicate(seed, fail_silent={"S2": 0.0}).run()
            assert _outcome_key(replayed) == _outcome_key(legacy)


class TestReplicationLifecycle:
    def test_stale_replication_rejected(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        first = template.replicate(0)
        template.replicate(1)
        with pytest.raises(ConfigurationError):
            first.run()

    def test_unknown_fail_silent_name_rejected(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        with pytest.raises(ConfigurationError):
            template.replicate(0, fail_silent={"S99": 0.0})

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_run_level_matches_full_run(self, capacity):
        """The early-stopping ``run_level`` fast path reports the same
        (level, detected) pair as the full outcome."""
        geometry = PARAMS.constellation.plane_geometry(capacity)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        for seed in range(80):
            level, detected = template.replicate(seed).run_level()
            outcome = template.replicate(seed).run()
            assert level == int(outcome.achieved_level)
            assert detected == (outcome.detection_time is not None)


class TestSampleLevels:
    def test_rejects_mismatched_shapes(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            template.sample_levels(rng, np.zeros(3), np.ones(4))

    def test_rejects_out_of_range_onsets(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            template.sample_levels(
                rng, np.array([geometry.l1 + 1.0]), np.ones(1)
            )

    def test_deterministic_under_fixed_seed(self):
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        onsets = np.random.default_rng(1).uniform(0.0, geometry.l1, 200)
        durations = np.random.default_rng(2).exponential(1 / PARAMS.mu, 200)
        a_levels, a_detected = template.sample_levels(
            np.random.default_rng(7), onsets, durations
        )
        b_levels, b_detected = template.sample_levels(
            np.random.default_rng(7), onsets, durations
        )
        assert np.array_equal(a_levels, a_levels.astype(a_levels.dtype))
        assert np.array_equal(a_levels, b_levels)
        assert np.array_equal(a_detected, b_detected)

    def test_detection_consistent_with_levels(self):
        """A run that achieved any level > 0 necessarily detected the
        signal; level 0 (missed) means no detection."""
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        rng = np.random.default_rng(11)
        onsets = rng.uniform(0.0, geometry.l1, 400)
        durations = rng.exponential(1 / PARAMS.mu, 400)
        levels, detected = template.sample_levels(rng, onsets, durations)
        assert np.all(detected[levels > 0])
        assert not np.any(detected[levels == 0])

    @pytest.mark.parametrize("capacity", CAPACITIES)
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_statistically_consistent_with_legacy_path(
        self, capacity, scheme
    ):
        """``sample_levels`` shares one generator across the batch, so
        it is not draw-order compatible with per-seed scenarios -- the
        contract is statistical: every legacy level frequency must fall
        inside the batch estimate's 99.9% Wilson interval."""
        geometry = PARAMS.constellation.plane_geometry(capacity)
        template = ScenarioTemplate(geometry, PARAMS, scheme=scheme)
        samples = 1500
        rng = np.random.default_rng(42)
        onsets = rng.uniform(0.0, geometry.l1, samples)
        durations = rng.exponential(1 / PARAMS.mu, samples)
        levels, _ = template.sample_levels(rng, onsets, durations)

        legacy_counts = np.zeros(4, dtype=int)
        for seed in range(600):
            outcome = CenterlineScenario(
                geometry, PARAMS, scheme=scheme, seed=seed
            ).run()
            legacy_counts[int(outcome.achieved_level)] += 1
        for level in range(4):
            batch_count = int(np.count_nonzero(levels == level))
            interval = wilson_interval(batch_count, samples, confidence=0.999)
            legacy_rate = legacy_counts[level] / 600
            slack = 0.045  # finite legacy sample's own noise
            assert interval.low - slack <= legacy_rate <= interval.high + slack


class TestStageTimings:
    def test_stages_accumulate_and_reset(self):
        reset_batch_stage_timings()
        geometry = PARAMS.constellation.plane_geometry(9)
        template = ScenarioTemplate(geometry, PARAMS, scheme=Scheme.OAQ)
        template.replicate(0).run()
        rng = np.random.default_rng(0)
        template.sample_levels(
            rng,
            rng.uniform(0.0, geometry.l1, 10),
            rng.exponential(1 / PARAMS.mu, 10),
        )
        template.sample_levels(
            rng,
            rng.uniform(0.0, geometry.l1, 10),
            rng.exponential(1 / PARAMS.mu, 10),
            engine="vector",
        )
        timings = batch_stage_timings()
        assert set(timings) == {
            "template",
            "replicate",
            "run",
            "vector",
            "vector_fallback",
        }
        assert all(
            timings[stage] > 0.0
            for stage in ("template", "replicate", "run", "vector")
        )
        assert timings["vector_fallback"] >= 0.0
        reset_batch_stage_timings()
        assert all(
            value == 0.0 for value in batch_stage_timings().values()
        )
