"""Tests for the affinity-sharded campaign orchestrator: chunk
planning, the checkpoint journal, byte-identical merges at any worker
count, crash/resume, worker-loss recovery, retry, and the engine/
experiment integrations."""

import json
import os
import pickle

import pytest

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_distribution,
    clear_capacity_caches,
)
from repro.campaign import (
    CampaignJournal,
    CampaignRunner,
    grid_fingerprint,
    load_journal,
    plan_chunks,
)
from repro.errors import CampaignError, ConfigurationError
from repro.experiments.engine import SweepRunner


# ----------------------------------------------------------------------
# Row functions (top level: the pool path pickles them by reference)
# ----------------------------------------------------------------------
def _square_row(point):
    return {"x": point["x"], "y": point["x"] ** 2}


def _failing_row(point):
    if point["x"] == 2:
        raise ValueError("deterministic boom")
    return {"x": point["x"]}


def _raise_once_row(point):
    """Fails the first time the flag file is absent, succeeds after."""
    flag = point["flag"]
    if point["x"] == 1 and not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("raised")
        raise RuntimeError("transient")
    return {"x": point["x"]}


def _kill_once_row(point):
    """Hard-kills the worker process (no exception, no cleanup) the
    first time -- simulates OOM-kill / segfault worker loss."""
    flag = point["flag"]
    if point["x"] == 1 and not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("killed")
        os._exit(1)
    return {"x": point["x"]}


def _solving_row(point):
    config = CapacityModelConfig(
        failure_rate_per_hour=point["lam"], threshold=10
    )
    distribution = capacity_distribution(config, stages=4)
    return {"lam": point["lam"], "top": max(distribution.values())}


def _group_of(point):
    return point["x"] % 3


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_affinity_groups_by_key_in_first_occurrence_order(self):
        points = [{"x": i} for i in range(10)]
        chunks = plan_chunks(points, affinity=_group_of)
        assert [c.affinity for c in chunks] == ["0", "1", "2"]
        assert chunks[0].indices == (0, 3, 6, 9)
        assert chunks[1].indices == (1, 4, 7)
        assert chunks[2].indices == (2, 5, 8)
        # Grid order inside every chunk.
        for chunk in chunks:
            assert list(chunk.indices) == sorted(chunk.indices)
            assert [p["x"] for p in chunk.points] == list(chunk.indices)

    def test_interleaved_groups_still_land_in_one_chunk(self):
        """Grouping is by key equality over the whole grid, not
        adjacency -- the property that rescues interleaved grids."""
        points = [{"x": x} for x in (0, 5, 0, 5, 0)]
        chunks = plan_chunks(points, affinity=lambda p: p["x"])
        assert len(chunks) == 2
        assert chunks[0].indices == (0, 2, 4)
        assert chunks[1].indices == (1, 3)

    def test_no_affinity_cuts_contiguous_blocks(self):
        points = [{"x": i} for i in range(7)]
        chunks = plan_chunks(points, max_chunk_size=3)
        assert [c.indices for c in chunks] == [(0, 1, 2), (3, 4, 5), (6,)]
        assert [c.affinity for c in chunks] == ["block-0", "block-1", "block-2"]

    def test_max_chunk_size_splits_oversized_groups(self):
        points = [{"x": 0}] * 5
        chunks = plan_chunks(
            points, affinity=lambda p: "g", max_chunk_size=2
        )
        assert [c.affinity for c in chunks] == ["g#0", "g#1", "g#2"]
        assert [c.indices for c in chunks] == [(0, 1), (2, 3), (4,)]

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            plan_chunks([{"x": 1}], max_chunk_size=0)

    def test_chunk_seeds_are_deterministic(self):
        points = [{"x": i} for i in range(4)]
        first = plan_chunks(points, affinity=_group_of, seed=99)
        second = plan_chunks(points, affinity=_group_of, seed=99)
        assert [c.seed for c in first] == [c.seed for c in second]
        assert all(c.seed is not None for c in first)
        different = plan_chunks(points, affinity=_group_of, seed=100)
        assert [c.seed for c in first] != [c.seed for c in different]

    def test_fingerprint_pins_points_and_plan(self):
        points = [{"x": i} for i in range(6)]
        chunks = plan_chunks(points, affinity=_group_of)
        assert grid_fingerprint(points, chunks) == grid_fingerprint(
            points, plan_chunks(points, affinity=_group_of)
        )
        other_points = [{"x": i} for i in range(5)]
        assert grid_fingerprint(points, chunks) != grid_fingerprint(
            other_points, plan_chunks(other_points, affinity=_group_of)
        )
        other_plan = plan_chunks(points, max_chunk_size=2)
        assert grid_fingerprint(points, chunks) != grid_fingerprint(
            points, other_plan
        )


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        points = [{"x": i} for i in range(4)]
        chunks = plan_chunks(points, affinity=_group_of)
        fingerprint = grid_fingerprint(points, chunks)
        journal = CampaignJournal(path)
        assert journal.open(fingerprint, chunks) == {}
        payload = pickle.dumps([{"x": 0}])
        journal.lease(0, 1)
        journal.complete(0, payload, seconds=0.5, source="executed")
        journal.close()
        header, completed = load_journal(path)
        assert header["fingerprint"] == fingerprint
        assert set(completed) == {0}
        digest, stored = completed[0]
        assert stored == payload
        # Reopening with the same fingerprint resumes chunk 0.
        resumed = CampaignJournal(path).open(fingerprint, chunks)
        assert set(resumed) == {0}

    def test_fingerprint_mismatch_raises_with_hint(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        points = [{"x": i} for i in range(4)]
        chunks = plan_chunks(points, affinity=_group_of)
        CampaignJournal(path).open(grid_fingerprint(points, chunks), chunks)
        other = [{"x": i} for i in range(3)]
        other_chunks = plan_chunks(other, affinity=_group_of)
        with pytest.raises(ConfigurationError, match="different grid"):
            CampaignJournal(path).open(
                grid_fingerprint(other, other_chunks), other_chunks
            )

    def test_truncated_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        points = [{"x": i} for i in range(2)]
        chunks = plan_chunks(points)
        fingerprint = grid_fingerprint(points, chunks)
        journal = CampaignJournal(path)
        journal.open(fingerprint, chunks)
        journal.complete(0, pickle.dumps([1]), seconds=0.1, source="executed")
        journal.close()
        # Simulate a kill mid-append: a half-written record at the tail.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "completed", "chunk": 1, "dig')
        header, completed = load_journal(path)
        assert header is not None
        assert set(completed) == {0}

    def test_conflicting_completion_digests_raise(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        points = [{"x": 0}]
        chunks = plan_chunks(points)
        journal = CampaignJournal(path)
        journal.open(grid_fingerprint(points, chunks), chunks)
        journal.complete(0, pickle.dumps([1]), seconds=0.1, source="executed")
        journal.complete(0, pickle.dumps([2]), seconds=0.1, source="stolen")
        journal.close()
        with pytest.raises(ConfigurationError, match="different digests"):
            load_journal(path)


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
class TestCampaignRunner:
    def test_merged_rows_are_byte_identical_across_worker_counts(self):
        points = [{"x": i} for i in range(12)]
        results = [
            CampaignRunner(n).run(_square_row, points, affinity=_group_of)
            for n in (1, 2, 4)
        ]
        blobs = [pickle.dumps(r.rows) for r in results]
        assert blobs[0] == blobs[1] == blobs[2]
        assert results[0].rows == [_square_row(p) for p in points]
        # Same plan -> same fingerprint -> same per-chunk digests.
        assert [c.digest for c in results[0].chunks] == [
            c.digest for c in results[1].chunks
        ]

    def test_submissions_are_per_chunk_not_per_point(self):
        points = [{"x": i} for i in range(30)]
        runner = CampaignRunner(2, steal=False)
        result = runner.run(_square_row, points, affinity=_group_of)
        assert result.stats["chunks"] == 3
        assert result.stats["submissions"] == 3  # not 30

    def test_crash_and_resume_is_byte_identical(self, tmp_path):
        points = [{"x": i} for i in range(12)]
        reference = CampaignRunner(1).run(
            _square_row, points, affinity=_group_of
        )
        path = str(tmp_path / "j.jsonl")

        class Crash(Exception):
            pass

        seen = []

        def crash_after_two(outcome):
            seen.append(outcome.chunk_id)
            if len(seen) == 2:
                raise Crash

        with pytest.raises(Crash):
            CampaignRunner(1, journal=path).run(
                _square_row, points, affinity=_group_of,
                on_chunk=crash_after_two,
            )
        _, completed = load_journal(path)
        assert len(completed) == 2  # both chunks durable before the crash
        resumed = CampaignRunner(1, journal=path).run(
            _square_row, points, affinity=_group_of
        )
        assert resumed.stats["resumed"] == 2
        assert resumed.stats["executed"] == 1
        assert pickle.dumps(resumed.rows) == pickle.dumps(reference.rows)

    def test_resume_across_worker_counts_is_byte_identical(self, tmp_path):
        points = [{"x": i} for i in range(12)]
        reference = CampaignRunner(1).run(
            _square_row, points, affinity=_group_of
        )
        path = str(tmp_path / "j.jsonl")

        class Crash(Exception):
            pass

        def crash_immediately(outcome):
            raise Crash

        with pytest.raises(Crash):
            CampaignRunner(1, journal=path).run(
                _square_row, points, affinity=_group_of,
                on_chunk=crash_immediately,
            )
        resumed = CampaignRunner(2, journal=path).run(
            _square_row, points, affinity=_group_of
        )
        assert resumed.stats["resumed"] >= 1
        assert pickle.dumps(resumed.rows) == pickle.dumps(reference.rows)

    def test_worker_loss_rebuilds_pool_and_reproduces_result(self, tmp_path):
        flag = str(tmp_path / "killed")
        points = [{"x": i, "flag": flag} for i in range(6)]
        reference = CampaignRunner(1).run(
            _square_row, [{"x": p["x"]} for p in points], affinity=_group_of
        )
        # steal=False pins recovery to the pool-restart path: with
        # stealing on, a healthy worker can duplicate the dead
        # worker's chunk and finish before the broken pool is noticed.
        result = CampaignRunner(2, steal=False).run(
            _kill_once_row, points, affinity=_group_of
        )
        assert os.path.exists(flag)  # the kill actually happened
        assert result.stats["pool_restarts"] >= 1
        assert [row["x"] for row in result.rows] == [
            row["x"] for row in reference.rows
        ]

    def test_transient_chunk_error_is_retried(self, tmp_path):
        flag = str(tmp_path / "raised")
        points = [{"x": i, "flag": flag} for i in range(6)]
        result = CampaignRunner(2, steal=False).run(
            _raise_once_row, points, affinity=_group_of
        )
        assert os.path.exists(flag)
        assert result.stats["retried"] == 1
        assert [row["x"] for row in result.rows] == list(range(6))

    def test_deterministic_failure_propagates_as_itself(self):
        points = [{"x": i} for i in range(4)]
        with pytest.raises(ValueError, match="deterministic boom"):
            CampaignRunner(2).run(_failing_row, points, affinity=_group_of)
        with pytest.raises(ValueError, match="deterministic boom"):
            CampaignRunner(1).run(_failing_row, points, affinity=_group_of)

    def test_work_stealing_duplicates_agree(self):
        # More workers than chunks forces speculative duplicates; the
        # digest check inside the runner raises CampaignError on any
        # divergence, so success implies agreement.
        points = [{"x": i} for i in range(8)]
        result = CampaignRunner(4).run(
            _square_row, points, affinity=lambda p: p["x"] % 2
        )
        assert result.stats["chunks"] == 2
        assert pickle.dumps(result.rows) == pickle.dumps(
            [_square_row(p) for p in points]
        )

    def test_journal_replay_detects_divergent_reexecution(self, tmp_path):
        # Corrupt the journal's payload for chunk 0 with a *valid*
        # digest of different rows: resume accepts it (digest matches
        # payload), proving digests -- not trust -- gate the merge; the
        # rows then differ, which load_journal's cross-record digest
        # comparison would catch on the next completion.  Here we check
        # the cheaper invariant: mismatched payload vs digest raises.
        path = str(tmp_path / "j.jsonl")
        points = [{"x": i} for i in range(2)]
        chunks = plan_chunks(points)
        journal = CampaignJournal(path)
        journal.open(grid_fingerprint(points, chunks), chunks)
        journal.complete(0, pickle.dumps([1]), seconds=0.1, source="executed")
        journal.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        record = json.loads(lines[-1])
        record["digest"] = "0" * 64
        lines[-1] = json.dumps(record)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="digest"):
            load_journal(path)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestSweepRunnerIntegration:
    def test_journal_routes_n_jobs_1_through_campaign(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        runner = SweepRunner(n_jobs=1, journal=path)
        rows = runner.map_rows(_square_row, [{"x": i} for i in range(4)])
        assert rows == [_square_row({"x": i}) for i in range(4)]
        assert runner.last_campaign is not None
        assert os.path.exists(path)
        # Second pass resumes everything from the journal.
        again = SweepRunner(n_jobs=1, journal=path)
        assert again.map_rows(_square_row, [{"x": i} for i in range(4)]) == rows
        assert again.last_campaign.stats["executed"] == 0

    def test_journal_grid_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        SweepRunner(n_jobs=1, journal=path).map_rows(
            _square_row, [{"x": i} for i in range(4)]
        )
        with pytest.raises(ConfigurationError, match="different grid"):
            SweepRunner(n_jobs=1, journal=path).map_rows(
                _square_row, [{"x": i} for i in range(5)]
            )

    def test_parallel_run_merges_worker_stage_timings(self):
        clear_capacity_caches()
        points = [{"lam": lam} for lam in (2e-5, 4e-5)]
        result = SweepRunner(n_jobs=2).run(
            experiment_id="probe",
            title="probe",
            headers=["lam", "top"],
            row_fn=_solving_row,
            points=points,
        )
        # The solves happened in pool workers; without the worker-delta
        # merge these stages would read ~0 in the parent.
        assert result.timings["solve"] > 0.0
        assert result.timings["assemble"] > 0.0
        assert result.metadata["solver_stats"]["direct"] + result.metadata[
            "solver_stats"
        ]["iterative"] >= 2
        campaign = result.metadata["campaign"]
        assert campaign["points"] == 2
        assert campaign["submissions"] <= campaign["chunks"] + campaign["stolen"]
