"""Tests for repro.geolocation.sequential (sequential localization)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geolocation.measurements import Emitter, MeasurementGenerator
from repro.geolocation.sequential import SequentialLocalizer
from repro.geolocation.wls import WLSEstimator
from repro.orbits import build_reference_constellation
from repro.orbits.frames import GeodeticPoint, subsatellite_point


@pytest.fixture(scope="module")
def setup():
    constellation = build_reference_constellation()
    plane = constellation.planes[0]
    lead = plane.satellites[0]
    trail = plane.satellites[13]  # the next visitor of the same spot
    track = subsatellite_point(lead.position_ecef(60.0))
    emitter = Emitter(
        GeodeticPoint(
            track.latitude + math.radians(0.4),
            track.longitude + math.radians(0.6),
        ),
        900.0e6,
    )
    generator = MeasurementGenerator(
        emitter,
        doppler_sigma_hz=10.0,
        footprint_half_angle=constellation.footprint.half_angle,
    )
    return lead, trail, emitter, generator


def sparse_pass(generator, satellite, rng, offset=0.0):
    """A capacity-constrained pass: only 6 Doppler samples."""
    times = np.linspace(-150.0, 250.0, 6) + 60.0 + offset
    return generator.observe(satellite, times, rng)


class TestRefinement:
    def test_estimated_error_shrinks_with_second_pass(self, setup):
        lead, trail, emitter, generator = setup
        revisit = lead.orbit.period_s() / 14.0
        improvements = 0
        for seed in range(6):
            rng = np.random.default_rng(300 + seed)
            localizer = SequentialLocalizer()
            first = localizer.add_pass(sparse_pass(generator, lead, rng))
            second = localizer.add_pass(
                sparse_pass(generator, trail, rng, offset=revisit)
            )
            if second.horizontal_error_km < first.horizontal_error_km:
                improvements += 1
        assert improvements >= 5  # allow one noisy exception

    def test_history_records_passes(self, setup):
        lead, trail, _, generator = setup
        rng = np.random.default_rng(310)
        localizer = SequentialLocalizer()
        localizer.add_pass(sparse_pass(generator, lead, rng))
        localizer.add_pass(
            sparse_pass(
                generator, trail, rng, offset=lead.orbit.period_s() / 14.0
            )
        )
        assert localizer.passes == 2
        assert localizer.history[0].measurements_total == 6
        assert localizer.history[1].measurements_total == 12
        assert len(localizer.error_history_km()) == 2

    def test_estimated_error_infinite_before_first_pass(self):
        localizer = SequentialLocalizer()
        assert localizer.estimated_error_km == float("inf")
        assert localizer.current is None

    def test_warm_start_from_explicit_guess(self, setup):
        lead, _, emitter, generator = setup
        rng = np.random.default_rng(320)
        localizer = SequentialLocalizer(
            WLSEstimator(), initial_guess=emitter.location
        )
        result = localizer.add_pass(sparse_pass(generator, lead, rng))
        assert result.error_km(emitter.location) < 50.0

    def test_empty_pass_rejected(self):
        with pytest.raises(ConfigurationError):
            SequentialLocalizer().add_pass([])

    def test_pass_names_default_to_satellite(self, setup):
        lead, _, _, generator = setup
        rng = np.random.default_rng(330)
        localizer = SequentialLocalizer()
        localizer.add_pass(sparse_pass(generator, lead, rng))
        assert localizer.history[0].satellite_name == lead.name
