"""Tests for repro.orbits.kepler (propagation)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH
from repro.orbits.kepler import CircularOrbit, KeplerianOrbit, solve_kepler


class TestCircularOrbit:
    def test_ninety_minute_altitude(self):
        orbit = CircularOrbit.from_period(90.0 * 60.0, math.radians(85.0))
        assert orbit.altitude_km == pytest.approx(274.4, abs=1.0)
        assert orbit.period_s() == pytest.approx(5400.0, rel=1e-9)

    def test_radius_constant(self):
        orbit = CircularOrbit(500.0, math.radians(60.0))
        radii = [
            np.linalg.norm(orbit.position_eci(t)) for t in (0.0, 700.0, 3000.0)
        ]
        assert all(r == pytest.approx(EARTH.radius_km + 500.0) for r in radii)

    def test_speed_is_circular_velocity(self):
        orbit = CircularOrbit(500.0, 1.0)
        speed = np.linalg.norm(orbit.velocity_eci(123.0))
        assert speed == pytest.approx(
            EARTH.circular_speed_km_s(EARTH.radius_km + 500.0)
        )

    def test_velocity_perpendicular_to_position(self):
        orbit = CircularOrbit(400.0, 0.5, raan=1.0, phase=2.0)
        for t in (0.0, 1000.0):
            dot = float(np.dot(orbit.position_eci(t), orbit.velocity_eci(t)))
            assert dot == pytest.approx(0.0, abs=1e-6)

    def test_periodicity(self):
        orbit = CircularOrbit(600.0, 1.2, raan=0.3, phase=0.7)
        period = orbit.period_s()
        assert np.allclose(
            orbit.position_eci(100.0), orbit.position_eci(100.0 + period), atol=1e-6
        )

    def test_inclination_bounds_latitude(self):
        orbit = CircularOrbit(500.0, math.radians(30.0))
        max_z = max(
            abs(orbit.position_eci(t)[2]) for t in np.linspace(0, orbit.period_s(), 400)
        )
        expected = (EARTH.radius_km + 500.0) * math.sin(math.radians(30.0))
        assert max_z == pytest.approx(expected, rel=1e-3)

    def test_phase_separates_satellites(self):
        a = CircularOrbit(500.0, 1.0, phase=0.0)
        b = CircularOrbit(500.0, 1.0, phase=math.pi)
        assert np.allclose(a.position_eci(0.0), -b.position_eci(0.0), atol=1e-9)

    def test_rejects_nonpositive_altitude(self):
        with pytest.raises(ConfigurationError):
            CircularOrbit(0.0, 1.0)


class TestKeplerSolver:
    def test_circular_case(self):
        assert solve_kepler(1.234, 0.0) == pytest.approx(1.234)

    def test_residual_is_zero(self):
        for m in (0.1, 2.0, 5.5):
            for e in (0.1, 0.5, 0.9):
                ecc_anom = solve_kepler(m, e)
                reduced_m = math.fmod(m, 2 * math.pi)
                assert ecc_anom - e * math.sin(ecc_anom) == pytest.approx(
                    reduced_m, abs=1e-10
                )

    def test_rejects_hyperbolic(self):
        with pytest.raises(ConfigurationError):
            solve_kepler(1.0, 1.1)

    def test_negative_anomaly_high_eccentricity(self):
        # Regression: plain Newton diverged for M=-4.0, e~0.94 (found
        # by Hypothesis); the bracketed solver must converge and keep
        # the odd symmetry E(-M) = -E(M).
        m, e = -4.0, 0.9403
        ecc_anom = solve_kepler(m, e)
        reduced_m = math.fmod(m, 2 * math.pi)
        assert ecc_anom - e * math.sin(ecc_anom) == pytest.approx(
            reduced_m, abs=1e-10
        )
        assert solve_kepler(-m, e) == pytest.approx(-ecc_anom, abs=1e-12)


class TestKeplerianOrbit:
    def test_circular_limit_matches_circular_orbit(self):
        circular = CircularOrbit(500.0, 0.9, raan=0.4, phase=1.1)
        general = KeplerianOrbit.from_circular(circular)
        for t in (0.0, 500.0, 2000.0):
            assert np.allclose(
                circular.position_eci(t), general.position_eci(t), atol=1e-6
            )
            assert np.allclose(
                circular.velocity_eci(t), general.velocity_eci(t), atol=1e-9
            )

    def test_vis_viva_energy_conserved(self):
        orbit = KeplerianOrbit(
            semi_major_axis_km=8000.0,
            eccentricity=0.3,
            inclination=0.7,
            raan=0.2,
            argument_of_perigee=1.0,
        )
        energies = []
        for t in np.linspace(0.0, orbit.period_s(), 17):
            r = np.linalg.norm(orbit.position_eci(float(t)))
            v = np.linalg.norm(orbit.velocity_eci(float(t)))
            energies.append(0.5 * v * v - EARTH.mu_km3_s2 / r)
        expected = -EARTH.mu_km3_s2 / (2.0 * 8000.0)
        assert np.allclose(energies, expected, rtol=1e-9)

    def test_perigee_apogee_radii(self):
        a, e = 9000.0, 0.2
        orbit = KeplerianOrbit(a, e, 0.0)
        # Mean anomaly 0 is perigee; pi is apogee.
        perigee = np.linalg.norm(orbit.position_eci(0.0))
        apogee = np.linalg.norm(orbit.position_eci(orbit.period_s() / 2.0))
        assert perigee == pytest.approx(a * (1 - e), rel=1e-9)
        assert apogee == pytest.approx(a * (1 + e), rel=1e-6)

    def test_angular_momentum_conserved(self):
        orbit = KeplerianOrbit(8000.0, 0.4, 0.9, raan=0.1, argument_of_perigee=0.3)
        h_vectors = [
            np.cross(orbit.position_eci(float(t)), orbit.velocity_eci(float(t)))
            for t in np.linspace(0.0, orbit.period_s(), 9)
        ]
        assert all(np.allclose(h, h_vectors[0], rtol=1e-9) for h in h_vectors)

    def test_rejects_bad_eccentricity(self):
        with pytest.raises(ConfigurationError):
            KeplerianOrbit(8000.0, 1.0, 0.0)


@settings(max_examples=40)
@given(
    m=st.floats(min_value=-20.0, max_value=20.0),
    e=st.floats(min_value=0.0, max_value=0.95),
)
def test_property_kepler_solution_valid(m, e):
    ecc_anom = solve_kepler(m, e)
    assert ecc_anom - e * math.sin(ecc_anom) == pytest.approx(
        math.fmod(m, 2 * math.pi), abs=1e-9
    )
