"""Tests for repro.san.reachability (tangible state-space generation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.distributions import Deterministic
from repro.errors import ModelError, StateSpaceExplosionError
from repro.san import (
    Case,
    InputGate,
    InstantaneousActivity,
    Place,
    SANModel,
    TimedActivity,
    generate,
)


def mm1k_model(arrival=1.0, service=2.0, capacity=3):
    """M/M/1/K queue as a SAN."""
    arrive = TimedActivity.exponential(
        "arrive",
        arrival,
        input_gates=[
            InputGate("not_full", predicate=lambda m: m["queue"] < capacity)
        ],
        cases=[Case(output_arcs={"queue": 1})],
    )
    serve = TimedActivity.exponential("serve", service, input_arcs={"queue": 1})
    return SANModel([Place("queue", 0)], [arrive, serve], name="mm1k")


class TestBasicGeneration:
    def test_mm1k_state_count(self):
        space = generate(mm1k_model(capacity=3))
        assert len(space) == 4  # queue = 0..3
        assert space.is_markovian

    def test_transition_rates(self):
        space = generate(mm1k_model(arrival=1.0, service=2.0, capacity=2))
        rates = {
            (space.markings[t.source], space.markings[t.target]): t.rate
            for t in space.markovian
        }
        assert rates[((0,), (1,))] == pytest.approx(1.0)
        assert rates[((1,), (0,))] == pytest.approx(2.0)

    def test_initial_distribution(self):
        space = generate(mm1k_model())
        assert space.initial_distribution == [(1.0, 0)]

    def test_explosion_guard(self):
        grow = TimedActivity.exponential(
            "grow",
            1.0,
            input_gates=[InputGate("always", predicate=lambda m: True)],
            cases=[Case(output_arcs={"p": 1})],
        )
        model = SANModel([Place("p", 0)], [grow])
        with pytest.raises(StateSpaceExplosionError):
            generate(model, max_states=50)

    def test_explosion_error_reports_limit_marking_and_lumping_hint(self):
        grow = TimedActivity.exponential(
            "grow",
            1.0,
            input_gates=[InputGate("always", predicate=lambda m: True)],
            cases=[Case(output_arcs={"p": 1})],
        )
        model = SANModel([Place("p", 0)], [grow])
        with pytest.raises(StateSpaceExplosionError) as excinfo:
            generate(model, max_states=50)
        error = excinfo.value
        assert error.limit == 50
        assert error.marking == {"p": 50}
        message = str(error)
        assert "limit of 50 markings" in message
        assert "{'p': 50}" in message
        assert "exchangeable place groups" in message
        assert "repro.san.lumping" in message

    def test_absorbing_marking_allowed(self):
        drain = TimedActivity.exponential("drain", 1.0, input_arcs={"p": 1})
        model = SANModel([Place("p", 2)], [drain])
        space = generate(model)
        assert len(space) == 3  # 2, 1, 0 (absorbing)


class TestVanishingElimination:
    def test_instantaneous_chain_collapses(self):
        """A timed firing followed by two instantaneous moves produces a
        single tangible successor."""
        step = TimedActivity.exponential(
            "step", 1.0, input_arcs={"a": 1}, cases=[Case(output_arcs={"b": 1})]
        )
        move1 = InstantaneousActivity(
            "m1", input_arcs={"b": 1}, cases=[Case(output_arcs={"c": 1})]
        )
        move2 = InstantaneousActivity(
            "m2", input_arcs={"c": 1}, cases=[Case(output_arcs={"d": 1})]
        )
        model = SANModel(
            [Place("a", 1), Place("b", 0), Place("c", 0), Place("d", 0)],
            [step],
            [move1, move2],
        )
        space = generate(model)
        markings = {model.marking_dict(m)["d"] for m in space.markings}
        # Only (a=1) and (d=1) are tangible; b/c never hold tokens.
        assert len(space) == 2
        assert markings == {0, 1}

    def test_probabilistic_cases_split_rates(self):
        split = TimedActivity.exponential(
            "split",
            3.0,
            input_arcs={"a": 1},
            cases=[
                Case(probability=0.25, output_arcs={"left": 1}),
                Case(probability=0.75, output_arcs={"right": 1}),
            ],
        )
        model = SANModel(
            [Place("a", 1), Place("left", 0), Place("right", 0)], [split]
        )
        space = generate(model)
        rates = sorted(t.rate for t in space.markovian)
        assert rates == [pytest.approx(0.75), pytest.approx(2.25)]

    def test_priority_orders_instantaneous(self):
        """Higher-priority instantaneous activities fire first."""
        low = InstantaneousActivity(
            "low", priority=0, input_arcs={"x": 1}, cases=[Case(output_arcs={"lo": 1})]
        )
        high = InstantaneousActivity(
            "high", priority=5, input_arcs={"x": 1}, cases=[Case(output_arcs={"hi": 1})]
        )
        feed = TimedActivity.exponential(
            "feed",
            1.0,
            input_gates=[InputGate("go", predicate=lambda m: m["x"] == 0 and m["hi"] == 0 and m["lo"] == 0)],
            cases=[Case(output_arcs={"x": 1})],
        )
        model = SANModel(
            [Place("x", 0), Place("hi", 0), Place("lo", 0)], [feed], [low, high]
        )
        space = generate(model)
        reached = {tuple(m) for m in space.markings}
        assert (0, 1, 0) in reached  # high fired
        assert (0, 0, 1) not in reached  # low never got the token

    def test_equal_priority_conflict_rejected(self):
        a = InstantaneousActivity("a", input_arcs={"x": 1})
        b = InstantaneousActivity("b", input_arcs={"x": 1})
        model = SANModel([Place("x", 1)], [], [a, b])
        with pytest.raises(ModelError):
            generate(model)

    def test_instantaneous_cycle_detected(self):
        ping = InstantaneousActivity(
            "ping", input_arcs={"a": 1}, cases=[Case(output_arcs={"b": 1})]
        )
        pong = InstantaneousActivity(
            "pong", input_arcs={"b": 1}, cases=[Case(output_arcs={"a": 1})]
        )
        model = SANModel([Place("a", 1), Place("b", 0)], [], [ping, pong])
        with pytest.raises(ModelError):
            generate(model)


class TestGeneralTransitions:
    def test_deterministic_activity_recorded_as_general(self):
        timer = TimedActivity(
            "timer", Deterministic(5.0), input_arcs={"p": 1}
        )
        model = SANModel([Place("p", 1)], [timer])
        space = generate(model)
        assert not space.is_markovian
        assert len(space.general) == 1
        assert space.general[0].activity == "timer"
        targets = space.general[0].targets
        assert len(targets) == 1
        assert targets[0][0] == pytest.approx(1.0)

    def test_general_by_source_grouping(self):
        timer = TimedActivity("t", Deterministic(1.0), input_arcs={"p": 1})
        model = SANModel([Place("p", 2)], [timer])
        space = generate(model)
        grouped = space.general_by_source()
        assert set(grouped) == {space.index[(2,)], space.index[(1,)]}


def _exchangeable_plane(order):
    """A symmetric failure/repair plane whose satellite places are
    declared and wired in ``order`` -- any two orders are the same
    model up to a renaming of exchangeable places."""
    sats = [f"s{i}" for i in order]

    def down(m):
        return sum(1 - m[s] for s in sats)

    def repair_case(s):
        def probability(m):
            d = down(m)
            return (1 - m[s]) / d if d else 0.0

        return Case(probability=probability, output_arcs={s: 1, "pool": 1})

    activities = [
        TimedActivity.exponential(f"fail_{s}", 0.01, input_arcs={s: 1})
        for s in sats
    ] + [
        TimedActivity.exponential(
            "repair",
            0.5,
            input_arcs={"pool": 1},
            input_gates=[InputGate("down", predicate=lambda m: down(m) > 0)],
            cases=[repair_case(s) for s in sats],
        )
    ]
    return SANModel(
        [Place(s, 1) for s in sats] + [Place("pool", 1)],
        activities,
        name="exchangeable-plane",
        exchangeable_groups=[sats],
    )


class TestExchangeablePermutationIsomorphism:
    """Permuting exchangeable satellite places must produce an
    isomorphic reachability graph: the state space only relabels."""

    @settings(max_examples=24, deadline=None)
    @given(order=st.permutations(list(range(1, 5))))
    def test_generate_is_isomorphic_under_permutation(self, order):
        base = generate(_exchangeable_plane(list(range(1, 5))))
        permuted = generate(_exchangeable_plane(list(order)))
        assert len(permuted) == len(base)
        assert len(permuted.markovian) == len(base.markovian)
        base_rates = sorted(t.rate for t in base.markovian)
        permuted_rates = sorted(t.rate for t in permuted.markovian)
        # The symmetry permutes transitions but preserves each rate
        # exactly (same float operations in a different order).
        assert permuted_rates == base_rates
