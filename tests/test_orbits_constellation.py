"""Tests for repro.orbits.constellation (building, failing, rephasing)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.orbits.constellation import (
    OrbitalPlane,
    build_reference_constellation,
)


@pytest.fixture
def plane():
    return OrbitalPlane(
        plane_index=0,
        altitude_km=274.4,
        inclination=math.radians(85.0),
        raan=0.0,
        active_count=14,
        spare_count=2,
    )


class TestReferenceConstellation:
    def test_published_counts(self):
        constellation = build_reference_constellation()
        assert len(constellation.planes) == 7
        assert constellation.total_active == 98

    def test_ninety_minute_period(self):
        constellation = build_reference_constellation()
        satellite = constellation.satellites[0]
        assert satellite.orbit.period_s() == pytest.approx(5400.0, rel=1e-6)

    def test_raan_spread_over_half_circle(self):
        constellation = build_reference_constellation()
        raans = [plane.raan for plane in constellation.planes]
        assert raans[0] == 0.0
        assert max(raans) < math.pi

    def test_satellite_names_unique(self):
        constellation = build_reference_constellation()
        names = [s.name for s in constellation.satellites]
        assert len(set(names)) == len(names)


class TestPhasing:
    def test_even_phasing(self, plane):
        phases = sorted(s.orbit.phase for s in plane.satellites)
        gaps = np.diff(phases)
        assert np.allclose(gaps, 2.0 * math.pi / 14, atol=1e-12)

    def test_geometry_conversion(self, plane):
        geometry = plane.geometry(coverage_time_minutes=9.0)
        assert geometry.active_satellites == 14
        assert geometry.orbit_period == pytest.approx(90.0, abs=0.01)


class TestFailures:
    def test_spares_absorb_first_failures(self, plane):
        assert plane.fail_satellites(2) == 14
        assert plane.spare_count == 0

    def test_failures_beyond_spares_shrink_plane(self, plane):
        assert plane.fail_satellites(5) == 11  # 2 spares + 3 active
        assert plane.spare_count == 0

    def test_rephasing_keeps_even_distribution(self, plane):
        plane.fail_satellites(6)  # down to 10 active
        phases = sorted(s.orbit.phase % (2 * math.pi) for s in plane.satellites)
        gaps = np.diff(phases)
        assert np.allclose(gaps, 2.0 * math.pi / 10, atol=1e-9)

    def test_revisit_time_grows_with_failures(self, plane):
        """Tr[k] = theta / k: fewer satellites, longer revisit."""
        geometry_before = plane.geometry(9.0)
        plane.fail_satellites(6)
        geometry_after = plane.geometry(9.0)
        assert geometry_after.revisit_time > geometry_before.revisit_time
        assert geometry_after.revisit_time == pytest.approx(
            geometry_before.orbit_period / 10.0
        )

    def test_cannot_fail_negative(self, plane):
        with pytest.raises(ConfigurationError):
            plane.fail_satellites(-1)

    def test_constellation_degrade_plane(self):
        constellation = build_reference_constellation()
        assert constellation.degrade_plane(0, 4) == 12
        assert constellation.total_active == 98 - 2  # 2 losses hit spares
