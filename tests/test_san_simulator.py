"""Tests for repro.san.simulator (discrete-event SAN execution)."""

import pytest

from repro.analytic.distributions import Deterministic
from repro.errors import ConfigurationError, ModelError
from repro.san import (
    Case,
    InputGate,
    InstantaneousActivity,
    Place,
    SANModel,
    SANSimulator,
    TimedActivity,
)


def on_off_model(up_rate=0.5, repair_time=2.0):
    fail = TimedActivity.exponential("fail", up_rate, input_arcs={"up": 1})
    repair = TimedActivity(
        "repair",
        Deterministic(repair_time),
        input_gates=[InputGate("down", predicate=lambda m: m["up"] == 0)],
        cases=[Case(output_arcs={"up": 1})],
    )
    return SANModel([Place("up", 1)], [fail, repair], name="on-off")


class TestSteadyStateEstimation:
    def test_on_off_availability(self):
        """Alternating renewal availability, deterministic repair
        handled exactly."""
        simulator = SANSimulator(on_off_model(0.5, 2.0), seed=123)
        result = simulator.run(
            60000.0, warmup=1000.0, rewards={"up": lambda m: float(m["up"])}
        )
        expected = 2.0 / (2.0 + 2.0)  # 1/lambda = 2, repair 2
        assert result.rewards["up"].mean == pytest.approx(expected, abs=0.02)

    def test_occupancy_fractions_sum_to_one(self):
        simulator = SANSimulator(on_off_model(), seed=5)
        result = simulator.run(5000.0, warmup=100.0)
        assert sum(result.marking_occupancy.values()) == pytest.approx(1.0)

    def test_mm1_queue_utilisation(self):
        lam, mu = 0.5, 1.0
        arrive = TimedActivity.exponential(
            "arrive",
            lam,
            input_gates=[InputGate("room", predicate=lambda m: m["q"] < 200)],
            cases=[Case(output_arcs={"q": 1})],
        )
        serve = TimedActivity.exponential("serve", mu, input_arcs={"q": 1})
        model = SANModel([Place("q", 0)], [arrive, serve])
        simulator = SANSimulator(model, seed=42)
        result = simulator.run(
            80000.0,
            warmup=2000.0,
            rewards={"busy": lambda m: 1.0 if m["q"] > 0 else 0.0},
        )
        assert result.rewards["busy"].mean == pytest.approx(lam / mu, abs=0.02)

    def test_confidence_interval_brackets_truth(self):
        simulator = SANSimulator(on_off_model(0.5, 2.0), seed=9)
        result = simulator.run(
            50000.0,
            warmup=1000.0,
            rewards={"up": lambda m: float(m["up"])},
            batches=10,
        )
        estimate = result.rewards["up"]
        low, high = estimate.confidence_interval
        assert low <= 0.5 <= high
        assert estimate.batches == 10

    def test_deterministic_timer_exact(self):
        """With no competing activities the repair completes exactly
        after its deterministic delay (event count check)."""
        model = on_off_model(up_rate=1e9, repair_time=3.0)
        # The up state collapses instantly; cycle length ~ 3.0.
        simulator = SANSimulator(model, seed=3)
        result = simulator.run(300.0, warmup=0.0)
        assert result.events == pytest.approx(200, abs=6)  # 2 events / 3 time


class TestBatchEdges:
    """Batch edges are derived from integer batch indices (regression:
    ``batch_edge += batch_length`` drifted over long horizons and the
    final partial batch was normalised by the full batch length)."""

    def test_batch_means_average_to_overall_mean(self):
        """With an inexactly-representable batch length (0.1) over many
        batches -- the drift-prone regime -- each batch is still
        normalised by its true width, so the batch means average back
        to the overall time average to within 1e-12."""
        simulator = SANSimulator(on_off_model(0.5, 2.0), seed=31)
        result = simulator.run(
            6100.0,
            warmup=100.0,
            rewards={"up": lambda m: float(m["up"])},
            batches=60000,  # batch length 0.1
        )
        estimate = result.rewards["up"]
        assert estimate.batches == 60000
        assert len(estimate.batch_means) == 60000
        average = sum(estimate.batch_means) / len(estimate.batch_means)
        assert average == pytest.approx(estimate.mean, abs=1e-12)

    def test_batch_means_average_exactly_with_exact_widths(self):
        simulator = SANSimulator(on_off_model(0.5, 2.0), seed=7)
        result = simulator.run(
            5000.0,
            warmup=1000.0,
            rewards={"up": lambda m: float(m["up"])},
            batches=8,  # batch length 500, exactly representable
        )
        estimate = result.rewards["up"]
        average = sum(estimate.batch_means) / len(estimate.batch_means)
        assert average == pytest.approx(estimate.mean, abs=1e-12)

    def test_every_batch_is_closed_even_when_events_stop_early(self):
        """An absorbing model goes quiet long before the horizon; the
        remaining batches must still be emitted (and normalised by
        their own widths, giving zero-activity batches a clean 0)."""
        drain = TimedActivity.exponential("drain", 1.0, input_arcs={"p": 1})
        model = SANModel([Place("p", 3)], [drain])
        simulator = SANSimulator(model, seed=2)
        result = simulator.run(
            100.0,
            rewards={"tokens": lambda m: float(m["p"])},
            batches=10,
        )
        estimate = result.rewards["tokens"]
        assert estimate.batches == 10
        assert estimate.batch_means[-1] == 0.0  # all tokens long drained
        average = sum(estimate.batch_means) / len(estimate.batch_means)
        assert average == pytest.approx(estimate.mean, abs=1e-12)


class TestMechanics:
    def test_instantaneous_stabilisation(self):
        feed = TimedActivity.exponential(
            "feed",
            1.0,
            input_gates=[InputGate("empty", predicate=lambda m: m["x"] == 0)],
            cases=[Case(output_arcs={"x": 1})],
        )
        move = InstantaneousActivity(
            "move", input_arcs={"x": 1}, cases=[Case(output_arcs={"y": 1})]
        )
        model = SANModel([Place("x", 0), Place("y", 0)], [feed], [move])
        simulator = SANSimulator(model, seed=1)
        result = simulator.run(50.0)
        # Tokens never rest in x.
        for marking in result.marking_occupancy:
            assert marking[0] == 0

    def test_probabilistic_case_selection(self):
        split = TimedActivity.exponential(
            "split",
            1.0,
            input_gates=[InputGate("always", predicate=lambda m: True)],
            cases=[
                Case(probability=0.3, output_arcs={"a": 1}),
                Case(probability=0.7, output_arcs={"b": 1}),
            ],
        )
        model = SANModel([Place("a", 0), Place("b", 0)], [split])
        simulator = SANSimulator(model, seed=77)
        result = simulator.run(4000.0)
        final = max(result.marking_occupancy)  # last marking has most tokens
        total = final[0] + final[1]
        assert final[1] / total == pytest.approx(0.7, abs=0.05)

    def test_absorbing_model_stops(self):
        drain = TimedActivity.exponential("drain", 1.0, input_arcs={"p": 1})
        model = SANModel([Place("p", 3)], [drain])
        simulator = SANSimulator(model, seed=2)
        result = simulator.run(1000.0)
        assert result.events == 3

    def test_rejects_bad_horizon(self):
        simulator = SANSimulator(on_off_model(), seed=0)
        with pytest.raises(ConfigurationError):
            simulator.run(10.0, warmup=20.0)

    def test_equal_priority_conflict_raises(self):
        a = InstantaneousActivity("a", input_arcs={"x": 1})
        b = InstantaneousActivity("b", input_arcs={"x": 1})
        model = SANModel([Place("x", 1)], [], [a, b])
        simulator = SANSimulator(model, seed=0)
        with pytest.raises(ModelError):
            simulator.run(1.0)
