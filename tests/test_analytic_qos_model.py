"""Tests for repro.analytic.qos_model -- the closed-form conditional
QoS model, anchored on the paper's published numbers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.distributions import Deterministic, Exponential, Uniform
from repro.analytic.qos_model import (
    conditional_distribution,
    conditional_distribution_general,
    g2_oaq,
    g3_baq,
    g3_oaq,
    miss_probability,
    window_success_integral,
)
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError


@pytest.fixture
def paper_params():
    """tau=5, mu=0.5, nu=30 -- the Section 4.3 conditional anchor."""
    return EvaluationParams(
        deadline_minutes=5.0, signal_termination_rate=0.5, computation_rate=30.0
    )


class TestPaperAnchors:
    def test_oaq_level3_at_k12_is_044(self, paper_params):
        """Paper: 'with probability 0.44 the constellation will still
        deliver a geolocation result rated at QoS level 3'."""
        geometry = paper_params.constellation.plane_geometry(12)
        assert g3_oaq(geometry, paper_params) == pytest.approx(0.4444, abs=5e-4)

    def test_baq_level3_at_k12_is_020(self, paper_params):
        """Paper: 'the value of P(Y=3|12) is only 0.20 with BAQ'."""
        geometry = paper_params.constellation.plane_geometry(12)
        assert g3_baq(geometry, paper_params) == pytest.approx(0.20, abs=5e-4)


class TestWindowSuccessIntegral:
    def test_zero_width_window(self):
        assert window_success_integral(0.5, 30.0, 5.0, 2.0, 2.0) == 0.0

    def test_matches_numeric_quadrature(self):
        from scipy.integrate import quad

        mu, nu, tau = 0.3, 12.0, 5.0
        expected, _ = quad(
            lambda w: math.exp(-mu * w) * (1 - math.exp(-nu * (tau - w))), 1.0, 4.0
        )
        assert window_success_integral(mu, nu, tau, 1.0, 4.0) == pytest.approx(
            expected, rel=1e-9
        )

    def test_equal_rates_special_case(self):
        from scipy.integrate import quad

        mu = nu = 2.0
        expected, _ = quad(
            lambda w: math.exp(-mu * w) * (1 - math.exp(-nu * (5.0 - w))), 0.0, 3.0
        )
        assert window_success_integral(mu, nu, 5.0, 0.0, 3.0) == pytest.approx(
            expected, rel=1e-9
        )

    def test_zero_mu_means_immortal_signal(self):
        from scipy.integrate import quad

        expected, _ = quad(lambda w: 1 - math.exp(-30.0 * (5.0 - w)), 0.0, 4.0)
        assert window_success_integral(0.0, 30.0, 5.0, 0.0, 4.0) == pytest.approx(
            expected, rel=1e-9
        )

    def test_no_overflow_for_large_nu_tau(self):
        value = window_success_integral(0.1, 50.0, 600.0, 0.0, 500.0)
        assert 0.0 < value < 600.0

    def test_rejects_window_beyond_deadline(self):
        with pytest.raises(ConfigurationError):
            window_success_integral(0.5, 30.0, 5.0, 0.0, 6.0)

    def test_rejects_inverted_window(self):
        with pytest.raises(ConfigurationError):
            window_success_integral(0.5, 30.0, 5.0, 3.0, 1.0)


class TestGuards:
    def test_g3_rejects_underlap(self, paper_params):
        with pytest.raises(ConfigurationError):
            g3_oaq(paper_params.constellation.plane_geometry(9), paper_params)

    def test_g2_rejects_overlap(self, paper_params):
        with pytest.raises(ConfigurationError):
            g2_oaq(paper_params.constellation.plane_geometry(12), paper_params)

    def test_miss_probability_zero_for_overlap(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(12)
        assert miss_probability(geometry, paper_params) == 0.0

    def test_miss_probability_zero_for_tangent(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(10)  # L2 = 0
        assert miss_probability(geometry, paper_params) == 0.0


class TestConditionalDistribution:
    @pytest.mark.parametrize("k", range(9, 15))
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_distributions_are_proper(self, paper_params, k, scheme):
        geometry = paper_params.constellation.plane_geometry(k)
        dist = conditional_distribution(geometry, paper_params, scheme)
        total = sum(dist[level] for level in QoSLevel)
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("k", range(9, 15))
    def test_oaq_dominates_baq(self, paper_params, k):
        """OAQ is stochastically at least as good as BAQ for every k."""
        geometry = paper_params.constellation.plane_geometry(k)
        oaq = conditional_distribution(geometry, paper_params, Scheme.OAQ)
        baq = conditional_distribution(geometry, paper_params, Scheme.BAQ)
        for level in QoSLevel:
            assert oaq.at_least(level) >= baq.at_least(level) - 1e-12

    def test_table1_level_support_overlap(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(12)
        for scheme in (Scheme.OAQ, Scheme.BAQ):
            dist = conditional_distribution(geometry, paper_params, scheme)
            assert dist[QoSLevel.SEQUENTIAL_DUAL] == 0.0
            assert dist[QoSLevel.MISSED] == 0.0

    def test_table1_level_support_underlap(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(9)
        dist = conditional_distribution(geometry, paper_params, Scheme.OAQ)
        assert dist[QoSLevel.SIMULTANEOUS_DUAL] == 0.0
        assert dist[QoSLevel.SEQUENTIAL_DUAL] > 0.0
        assert dist[QoSLevel.MISSED] > 0.0

    def test_baq_has_no_level2(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(9)
        dist = conditional_distribution(geometry, paper_params, Scheme.BAQ)
        assert dist[QoSLevel.SEQUENTIAL_DUAL] == 0.0

    def test_miss_probability_scheme_independent(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(9)
        oaq = conditional_distribution(geometry, paper_params, Scheme.OAQ)
        baq = conditional_distribution(geometry, paper_params, Scheme.BAQ)
        assert oaq[QoSLevel.MISSED] == pytest.approx(baq[QoSLevel.MISSED])

    def test_longer_deadline_helps_oaq(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(12)
        short = conditional_distribution(
            geometry, paper_params.with_(deadline_minutes=2.0), Scheme.OAQ
        )
        long = conditional_distribution(
            geometry, paper_params.with_(deadline_minutes=8.0), Scheme.OAQ
        )
        assert long[QoSLevel.SIMULTANEOUS_DUAL] > short[QoSLevel.SIMULTANEOUS_DUAL]

    def test_longer_signal_helps_oaq(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(12)
        short = conditional_distribution(
            geometry, paper_params.with_(signal_termination_rate=1.0), Scheme.OAQ
        )
        long = conditional_distribution(
            geometry, paper_params.with_(signal_termination_rate=0.1), Scheme.OAQ
        )
        assert long[QoSLevel.SIMULTANEOUS_DUAL] > short[QoSLevel.SIMULTANEOUS_DUAL]

    def test_baq_level3_mu_invariant(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(12)
        a = conditional_distribution(
            geometry, paper_params.with_(signal_termination_rate=1.0), Scheme.BAQ
        )
        b = conditional_distribution(
            geometry, paper_params.with_(signal_termination_rate=0.1), Scheme.BAQ
        )
        assert a[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(
            b[QoSLevel.SIMULTANEOUS_DUAL]
        )


class TestGeneralDistributionModel:
    @pytest.mark.parametrize("k", [9, 10, 12, 14])
    @pytest.mark.parametrize("scheme", [Scheme.OAQ, Scheme.BAQ])
    def test_matches_closed_form_for_exponentials(self, paper_params, k, scheme):
        geometry = paper_params.constellation.plane_geometry(k)
        closed = conditional_distribution(geometry, paper_params, scheme)
        numeric = conditional_distribution_general(
            geometry,
            paper_params.tau,
            Exponential(paper_params.mu),
            Exponential(paper_params.nu),
            scheme,
        )
        assert numeric.isclose(closed, abs_tol=1e-7)

    def test_deterministic_signal_duration(self, paper_params):
        """A signal lasting exactly 2 minutes can never feed an
        opportunity more than 2 minutes away."""
        geometry = paper_params.constellation.plane_geometry(12)
        dist = conditional_distribution_general(
            geometry,
            paper_params.tau,
            Deterministic(2.0),
            Exponential(paper_params.nu),
            Scheme.OAQ,
        )
        # Waits in (2, L_hat] fail; compare against an immortal signal.
        immortal = conditional_distribution_general(
            geometry,
            paper_params.tau,
            Deterministic(100.0),
            Exponential(paper_params.nu),
            Scheme.OAQ,
        )
        assert (
            dist[QoSLevel.SIMULTANEOUS_DUAL]
            < immortal[QoSLevel.SIMULTANEOUS_DUAL]
        )

    def test_uniform_duration_is_supported(self, paper_params):
        geometry = paper_params.constellation.plane_geometry(9)
        dist = conditional_distribution_general(
            geometry,
            paper_params.tau,
            Uniform(0.0, 10.0),
            Exponential(paper_params.nu),
            Scheme.OAQ,
        )
        total = sum(dist[level] for level in QoSLevel)
        assert total == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=14),
    tau=st.floats(min_value=0.1, max_value=8.9),
    mu=st.floats(min_value=0.05, max_value=2.0),
)
def test_property_conditional_distribution_proper(k, tau, mu):
    params = EvaluationParams(
        deadline_minutes=tau, signal_termination_rate=mu, computation_rate=30.0
    )
    geometry = params.constellation.plane_geometry(k)
    for scheme in (Scheme.OAQ, Scheme.BAQ):
        dist = conditional_distribution(geometry, params, scheme)
        assert sum(dist[level] for level in QoSLevel) == pytest.approx(1.0)
        assert all(dist[level] >= 0.0 for level in QoSLevel)
