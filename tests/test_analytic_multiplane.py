"""Tests for repro.analytic.multiplane (best-of-planes composition)."""

import pytest

from repro.analytic.multiplane import best_of_planes, multi_plane_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError


def dist(p3=0.0, p2=0.0, p1=0.0, p0=0.0):
    return QoSDistribution(
        {
            QoSLevel.SIMULTANEOUS_DUAL: p3,
            QoSLevel.SEQUENTIAL_DUAL: p2,
            QoSLevel.SINGLE: p1,
            QoSLevel.MISSED: p0,
        }
    )


class TestBestOfPlanes:
    def test_single_plane_is_identity(self):
        d = dist(p3=0.3, p1=0.6, p0=0.1)
        assert best_of_planes([d]).isclose(d)

    def test_two_plane_hand_computation(self):
        # P(Y=1)=0.5, P(Y=0)=0.5 each: max has P(0)=0.25, P(1)=0.75.
        d = dist(p1=0.5, p0=0.5)
        combined = best_of_planes([d, d])
        assert combined[QoSLevel.MISSED] == pytest.approx(0.25)
        assert combined[QoSLevel.SINGLE] == pytest.approx(0.75)

    def test_mixed_planes(self):
        a = dist(p3=1.0)
        b = dist(p0=1.0)
        combined = best_of_planes([a, b])
        assert combined[QoSLevel.SIMULTANEOUS_DUAL] == pytest.approx(1.0)

    def test_more_planes_stochastically_better(self):
        d = dist(p3=0.2, p2=0.2, p1=0.5, p0=0.1)
        one = best_of_planes([d])
        three = best_of_planes([d] * 3)
        for level in QoSLevel:
            assert three.at_least(level) >= one.at_least(level) - 1e-12

    def test_missing_requires_all_planes_missing(self):
        d = dist(p1=0.9, p0=0.1)
        combined = best_of_planes([d] * 4)
        assert combined[QoSLevel.MISSED] == pytest.approx(0.1**4)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_of_planes([])


class TestMultiPlaneDistribution:
    def test_improves_on_worst_case(self):
        params = EvaluationParams(
            signal_termination_rate=0.2, node_failure_rate_per_hour=1e-4
        )
        single = multi_plane_distribution(
            params, Scheme.OAQ, covering_planes=1, capacity_stages=12
        )
        dual = multi_plane_distribution(
            params, Scheme.OAQ, covering_planes=2, capacity_stages=12
        )
        assert dual.at_least(QoSLevel.SEQUENTIAL_DUAL) > single.at_least(
            QoSLevel.SEQUENTIAL_DUAL
        )

    def test_rejects_zero_planes(self):
        with pytest.raises(ConfigurationError):
            multi_plane_distribution(
                EvaluationParams(), Scheme.OAQ, covering_planes=0
            )
