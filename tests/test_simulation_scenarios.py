"""Tests for repro.simulation.scenarios (end-to-end accuracy by QoS
level with the real estimation stack)."""

import pytest

from repro.core.qos import QoSLevel
from repro.errors import ConfigurationError
from repro.simulation.scenarios import CoverageAccuracyScenario


@pytest.fixture(scope="module")
def results():
    scenario = CoverageAccuracyScenario(
        active_satellites=12, measurements_per_pass=6
    )
    return scenario.run_all_levels(trials=8, seed=2024)


class TestAccuracyOrdering:
    def test_each_level_has_results(self, results):
        for level in (
            QoSLevel.SINGLE,
            QoSLevel.SEQUENTIAL_DUAL,
            QoSLevel.SIMULTANEOUS_DUAL,
        ):
            assert results[level].trials > 0
            assert results[level].median_error_km > 0.0

    def test_sequential_beats_single(self, results):
        assert (
            results[QoSLevel.SEQUENTIAL_DUAL].median_error_km
            < results[QoSLevel.SINGLE].median_error_km
        )

    def test_simultaneous_beats_single(self, results):
        assert (
            results[QoSLevel.SIMULTANEOUS_DUAL].median_error_km
            < results[QoSLevel.SINGLE].median_error_km
        )

    def test_estimated_errors_ordered_too(self, results):
        assert (
            results[QoSLevel.SEQUENTIAL_DUAL].mean_estimated_error_km
            < results[QoSLevel.SINGLE].mean_estimated_error_km
        )


class TestValidation:
    def test_level_zero_rejected(self):
        scenario = CoverageAccuracyScenario()
        with pytest.raises(ConfigurationError):
            scenario.run_level(QoSLevel.MISSED)

    def test_too_few_measurements_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageAccuracyScenario(measurements_per_pass=2)

    def test_too_few_satellites_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageAccuracyScenario(active_satellites=1)
