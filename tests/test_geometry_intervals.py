"""Tests for repro.geometry.intervals (the Figure 6 cycle structure)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.geometry.intervals import CoverageKind, FootprintCycle
from repro.geometry.plane import PlaneGeometry


@pytest.fixture
def overlap_cycle():
    return FootprintCycle(PlaneGeometry.reference(12))  # L1=7.5, L2=1.5


@pytest.fixture
def underlap_cycle():
    return FootprintCycle(PlaneGeometry.reference(9))  # L1=10, L2=1


class TestStructure:
    def test_overlap_cycle_has_alpha_then_beta(self, overlap_cycle):
        kinds = [interval.kind for interval in overlap_cycle.intervals]
        assert kinds == [CoverageKind.SINGLE, CoverageKind.DOUBLE]

    def test_underlap_cycle_has_alpha_then_gap(self, underlap_cycle):
        kinds = [interval.kind for interval in underlap_cycle.intervals]
        assert kinds == [CoverageKind.SINGLE, CoverageKind.GAP]

    def test_tangent_cycle_is_single_interval(self):
        cycle = FootprintCycle(PlaneGeometry.reference(10))  # L2 = 0
        assert len(cycle.intervals) == 1
        assert cycle.intervals[0].kind is CoverageKind.SINGLE

    def test_interval_lengths(self, overlap_cycle):
        alpha, beta = overlap_cycle.intervals
        assert alpha.length == pytest.approx(6.0)
        assert beta.length == pytest.approx(1.5)
        assert overlap_cycle.length == pytest.approx(7.5)

    def test_multiplicity_values(self):
        assert CoverageKind.SINGLE.multiplicity == 1
        assert CoverageKind.DOUBLE.multiplicity == 2
        assert CoverageKind.GAP.multiplicity == 0


class TestQueries:
    def test_coverage_multiplicity_by_position(self, overlap_cycle):
        assert overlap_cycle.coverage_multiplicity(3.0) == 1
        assert overlap_cycle.coverage_multiplicity(6.5) == 2

    def test_positions_wrap_modulo_cycle(self, overlap_cycle):
        assert overlap_cycle.coverage_multiplicity(3.0 + 7.5) == 1
        assert overlap_cycle.coverage_multiplicity(6.5 - 7.5) == 2

    def test_wait_until_double_coverage(self, overlap_cycle):
        assert overlap_cycle.wait_until_double_coverage(2.0) == pytest.approx(4.0)
        assert overlap_cycle.wait_until_double_coverage(6.5) == 0.0

    def test_wait_until_double_rejected_for_underlap(self, underlap_cycle):
        with pytest.raises(ConfigurationError):
            underlap_cycle.wait_until_double_coverage(2.0)

    def test_wait_until_covered(self, underlap_cycle):
        assert underlap_cycle.wait_until_covered(2.0) == 0.0  # inside alpha
        assert underlap_cycle.wait_until_covered(9.5) == pytest.approx(0.5)

    def test_wait_until_covered_always_zero_for_overlap(self, overlap_cycle):
        for position in (0.0, 3.0, 6.9):
            assert overlap_cycle.wait_until_covered(position) == 0.0

    def test_wait_until_next_satellite(self, underlap_cycle):
        # Onset at the end of alpha waits exactly L2; at the start, L1.
        assert underlap_cycle.wait_until_next_satellite(9.0 - 1e-9) == pytest.approx(
            1.0, abs=1e-6
        )
        assert underlap_cycle.wait_until_next_satellite(0.0) == pytest.approx(10.0)


class TestTimeCovered:
    def test_overlap_always_covered(self, overlap_cycle):
        assert overlap_cycle.time_covered_during(1.0, 30.0) == pytest.approx(30.0)

    def test_underlap_full_cycles(self, underlap_cycle):
        # Each 10-minute cycle contains 9 covered minutes.
        assert underlap_cycle.time_covered_during(0.0, 20.0) == pytest.approx(18.0)

    def test_underlap_partial_window_in_gap(self, underlap_cycle):
        covered = underlap_cycle.time_covered_during(9.2, 0.5)
        assert covered == pytest.approx(0.0, abs=1e-9)

    def test_underlap_window_straddling_gap(self, underlap_cycle):
        # From position 8 for 3 minutes: 1 covered (8..9), 1 gap, 1 covered.
        assert underlap_cycle.time_covered_during(8.0, 3.0) == pytest.approx(2.0)

    def test_negative_duration_rejected(self, underlap_cycle):
        with pytest.raises(ConfigurationError):
            underlap_cycle.time_covered_during(0.0, -1.0)


@given(
    k=st.integers(min_value=2, max_value=40),
    position=st.floats(min_value=-100.0, max_value=100.0),
)
def test_property_reduce_lands_in_cycle(k, position):
    cycle = FootprintCycle(PlaneGeometry.reference(k))
    reduced = cycle.reduce(position)
    assert 0.0 <= reduced <= cycle.length


@given(
    k=st.integers(min_value=2, max_value=40),
    position=st.floats(min_value=0.0, max_value=500.0),
    duration=st.floats(min_value=0.0, max_value=200.0),
)
def test_property_covered_time_bounded(k, position, duration):
    cycle = FootprintCycle(PlaneGeometry.reference(k))
    covered = cycle.time_covered_during(position, duration)
    assert -1e-9 <= covered <= duration + 1e-9
