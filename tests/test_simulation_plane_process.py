"""Tests for repro.simulation.plane_process -- the independent DES of
the capacity process, cross-checked against the SAN solution."""

import pytest

from repro.analytic.capacity import CapacityModelConfig, capacity_distribution
from repro.errors import ConfigurationError
from repro.simulation.plane_process import (
    PlaneDegradationSimulation,
    simulate_capacity_distribution,
)


class TestBasicBehaviour:
    def test_distribution_sums_to_one(self):
        config = CapacityModelConfig(failure_rate_per_hour=5e-5)
        distribution = simulate_capacity_distribution(
            config, horizon_hours=3e5, seed=1
        )
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_capacity_never_exceeds_full(self):
        config = CapacityModelConfig(failure_rate_per_hour=1e-4)
        distribution = simulate_capacity_distribution(
            config, horizon_hours=3e5, seed=2
        )
        assert max(distribution) <= config.full_capacity

    def test_threshold_sustains_capacity(self):
        """Below-threshold excursions exist but are brief."""
        config = CapacityModelConfig(failure_rate_per_hour=1e-4, threshold=10)
        distribution = simulate_capacity_distribution(
            config, horizon_hours=1e6, seed=3
        )
        below = sum(p for k, p in distribution.items() if k < 9)
        assert below < 0.02

    def test_rejects_bad_horizon(self):
        config = CapacityModelConfig()
        simulation = PlaneDegradationSimulation(config, seed=0)
        with pytest.raises(ConfigurationError):
            simulation.run(10.0, warmup_hours=20.0)


class TestAgreementWithSAN:
    @pytest.mark.parametrize("lam", [2e-5, 1e-4])
    def test_des_matches_phase_type_solution(self, lam):
        """Two independent implementations of the same process agree on
        P(k) within the Erlang-approximation error plus simulation
        noise (the deterministic scheduled clock is the slowest part of
        the phase-type expansion to converge)."""
        config = CapacityModelConfig(failure_rate_per_hour=lam, threshold=10)
        analytic = capacity_distribution(config, stages=32)
        accumulated = {}
        seeds = (42, 43)
        for seed in seeds:
            simulated = simulate_capacity_distribution(
                config, horizon_hours=2.5e6, warmup_hours=1e5, seed=seed
            )
            for k, p in simulated.items():
                accumulated[k] = accumulated.get(k, 0.0) + p / len(seeds)
        tv = 0.5 * sum(
            abs(analytic.get(k, 0.0) - accumulated.get(k, 0.0))
            for k in set(analytic) | set(accumulated)
        )
        assert tv < 0.04
