"""Micro-benchmarks of the library's computational kernels (these run
multiple rounds, unlike the experiment benchmarks)."""

import numpy as np

from repro.analytic.capacity import CapacityModelConfig, capacity_distribution
from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.schemes import Scheme
from repro.protocol.runner import CenterlineScenario
from repro.simulation.qos_montecarlo import simulate_conditional_distribution


def test_bench_capacity_solve(benchmark):
    """Reachability + Erlang unfolding + sparse steady state."""
    config = CapacityModelConfig(failure_rate_per_hour=5e-5, threshold=10)
    result = benchmark(capacity_distribution, config, stages=24)
    assert abs(sum(result.values()) - 1.0) < 1e-8


def test_bench_conditional_closed_form(benchmark):
    """One closed-form conditional distribution (the Eq. 4/5 kernel)."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(12)
    result = benchmark(conditional_distribution, geometry, params, Scheme.OAQ)
    assert 0.0 < result.at_least(3) < 1.0


def test_bench_vectorized_sampler(benchmark):
    """100k-sample vectorised Monte-Carlo classification."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(12)
    result = benchmark(
        simulate_conditional_distribution,
        geometry,
        params,
        Scheme.OAQ,
        samples=100_000,
        seed=1,
    )
    assert abs(sum(result.as_dict().values()) - 1.0) < 1e-9


def test_bench_protocol_episode(benchmark):
    """One full message-passing coordination episode."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(9)

    def episode():
        scenario = CenterlineScenario(
            geometry, params, onset_position=8.0, signal_duration=6.0, seed=1
        )
        return scenario.run()

    outcome = benchmark(episode)
    assert outcome.official_alert is not None
