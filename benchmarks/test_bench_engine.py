"""Micro-benchmarks of the library's computational kernels (these run
multiple rounds, unlike the experiment benchmarks)."""

import numpy as np

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_cache_stats,
    capacity_caches_disabled,
    capacity_distribution,
    clear_capacity_caches,
)
from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.schemes import Scheme
from repro.experiments.engine import SweepRunner
from repro.protocol.runner import CenterlineScenario
from repro.simulation.qos_montecarlo import simulate_conditional_distribution


def test_bench_capacity_solve(benchmark):
    """Reachability + Erlang unfolding + sparse steady state (cache
    bypassed: this measures the actual solve)."""
    config = CapacityModelConfig(failure_rate_per_hour=5e-5, threshold=10)

    def solve():
        with capacity_caches_disabled():
            return capacity_distribution(config, stages=24)

    result = benchmark(solve)
    assert abs(sum(result.values()) - 1.0) < 1e-8


def test_bench_capacity_solve_memoized(benchmark):
    """The cache-hit path the experiment engine rides: key lookup plus
    a defensive dict copy, no SAN pipeline."""
    config = CapacityModelConfig(failure_rate_per_hour=5e-5, threshold=10)
    clear_capacity_caches()
    capacity_distribution(config, stages=24)  # warm the cache
    before = capacity_cache_stats()["distribution"]
    result = benchmark(capacity_distribution, config, stages=24)
    after = capacity_cache_stats()["distribution"]
    assert abs(sum(result.values()) - 1.0) < 1e-8
    assert after.misses == before.misses  # every benchmark round hit
    assert after.hits > before.hits


def test_bench_sweep_runner_dispatch_overhead(benchmark):
    """Sequential SweepRunner bookkeeping on a trivial grid (the cost
    floor the engine adds on top of the per-point work)."""
    points = [{"x": float(i)} for i in range(64)]
    runner = SweepRunner(n_jobs=1)
    rows = benchmark(runner.map_rows, _identity_row, points)
    assert [row["x"] for row in rows] == [float(i) for i in range(64)]


def _identity_row(point):
    return {"x": point["x"]}


def test_bench_conditional_closed_form(benchmark):
    """One closed-form conditional distribution (the Eq. 4/5 kernel)."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(12)
    result = benchmark(conditional_distribution, geometry, params, Scheme.OAQ)
    assert 0.0 < result.at_least(3) < 1.0


def test_bench_vectorized_sampler(benchmark):
    """100k-sample vectorised Monte-Carlo classification."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(12)
    result = benchmark(
        simulate_conditional_distribution,
        geometry,
        params,
        Scheme.OAQ,
        samples=100_000,
        seed=1,
    )
    assert abs(sum(result.as_dict().values()) - 1.0) < 1e-9


def test_bench_protocol_episode(benchmark):
    """One full message-passing coordination episode."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(9)

    def episode():
        scenario = CenterlineScenario(
            geometry, params, onset_position=8.0, signal_duration=6.0, seed=1
        )
        return scenario.run()

    outcome = benchmark(episode)
    assert outcome.official_alert is not None
