"""Benchmark ``fig7``: regenerate Figure 7 (P(K=k) vs lambda)."""

from repro.experiments import fig7


def test_bench_fig7(run_once):
    result = run_once(fig7.run)
    print()
    print(result.render())
    first, last = result.rows[0], result.rows[-1]
    capacities = range(9, 15)
    # Paper shape: P(14) dominates at 1e-5, P(10) at 1e-4, P(9) small.
    assert first["P(K=14)"] == max(first[f"P(K={k})"] for k in capacities)
    assert last["P(K=10)"] == max(last[f"P(K={k})"] for k in capacities)
    assert last["P(K=9)"] < 0.2
    # P(10) rises monotonically with lambda.
    p10 = [row["P(K=10)"] for row in result.rows]
    assert p10 == sorted(p10)
