"""Benchmark ``eq2-M``: regenerate the Eq. (2) geometry table."""

from repro.experiments import geometry_exp


def test_bench_geometry(run_once):
    result = run_once(geometry_exp.run)
    print()
    print(result.render())
    for row in result.rows:
        if row["I[k]"] == 0 and row["L2[k]"] < 5.0:
            assert row["M[k] (tau=5.0)"] == 2
