"""Benchmark ``ablation-phases``: Erlang-stage ablation of the
deterministic timers in the capacity SAN."""

from repro.experiments import san_ablation


def test_bench_san_ablation(run_once):
    result = run_once(
        san_ablation.run,
        stage_grid=(1, 2, 4, 8, 16, 24, 32),
        lam=5e-5,
        simulate=True,
        horizon_hours=1.5e6,
        seed=11,
    )
    print()
    print(result.render())
    by_stage = {row["stages"]: row["TV vs max stages"] for row in result.rows}
    # Monotone convergence of the phase-type approximation.
    assert by_stage[1] > by_stage[8] > by_stage[32] - 1e-12
    # No deterministic-timer support (stage 1 / exponential) is clearly
    # worse than a modest Erlang expansion.
    assert by_stage["exp (no det support)"] > by_stage[16]
