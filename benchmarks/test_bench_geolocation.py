"""Benchmark ``geoloc``: geolocation accuracy per coverage pattern
(the Section 3.1 premise, with the real WLS stack)."""

from repro.experiments import geolocation_exp


def test_bench_geolocation(run_once):
    result = run_once(geolocation_exp.run, trials=10, seed=99)
    print()
    print(result.render())
    by_level = {row["QoS level"]: row for row in result.rows}
    assert by_level[2]["median error (km)"] < by_level[1]["median error (km)"]
    assert by_level[3]["median error (km)"] < by_level[1]["median error (km)"]
