"""Benchmark ``vector-batch``: the vectorized-replication acceptance
guard.

The protocol-level QoS sampler must be at least **50x faster** through
the struct-of-arrays engine of :mod:`repro.simulation.vector`
(``engine="vector"``) than through the PR 4 batched scalar path
(``engine="batch"``, one Python event loop per replication),
aggregated over the four protocol branches (k=9/k=12 x OAQ/BAQ).
Before timing anything, the vector path is pinned **exactly** against
the scalar oracle on shared tapes for every cell -- the engine's
correctness contract, not a statistical check -- and a Wilson sanity
check keeps the distributions honest.  A 10^6-replication QoS-surface
demo cell must complete in under 60 s single-core.

The per-run numbers (times, aggregate speedup, per-cell ratios,
fallback fractions, million-replication throughput) are written to
``BENCH_vector_batch.json`` at the repository root so CI can archive
them as an artifact.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.faults.stats import wilson_interval
from repro.simulation.batch import ScenarioTemplate
from repro.simulation.qos_montecarlo import (
    draw_signal_variates,
    simulate_conditional_distribution_protocol,
)
from repro.simulation.vector import (
    draw_protocol_tapes,
    reset_vector_batch_stats,
    scalar_reference_levels,
    vector_batch_stats,
)

#: Samples per (k, scheme) cell for the speedup comparison -- enough to
#: amortise the template build on the scalar side without making the
#: scalar baseline dominate the benchmark job.
SAMPLES = 4_000
#: The million-replication demo cell (single template, single core).
MILLION = 1_000_000
SEED = 1337
CELLS = [
    (capacity, scheme)
    for capacity in (9, 12)
    for scheme in (Scheme.OAQ, Scheme.BAQ)
]

REPO_ROOT = Path(__file__).resolve().parent.parent


def _exactness_mismatches(params, capacity, scheme, count, seed):
    """Vector-vs-oracle mismatches on shared signal draws and tapes
    (must be zero -- the engine's correctness contract)."""
    geometry = params.constellation.plane_geometry(capacity)
    template = ScenarioTemplate(geometry, params, scheme=scheme)
    child = np.random.SeedSequence(seed)
    rng_vector = np.random.default_rng(child)
    rng_oracle = np.random.default_rng(child)
    onsets, durations, _ = draw_signal_variates(
        geometry, params, count, rng_vector
    )
    draw_signal_variates(geometry, params, count, rng_oracle)
    levels, detected = template.sample_levels(
        rng_vector, onsets, durations, engine="vector"
    )
    tapes = draw_protocol_tapes(template, rng_oracle, count)
    oracle_levels, oracle_detected = scalar_reference_levels(
        template, onsets, durations, tapes
    )
    return int(np.count_nonzero(levels != oracle_levels)) + int(
        np.count_nonzero(detected != oracle_detected)
    )


def test_bench_vector_batch_speedup_vs_batched_scalar(run_once):
    """Acceptance guard: vector engine >= 50x the batched scalar path
    over all four branches, exact against the oracle, and 10^6
    replications of one cell in under 60 s."""
    params = EvaluationParams(signal_termination_rate=0.2)

    # Correctness before speed: exact conformance per cell.
    mismatches = {
        (capacity, scheme): _exactness_mismatches(
            params, capacity, scheme, 2_000, SEED
        )
        for capacity, scheme in CELLS
    }

    batched = {}
    batched_seconds = 0.0
    for capacity, scheme in CELLS:
        geometry = params.constellation.plane_geometry(capacity)
        start = time.perf_counter()
        batched[(capacity, scheme)] = simulate_conditional_distribution_protocol(
            geometry, params, scheme, samples=SAMPLES, seed=SEED
        )
        batched_seconds += time.perf_counter() - start

    reset_vector_batch_stats()

    def vector_sweep():
        results = {}
        cell_seconds = {}
        for capacity, scheme in CELLS:
            geometry = params.constellation.plane_geometry(capacity)
            start = time.perf_counter()
            results[(capacity, scheme)] = (
                simulate_conditional_distribution_protocol(
                    geometry,
                    params,
                    scheme,
                    samples=SAMPLES,
                    seed=SEED,
                    engine="vector",
                )
            )
            cell_seconds[(capacity, scheme)] = time.perf_counter() - start
        return results, cell_seconds

    start = time.perf_counter()
    vectored, cell_seconds = run_once(vector_sweep)
    vector_seconds = time.perf_counter() - start
    sweep_stats = vector_batch_stats()

    speedup = batched_seconds / vector_seconds

    # Wilson sanity: the two engines consume the generator in different
    # orders, so the pin is statistical (the exact pin above is the
    # bitwise one, against the oracle on shared tapes).
    consistent = True
    for cell, vector_distribution in vectored.items():
        for level in QoSLevel:
            count = round(vector_distribution[level] * SAMPLES)
            interval = wilson_interval(count, SAMPLES, confidence=0.999)
            batched_rate = batched[cell][level]
            slack = 0.03  # the batched estimate's own sampling noise
            if not (
                interval.low - slack <= batched_rate <= interval.high + slack
            ):
                consistent = False

    # The 10^6-replication demo cell: one underlapping OAQ template,
    # single core, must come in under a minute.
    geometry = params.constellation.plane_geometry(9)
    template = ScenarioTemplate(geometry, params, scheme=Scheme.OAQ)
    rng = np.random.default_rng(np.random.SeedSequence(SEED))
    onsets, durations, _ = draw_signal_variates(
        geometry, params, MILLION, rng
    )
    reset_vector_batch_stats()
    start = time.perf_counter()
    levels, _ = template.sample_levels(rng, onsets, durations, engine="vector")
    million_seconds = time.perf_counter() - start
    million_stats = vector_batch_stats()
    million_counts = np.bincount(levels, minlength=4)

    payload = {
        "samples_per_cell": SAMPLES,
        "cells": [f"k={capacity}/{scheme.name}" for capacity, scheme in CELLS],
        "batched_s": round(batched_seconds, 4),
        "vector_s": round(vector_seconds, 4),
        "speedup": round(speedup, 2),
        "per_cell_vector_s": {
            f"k={capacity}/{scheme.name}": round(seconds, 4)
            for (capacity, scheme), seconds in cell_seconds.items()
        },
        "exact_mismatches": {
            f"k={capacity}/{scheme.name}": count
            for (capacity, scheme), count in mismatches.items()
        },
        "sweep_fallback_fraction": sweep_stats["fallback_fraction"],
        "wilson_consistent": consistent,
        "million_cell": {
            "replications": MILLION,
            "seconds": round(million_seconds, 4),
            "replications_per_sec": round(MILLION / million_seconds),
            "fallback_fraction": million_stats["fallback_fraction"],
            "level_counts": [int(count) for count in million_counts[:4]],
        },
    }
    (REPO_ROOT / "BENCH_vector_batch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\nbatched scalar {batched_seconds:.2f}s vs vector "
        f"{vector_seconds:.3f}s -> {speedup:.0f}x over "
        f"{len(CELLS)} cells x {SAMPLES} samples; "
        f"1e6 replications in {million_seconds:.2f}s "
        f"({MILLION / million_seconds:,.0f}/s)"
    )

    assert all(count == 0 for count in mismatches.values()), (
        f"vector engine diverged from the scalar oracle: {mismatches}"
    )
    assert consistent, "vector distribution outside batched Wilson bounds"
    assert speedup >= 50.0, (
        f"vector speedup {speedup:.1f}x below the 50x floor "
        f"(batched {batched_seconds:.3f}s, vector {vector_seconds:.3f}s)"
    )
    assert million_seconds < 60.0, (
        f"10^6-replication demo cell took {million_seconds:.1f}s "
        "(floor: under 60 s single-core)"
    )
