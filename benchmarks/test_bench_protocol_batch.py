"""Benchmark ``protocol-batch``: the batched-replication acceptance
guard.

The protocol-level QoS sampler must be at least **3x faster** through
the batched :class:`~repro.simulation.batch.ScenarioTemplate` path --
one template per (k, scheme) cell, replayed with a shared generator
and early-stopped at the first ground alert -- than the seed's
per-sample ``CenterlineScenario`` construction, aggregated over the
four protocol branches (k=9/k=12 x OAQ/BAQ).  The batched distribution
must stay statistically consistent with the legacy path: every legacy
level frequency inside the batch estimate's 99.9% Wilson interval
(the shared-generator path is not draw-order compatible with per-seed
scenarios, so the pin is statistical, not bitwise -- see
``docs/SIMULATION.md``).

The per-run numbers (times, aggregate speedup, per-cell ratios, stage
timings) are written to ``BENCH_protocol_batch.json`` at the
repository root so CI can archive them as an artifact.
"""

import json
import time
from pathlib import Path

from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.faults.stats import wilson_interval
from repro.simulation.batch import (
    batch_stage_timings,
    reset_batch_stage_timings,
)
from repro.simulation.qos_montecarlo import (
    simulate_conditional_distribution_protocol,
)

#: Samples per (k, scheme) cell -- enough to amortise the template
#: build and give the Wilson consistency check statistical teeth.
SAMPLES = 2_000
SEED = 1337
CELLS = [
    (capacity, scheme)
    for capacity in (9, 12)
    for scheme in (Scheme.OAQ, Scheme.BAQ)
]

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_bench_protocol_batch_speedup_vs_per_sample_scenarios(run_once):
    """Acceptance guard: batched sampler >= 3x the per-sample path
    aggregated over all four branches, distributions Wilson-consistent."""
    params = EvaluationParams(signal_termination_rate=0.2)

    legacy = {}
    legacy_seconds = 0.0
    for capacity, scheme in CELLS:
        geometry = params.constellation.plane_geometry(capacity)
        start = time.perf_counter()
        legacy[(capacity, scheme)] = simulate_conditional_distribution_protocol(
            geometry, params, scheme, samples=SAMPLES, seed=SEED, batched=False
        )
        legacy_seconds += time.perf_counter() - start

    reset_batch_stage_timings()

    def batched_sweep():
        results = {}
        cell_seconds = {}
        for capacity, scheme in CELLS:
            geometry = params.constellation.plane_geometry(capacity)
            start = time.perf_counter()
            results[(capacity, scheme)] = (
                simulate_conditional_distribution_protocol(
                    geometry, params, scheme, samples=SAMPLES, seed=SEED
                )
            )
            cell_seconds[(capacity, scheme)] = time.perf_counter() - start
        return results, cell_seconds

    start = time.perf_counter()
    batched, cell_seconds = run_once(batched_sweep)
    batched_seconds = time.perf_counter() - start

    speedup = legacy_seconds / batched_seconds
    stage_timings = batch_stage_timings()

    consistent = True
    for cell, batch_distribution in batched.items():
        for level in QoSLevel:
            count = round(batch_distribution[level] * SAMPLES)
            interval = wilson_interval(count, SAMPLES, confidence=0.999)
            legacy_rate = legacy[cell][level]
            slack = 0.03  # the legacy estimate's own sampling noise
            if not (
                interval.low - slack <= legacy_rate <= interval.high + slack
            ):
                consistent = False

    payload = {
        "samples_per_cell": SAMPLES,
        "cells": [f"k={capacity}/{scheme.name}" for capacity, scheme in CELLS],
        "legacy_s": round(legacy_seconds, 4),
        "batched_s": round(batched_seconds, 4),
        "speedup": round(speedup, 2),
        "per_cell_batched_s": {
            f"k={capacity}/{scheme.name}": round(seconds, 4)
            for (capacity, scheme), seconds in cell_seconds.items()
        },
        "stage_timings": {k: round(v, 4) for k, v in stage_timings.items()},
        "wilson_consistent": consistent,
    }
    (REPO_ROOT / "BENCH_protocol_batch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\nper-sample scenarios {legacy_seconds:.2f}s vs batched "
        f"{batched_seconds:.2f}s -> {speedup:.1f}x over "
        f"{len(CELLS)} cells x {SAMPLES} samples"
    )
    print(f"batch stage timings: {payload['stage_timings']}")

    # Correctness before speed: the batched estimate must agree with
    # the per-sample reference on every cell and level.
    assert consistent, "batched distribution outside legacy Wilson bounds"
    assert speedup >= 3.0, (
        f"batched speedup {speedup:.2f}x below the 3x floor "
        f"(legacy {legacy_seconds:.3f}s, batched {batched_seconds:.3f}s)"
    )
