"""Benchmarks for the extension studies: transient aging, duration-
distribution robustness, and the group-membership protocol."""

import pytest

from repro.experiments import aging_exp, robustness_exp
from repro.protocol.membership import MembershipGroup


def test_bench_aging(run_once):
    result = run_once(aging_exp.run)
    print()
    print(result.render())
    p14 = [row["P(K=14)"] for row in result.rows]
    assert p14[0] == pytest.approx(1.0)
    # Degradation dominates until the (Erlang-smeared) scheduled
    # restore starts pulling mass back near the end of the period.
    assert p14[:5] == sorted(p14[:5], reverse=True)
    assert p14[-1] > p14[-2]


def test_bench_robustness(run_once):
    result = run_once(robustness_exp.run)
    print()
    print(result.render())
    for row in result.rows:
        assert row["OAQ P(Y>=2)"] >= row["BAQ P(Y>=2)"] - 1e-12


def _membership_round_trip() -> bool:
    group = MembershipGroup([f"S{i}" for i in range(1, 11)])
    group.run_for(2.0)
    group.fail("S4")
    group.run_for(10.0)
    removed = "S4" not in group.agreed_view()
    group.restore("S4")
    group.run_for(10.0)
    return removed and "S4" in group.agreed_view()


def test_bench_membership(run_once):
    assert run_once(_membership_round_trip)


def test_bench_multiplane(run_once):
    from repro.experiments import multiplane_exp

    result = run_once(multiplane_exp.run, lambdas=(1e-5, 1e-4), stages=12)
    print()
    print(result.render())
    # More covering planes, better QoS, at every lambda.
    by_lambda = {}
    for row in result.rows:
        by_lambda.setdefault(row["lambda"], []).append(row["OAQ P(Y>=2)"])
    for values in by_lambda.values():
        assert values == sorted(values)


def test_bench_calibration(run_once):
    from repro.experiments import calibration_exp

    result = run_once(
        calibration_exp.run, latencies_hours=(24.0, 168.0, 720.0), stages=12
    )
    print()
    print(result.render())
    errors = {row["latency (h)"]: row["max |err|"] for row in result.rows}
    assert errors[168.0] < errors[720.0]
