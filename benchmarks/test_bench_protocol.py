"""Benchmark ``protocol``: the Figures 3-4 protocol properties."""

from repro.experiments import protocol_exp


def test_bench_protocol(run_once):
    result = run_once(protocol_exp.run, samples=300, seed=4242)
    print()
    print(result.render())
    rows = {row["configuration"]: row for row in result.rows}
    healthy = rows["done-propagation, healthy"]
    failed = rows["done-propagation, successor fail-silent"]
    assert healthy["timely (<= tau)"] == healthy["detected"]
    assert failed["timely (<= tau)"] == failed["detected"]
    lossy = rows["successor-responsibility, successor fail-silent"]
    assert lossy["alerts delivered"] < lossy["detected"]
    for row in result.rows:
        assert row["max timely chain"] <= row["chain bound M[k]"]
