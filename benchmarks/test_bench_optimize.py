"""Benchmark ``optimize``: quotient-vs-unlumped throughput guard.

Evaluates a small design subgrid twice through
:func:`~repro.analytic.capacity.capacity_distribution_expanded` -- once
on the symmetry-lumped quotient chain (the optimizer's production
path), once with ``lump=False`` on the raw per-satellite chain -- and
guards

* correctness: both paths agree on every capacity distribution to
  1e-9, and the lumped pass reports zero unexplained (structure)
  fallbacks via the optimizer's per-cell counters;
* throughput: the quotient path must sustain at least
  :data:`MIN_SPEEDUP` times the unlumped cells/sec on the same grid.
  The quotient collapses the per-satellite product space to capacity
  counts, so the margin is typically two orders of magnitude, not a
  rounding error.

The per-run numbers (per-cell seconds on both paths, aggregate
speedup, fallback scorecard) are written to ``BENCH_optimize.json`` at
the repository root so CI can archive them as an artifact.
"""

import json
import time
from pathlib import Path

from repro.analytic.capacity import (
    capacity_distribution_expanded,
    clear_capacity_caches,
)
from repro.optimize import (
    DesignPoint,
    GroundSparePolicy,
    classify_fallbacks,
    evaluate_cell,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Quotient-vs-unlumped cells/sec floor.  Local runs show ~100-500x on
#: this grid; 10x is the acceptance bar and catches a lumping path that
#: silently degrades to the full chain.
MIN_SPEEDUP = 10.0

#: Benchmark stage depth: Erlang stage unfolding multiplies the
#: unlumped state space, so the bench pins stages=1 to keep the raw
#: chain solvable in seconds while preserving the state-space ratio
#: the speedup measures.
STAGES = 1


def bench_grid():
    """Six cells at full_capacity=10 crossing every policy kind and the
    repair-present/absent axis -- big enough that the unlumped chain
    hurts, small enough that it finishes."""
    variants = [
        ("combined", 2, None),
        ("combined", 1, 5e-4),
        ("threshold", 1, None),
        ("threshold", 1, 5e-4),
        ("scheduled", 2, None),
        ("scheduled", 1, 5e-4),
    ]
    return [
        DesignPoint(
            plane_scale=1,
            full_capacity=10,
            failure_rate_per_hour=1e-4,
            policy=GroundSparePolicy(
                kind=kind,
                in_orbit_spares=spares,
                threshold=8,
                repair_rate_per_hour=rho,
            ),
        )
        for kind, spares, rho in variants
    ]


def _lumped_pass(cells):
    clear_capacity_caches(reset_stats=True)
    rows = []
    distributions = []
    per_cell = []
    for cell in cells:
        start = time.perf_counter()
        rows.append(evaluate_cell(cell, stages=STAGES))
        per_cell.append(time.perf_counter() - start)
        # Cache hit: re-reads the distribution just solved above.
        distributions.append(
            capacity_distribution_expanded(
                cell.config(), stages=STAGES, lump=True
            )
        )
    return rows, distributions, per_cell


def _unlumped_pass(cells):
    clear_capacity_caches(reset_stats=True)
    distributions = []
    per_cell = []
    for cell in cells:
        start = time.perf_counter()
        distributions.append(
            capacity_distribution_expanded(
                cell.config(), stages=STAGES, lump=False
            )
        )
        per_cell.append(time.perf_counter() - start)
    return distributions, per_cell


def test_bench_optimize_quotient_speedup(run_once):
    """Acceptance guard: >= MIN_SPEEDUP cells/sec on the quotient vs
    the unlumped chain, zero unexplained fallbacks, payload written to
    BENCH_optimize.json."""
    cells = bench_grid()

    rows, lumped, lumped_seconds = run_once(_lumped_pass, cells)
    raw, unlumped_seconds = _unlumped_pass(cells)

    lumped_total = sum(lumped_seconds)
    unlumped_total = sum(unlumped_seconds)
    speedup = unlumped_total / lumped_total
    scorecard = classify_fallbacks(rows)

    # Both paths solve the same chain: distributions must agree.
    for pk_lumped, pk_raw in zip(lumped, raw):
        for k in set(pk_lumped) | set(pk_raw):
            assert abs(
                pk_lumped.get(k, 0.0) - pk_raw.get(k, 0.0)
            ) <= 1e-9

    payload = {
        "benchmark": "optimize",
        "cells": len(cells),
        "stages": STAGES,
        "lumped_seconds": lumped_total,
        "unlumped_seconds": unlumped_total,
        "lumped_cells_per_sec": len(cells) / lumped_total,
        "unlumped_cells_per_sec": len(cells) / unlumped_total,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "per_cell_lumped_seconds": lumped_seconds,
        "per_cell_unlumped_seconds": unlumped_seconds,
        "fallbacks": {
            "clean": scorecard["clean"],
            "explained": len(scorecard["explained"]),
            "unexplained": len(scorecard["unexplained"]),
        },
    }
    (REPO_ROOT / "BENCH_optimize.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert scorecard["unexplained"] == []
    assert speedup >= MIN_SPEEDUP, (
        f"quotient speedup {speedup:.1f}x below the {MIN_SPEEDUP}x guard "
        f"(lumped {lumped_total:.2f}s vs unlumped {unlumped_total:.2f}s)"
    )
