"""Benchmark ``tau-sweep``: QoS measure vs deadline (Section 4.3
in-text study), plus the engine-vs-seed speedup guard.

The sweep's capacity distribution is independent of ``tau``, so the
memoized engine performs one SAN solve for the whole grid where the
seed re-solved per point.  The guard times both paths (the seed
behaviour is recovered with ``capacity_caches_disabled``) and asserts
the engine is at least 3x faster.
"""

import time

from repro.analytic.capacity import (
    capacity_cache_stats,
    capacity_caches_disabled,
    clear_capacity_caches,
)
from repro.experiments import sweeps


def test_bench_tau_sweep(run_once):
    clear_capacity_caches()
    result = run_once(sweeps.run_tau_sweep)
    print()
    print(result.render())
    timings = {k: round(v, 3) for k, v in result.timings.items()}
    print(f"stage timings: {timings}")
    oaq = [row["OAQ P(Y>=2)"] for row in result.rows]
    baq = [row["BAQ P(Y>=2)"] for row in result.rows]
    # OAQ keeps exploiting extra time allowance; BAQ saturates.
    assert oaq == sorted(oaq)
    assert oaq[-1] > oaq[0] + 0.2
    assert max(baq) - min(baq) < 0.01


def test_bench_tau_sweep_speedup_vs_per_point_resolve(run_once):
    """Acceptance guard: memoized engine >= 3x the seed's re-solve path."""
    clear_capacity_caches()
    with capacity_caches_disabled():
        start = time.perf_counter()
        baseline_result = sweeps.run_tau_sweep()
        baseline = time.perf_counter() - start

    clear_capacity_caches()
    before = capacity_cache_stats()["distribution"]
    start = time.perf_counter()
    engine_result = run_once(sweeps.run_tau_sweep)
    engine = time.perf_counter() - start
    after = capacity_cache_stats()["distribution"]

    # The engine path solves its one capacity chain with the
    # warm-startable iterative solver, the disabled-cache baseline with
    # the direct factorisation; the two agree to the re-rate contract's
    # 1e-12, not bit-for-bit.
    assert len(engine_result.rows) == len(baseline_result.rows)
    for engine_row, baseline_row in zip(
        engine_result.rows, baseline_result.rows
    ):
        assert engine_row.keys() == baseline_row.keys()
        for key, engine_value in engine_row.items():
            baseline_value = baseline_row[key]
            if isinstance(engine_value, float):
                assert abs(engine_value - baseline_value) <= 1e-12, (
                    f"{key}: {engine_value!r} vs {baseline_value!r}"
                )
            else:
                assert engine_value == baseline_value
    assert after.misses - before.misses == 1  # one solve for 9 taus
    speedup = baseline / engine
    print(
        f"\nper-point re-solve {baseline:.2f}s vs engine {engine:.2f}s "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"engine speedup {speedup:.2f}x below the 3x floor "
        f"(baseline {baseline:.3f}s, engine {engine:.3f}s)"
    )
