"""Benchmark ``tau-sweep``: QoS measure vs deadline (Section 4.3
in-text study)."""

from repro.experiments import sweeps


def test_bench_tau_sweep(run_once):
    result = run_once(sweeps.run_tau_sweep)
    print()
    print(result.render())
    oaq = [row["OAQ P(Y>=2)"] for row in result.rows]
    baq = [row["BAQ P(Y>=2)"] for row in result.rows]
    # OAQ keeps exploiting extra time allowance; BAQ saturates.
    assert oaq == sorted(oaq)
    assert oaq[-1] > oaq[0] + 0.2
    assert max(baq) - min(baq) < 0.01
