"""Benchmark ``lumping``: the symmetry-quotient acceptance guard.

The per-satellite **expanded** capacity SAN
(:func:`repro.analytic.capacity.build_capacity_san_expanded`) makes the
paper's plane explicit -- one place per satellite -- and its tangible
space grows to 16,386 markings at paper size.  The verified symmetry
quotient (:mod:`repro.san.lumping`) collapses those to 17 orbit
representatives.  This guard pins both contract numbers on a
paper-size ``lambda`` sweep:

* **>= 5x state reduction** (measured: ~964x), and
* **>= 3x end-to-end speedup** of the lumped sweep over the unlumped
  expanded sweep, with both paths using the PR-3 machinery (shared
  topology, re-rate per point, warm-started solves) so the speedup is
  attributable to lumping alone,

while agreeing with the unlumped answer on every ``P(k)`` to 1e-12.

Numbers land in ``BENCH_lumping.json`` at the repository root for the
CI artifact.
"""

import json
import time
from pathlib import Path

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_distribution_expanded,
    capacity_solver_stats,
    capacity_stage_timings,
    clear_capacity_caches,
    expanded_capacity_summary,
)

#: Erlang stages for the deterministic timers.  The contract is about
#: state-space size, so one stage keeps the unlumped baseline (16,386
#: states) solvable in benchmark time; the quotient is exact at any
#: stage count (see the ablation's lumped column for stages up to 32).
STAGES = 1

POINTS = 6

REPO_ROOT = Path(__file__).resolve().parent.parent


def _sweep_configs():
    return [
        CapacityModelConfig(failure_rate_per_hour=i * 9.6e-5 / POINTS)
        for i in range(1, POINTS + 1)
    ]


def test_bench_lumping_speedup_and_reduction(run_once):
    """Acceptance guard: >= 5x state reduction, >= 3x sweep speedup,
    P(k) agreement <= 1e-12 between lumped and unlumped."""
    configs = _sweep_configs()

    clear_capacity_caches(reset_stats=True)
    start = time.perf_counter()
    baseline = [
        capacity_distribution_expanded(config, stages=STAGES, lump=False)
        for config in configs
    ]
    baseline_seconds = time.perf_counter() - start
    baseline_stats = capacity_solver_stats()

    clear_capacity_caches(reset_stats=True)

    def lumped_sweep():
        return [
            capacity_distribution_expanded(config, stages=STAGES, lump=True)
            for config in configs
        ]

    start = time.perf_counter()
    lumped = run_once(lumped_sweep)
    lumped_seconds = time.perf_counter() - start

    stats = capacity_solver_stats()
    timings = capacity_stage_timings()
    summary = expanded_capacity_summary(configs[0], stages=STAGES)
    reduction = summary["marking_reduction"]

    max_deviation = max(
        abs(baseline_row.get(k, 0.0) - lumped_row.get(k, 0.0))
        for baseline_row, lumped_row in zip(baseline, lumped)
        for k in set(baseline_row) | set(lumped_row)
    )
    speedup = baseline_seconds / lumped_seconds

    payload = {
        "points": POINTS,
        "stages": STAGES,
        "orbit_representatives": summary["orbit_representatives"],
        "full_tangible_markings": summary["full_tangible_markings"],
        "state_reduction": round(reduction, 1),
        "unlumped_s": round(baseline_seconds, 4),
        "lumped_s": round(lumped_seconds, 4),
        "speedup": round(speedup, 2),
        "max_pk_deviation": max_deviation,
        "baseline_solver_stats": baseline_stats,
        "lumped_solver_stats": stats,
        "stage_timings": {k: round(v, 4) for k, v in timings.items()},
    }
    (REPO_ROOT / "BENCH_lumping.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\nunlumped {baseline_seconds:.2f}s vs lumped {lumped_seconds:.2f}s "
        f"-> {speedup:.1f}x; states {summary['full_tangible_markings']} -> "
        f"{summary['orbit_representatives']} ({reduction:.0f}x); "
        f"max |dP(k)| = {max_deviation:.2e}"
    )
    print(f"lumped solver stats: {stats}")

    # Correctness before speed: the quotient answer must match the full
    # expanded chain at contract tolerance on every sweep point.
    assert max_deviation <= 1e-12, (
        f"lumped sweep deviates from unlumped by {max_deviation:.3e}"
    )
    # The lumped path never fell back to the unlumped chain.
    assert stats["structure_fallbacks"] == 0
    assert reduction >= 5.0, (
        f"state reduction {reduction:.1f}x below the 5x floor"
    )
    assert speedup >= 3.0, (
        f"lumping speedup {speedup:.2f}x below the 3x floor "
        f"(unlumped {baseline_seconds:.3f}s, lumped {lumped_seconds:.3f}s)"
    )
