"""Benchmark ``text-4.3``: the paper's in-text numerical anchors."""

import pytest

from repro.experiments import text_results


def test_bench_text_anchors(run_once):
    result = run_once(text_results.run)
    print()
    print(result.render())
    for row in result.rows:
        assert float(row["measured"]) == pytest.approx(
            float(row["paper"]), abs=0.04
        ), row["anchor"]
