"""Benchmark ``orbits``: constellation constants and the latitude
coverage profile (Figure 1 / Section 4.1)."""

import pytest

from repro.experiments import orbits_exp


def test_bench_orbits_constants(run_once):
    result = run_once(orbits_exp.run_constants)
    print()
    print(result.render())
    for row in result.rows:
        assert row["measured"] == pytest.approx(row["published"], rel=0.05)


def test_bench_latitude_profile(run_once):
    result = run_once(orbits_exp.run_latitude_profile)
    print()
    print(result.render())
    overlapped = [row["overlapped fraction"] for row in result.rows]
    assert overlapped[-1] > overlapped[0]
    assert all(row["covered fraction"] == 1.0 for row in result.rows)
