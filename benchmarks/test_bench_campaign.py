"""Benchmark ``campaign``: affinity-sharded orchestrator locality and
parallel-efficiency guard.

Runs the 24-cell optimize smoke grid three ways:

* ``sequential`` -- the legacy in-process loop (baseline wall time and
  the reference rows);
* ``affinity`` -- the campaign orchestrator with topology-group
  affinity chunks (the production scheduling: one chunk per SAN
  topology, chunk-isolated caches, byte-identical merges);
* ``per_point`` -- the orchestrator degraded to one point per chunk,
  measured twice: cache-isolated (what byte-identical scheduling costs
  *without* affinity sharding) and with warm worker caches
  (``isolate=False`` -- the legacy per-point pool's behaviour).

and guards

* correctness: the affinity pass reproduces the sequential rows
  exactly, and the per-point passes agree numerically (their
  warm-start lineage differs -- the divergence affinity chunking is
  there to remove);
* locality: the affinity pass assembles each topology exactly once
  (assemble misses == topology groups), while per-point isolated
  scheduling pays one assembly per *cell* -- the cache-hit evidence
  that affinity sharding, not luck, keeps chunk isolation cheap;
* submissions: the affinity pass submits per chunk, not per point;
* parallel efficiency: on machines with >= 8 CPUs the 8-worker
  affinity pass must beat the sequential baseline by
  :data:`MIN_SPEEDUP_8WORKER`; on smaller runners (CI included) the
  speedup is recorded but not asserted.

The per-run numbers (pass wall times, speedup, parallel efficiency,
chunks stolen, per-cache hit/miss sums for every pass) are written to
``BENCH_campaign.json`` at the repository root so CI can archive them
as an artifact.
"""

import functools
import json
import math
import os
import time
from pathlib import Path

from repro.analytic.capacity import clear_capacity_caches
from repro.campaign import CampaignRunner
from repro.experiments.engine import SweepRunner
from repro.experiments.optimize_exp import _evaluate, _topology_affinity
from repro.experiments.report import json_safe
from repro.optimize import grid_topology_count, smoke_grid

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Stage depth for the bench grid: deep enough that assembly/refinement
#: dominates rerating (the locality being measured), shallow enough to
#: keep three full passes in benchmark budget.
STAGES = 4

#: Speedup floor for the 8-worker affinity pass over the sequential
#: baseline.  Only asserted when the machine actually has >= 8 CPUs --
#: single-core CI runners record the number without guarding on it.
MIN_SPEEDUP_8WORKER = 5.0

#: Locality floor: per-point isolated scheduling must pay at least this
#: many times the affinity pass's assemble misses (exactly
#: points/topologies == 2.0 on the smoke grid; 1.5 absorbs grid edits).
MIN_LOCALITY_RATIO = 1.5


def _canonical(rows):
    return json.dumps(json_safe(rows), sort_keys=True)


#: Per-cell counters that depend on the solve lineage rather than the
#: model: a cold solve may fall back where a warm-started one does not.
LINEAGE_COLUMNS = {"solver_fallbacks", "structure_fallbacks"}


def _rows_close(left, right, rel_tol=1e-6):
    """Row-by-row numeric agreement: the per-point schedules change the
    iterative solver's warm-start lineage, so their floats can differ
    in the last bits (the very divergence affinity chunking removes)."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if set(a) != set(b):
            return False
        for key in a:
            if key in LINEAGE_COLUMNS:
                continue
            x, y = a[key], b[key]
            if isinstance(x, float) and isinstance(y, float):
                if not math.isclose(x, y, rel_tol=rel_tol, abs_tol=1e-9):
                    return False
            elif x != y:
                return False
    return True


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_campaign_locality_and_efficiency(run_once):
    """Acceptance guard: affinity chunks assemble each topology once,
    submit per chunk, merge value-identically, and (on >= 8 CPU
    machines) hit the parallel-efficiency bar."""
    points = list(smoke_grid())
    topologies = grid_topology_count(points)
    row_fn = functools.partial(_evaluate, stages=STAGES)
    workers = min(8, os.cpu_count() or 1)

    clear_capacity_caches()
    sequential_rows, sequential_seconds = _timed(
        lambda: SweepRunner(n_jobs=1).map_rows(row_fn, points)
    )
    reference = _canonical(sequential_rows)

    clear_capacity_caches()
    affinity_result, affinity_seconds = run_once(
        _timed,
        lambda: CampaignRunner(workers).run(
            row_fn, points, affinity=_topology_affinity
        ),
    )
    affinity_caches = affinity_result.cache_counter_sums()

    clear_capacity_caches()
    isolated_result, isolated_seconds = _timed(
        lambda: CampaignRunner(
            workers, max_chunk_size=1, steal=False
        ).run(row_fn, points)
    )
    isolated_caches = isolated_result.cache_counter_sums()

    clear_capacity_caches()
    legacy_result, legacy_seconds = _timed(
        lambda: CampaignRunner(
            workers, max_chunk_size=1, steal=False, isolate=False
        ).run(row_fn, points)
    )
    legacy_caches = legacy_result.cache_counter_sums()

    speedup = sequential_seconds / max(affinity_seconds, 1e-9)
    payload = {
        "benchmark": "campaign",
        "grid_cells": len(points),
        "topology_groups": topologies,
        "stages": STAGES,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "seconds": {
            "sequential": sequential_seconds,
            "affinity": affinity_seconds,
            "per_point_isolated": isolated_seconds,
            "per_point_legacy_pool": legacy_seconds,
        },
        "speedup_vs_sequential": speedup,
        "parallel_efficiency": speedup / workers,
        "min_speedup_8worker": MIN_SPEEDUP_8WORKER,
        "speedup_asserted": (os.cpu_count() or 1) >= 8,
        "affinity_stats": affinity_result.stats,
        "chunks_stolen": affinity_result.stats["stolen"],
        "cache_counters": {
            "affinity": affinity_caches,
            "per_point_isolated": isolated_caches,
            "per_point_legacy_pool": legacy_caches,
        },
        "locality_ratio": (
            isolated_caches["assemble"]["misses"]
            / max(affinity_caches["assemble"]["misses"], 1)
        ),
        "min_locality_ratio": MIN_LOCALITY_RATIO,
    }
    (REPO_ROOT / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Correctness: the affinity schedule reproduces the sequential
    # values exactly (same per-chunk warm-start lineage); the per-point
    # schedules agree numerically but not bitwise -- the divergence
    # affinity chunking exists to remove.
    assert _canonical(affinity_result.rows) == reference
    assert _rows_close(isolated_result.rows, sequential_rows)
    assert _rows_close(legacy_result.rows, sequential_rows)

    # Submission granularity: chunks, not points (stealing disabled on
    # the per-point passes; the affinity pass may add stolen
    # duplicates, never per-point fan-out).
    assert affinity_result.stats["chunks"] == topologies
    assert affinity_result.stats["submissions"] <= topologies + affinity_result.stats["stolen"]
    assert isolated_result.stats["submissions"] == len(points)

    # Locality: affinity chunks assemble each topology exactly once
    # across the whole campaign; per-point isolation pays per cell.
    assert affinity_caches["assemble"]["misses"] == topologies
    assert isolated_caches["assemble"]["misses"] == len(points)
    assert payload["locality_ratio"] >= MIN_LOCALITY_RATIO
    # The warm legacy pool can never beat the affinity schedule on
    # assembly work -- equal at one worker, worse as workers spread a
    # topology's cells across processes.
    assert legacy_caches["assemble"]["misses"] >= affinity_caches["assemble"]["misses"]

    if (os.cpu_count() or 1) >= 8:
        assert speedup >= MIN_SPEEDUP_8WORKER, (
            f"8-worker affinity campaign speedup {speedup:.2f}x below "
            f"the {MIN_SPEEDUP_8WORKER}x guard"
        )
