"""Benchmark ``fig8``: regenerate Figure 8 (P(Y=3) vs lambda,
OAQ/BAQ x mu in {0.2, 0.5})."""

import pytest

from repro.experiments import fig8


def test_bench_fig8(run_once):
    result = run_once(fig8.run)
    print()
    print(result.render())
    gains = []
    for row in result.rows:
        # BAQ is mu-invariant; OAQ gains when signals last longer.
        assert row["BAQ (mu=0.2)"] == pytest.approx(row["BAQ (mu=0.5)"])
        assert row["OAQ (mu=0.2)"] > row["OAQ (mu=0.5)"] > row["BAQ (mu=0.5)"]
        gains.append(row["OAQ (mu=0.2)"] / row["OAQ (mu=0.5)"] - 1.0)
    # Paper: "P(Y=3) increases up to 38%" over the lambda domain.
    assert max(gains) == pytest.approx(0.38, abs=0.03)
