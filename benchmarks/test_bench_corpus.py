"""Benchmark ``corpus``: the scored scenario-corpus conformance run.

Runs the full golden corpus (30 cells across all six scenario
families) through the conformance harness and guards

* correctness: every cell passes its declared checks with zero
  unexplained solver fallbacks (the same bar the tier-1 smoke sets);
* throughput: the harness must sustain at least
  :data:`MIN_CELLS_PER_SEC` cells/sec -- the analytic solves are
  memoized and the Monte-Carlo side is vectorised, so a large seeded
  corpus (200+ cells, ``corpus generate --cells 210``) stays a
  minutes-scale job rather than an hours-scale one.

The per-run numbers (per-cell seconds, family breakdown, throughput,
scorecard summary) are written to ``BENCH_corpus.json`` at the
repository root so CI can archive them as an artifact.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import read_corpus, run_corpus, score_run

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden" / "corpus"

#: Throughput floor, cells/sec.  Local runs sustain ~2-3 cells/sec on
#: the golden mix; the guard sits well below to absorb shared-runner
#: noise while still catching an order-of-magnitude regression.
MIN_CELLS_PER_SEC = 0.5


@pytest.mark.corpus
def test_bench_corpus_scored_run(run_once):
    """Acceptance guard: golden corpus fully conformant at >=
    MIN_CELLS_PER_SEC cells/sec, payload written to BENCH_corpus.json."""
    metadata, cases = read_corpus(str(GOLDEN_DIR))

    result = run_once(run_corpus, cases)
    scorecard = score_run(result, metadata=metadata)
    summary = scorecard["summary"]

    payload = {
        "benchmark": "corpus",
        "cells": summary["cells"],
        "seconds": result.seconds,
        "cells_per_sec": result.cells_per_sec,
        "min_cells_per_sec": MIN_CELLS_PER_SEC,
        "summary": summary,
        "per_cell_seconds": {
            cell.case_id: cell.seconds for cell in result.cells
        },
    }
    (REPO_ROOT / "BENCH_corpus.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert summary["all_passed"] is True
    assert summary["unexplained_fallbacks"] == 0
    assert result.cells_per_sec >= MIN_CELLS_PER_SEC, (
        f"corpus throughput {result.cells_per_sec:.2f} cells/sec below "
        f"the {MIN_CELLS_PER_SEC} cells/sec guard"
    )
