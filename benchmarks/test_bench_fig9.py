"""Benchmark ``fig9``: regenerate Figure 9 (P(Y>=y) vs lambda)."""

import pytest

from repro.experiments import fig9


def test_bench_fig9(run_once):
    result = run_once(fig9.run)
    print()
    print(result.render())
    low, high = result.rows[0], result.rows[-1]
    # Paper anchors (Section 4.3 text).
    assert low["OAQ P(Y>=2)"] == pytest.approx(0.75, abs=0.03)
    assert low["BAQ P(Y>=2)"] == pytest.approx(0.33, abs=0.03)
    assert high["OAQ P(Y>=2)"] == pytest.approx(0.41, abs=0.04)
    assert high["BAQ P(Y>=2)"] == pytest.approx(0.04, abs=0.02)
    for row in result.rows:
        assert row["OAQ P(Y>=1)"] == pytest.approx(1.0, abs=0.005)
        assert row["BAQ P(Y>=1)"] == pytest.approx(1.0, abs=0.005)
        for level in (1, 2, 3):
            assert row[f"OAQ P(Y>={level})"] >= row[f"BAQ P(Y>={level})"] - 1e-12
