"""Benchmark ``table1``: regenerate paper Table 1."""

from repro.experiments import table1


def test_bench_table1(run_once):
    result = run_once(table1.run)
    print()
    print(result.render())
    indicator = {row["k"]: row["I[k]"] for row in result.rows}
    assert indicator[10] == 0 and indicator[11] == 1
