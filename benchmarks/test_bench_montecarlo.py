"""Benchmark ``mc-validate``: Monte-Carlo vs closed-form validation."""

import pytest

from repro.experiments import montecarlo_exp


def test_bench_conditional_validation(run_once):
    result = run_once(
        montecarlo_exp.run_conditional_validation,
        capacities=(9, 10, 12, 14),
        samples=60_000,
        protocol_samples=1_200,
        seed=20030622,
    )
    print()
    print(result.render())
    for row in result.rows:
        assert row["rule-based MC"] == pytest.approx(row["closed form"], abs=0.01)
        assert row["protocol MC"] == pytest.approx(row["closed form"], abs=0.05)


def test_bench_capacity_validation(run_once):
    result = run_once(
        montecarlo_exp.run_capacity_validation,
        lam=5e-5,
        stages=32,
        horizon_hours=2.0e6,
        seed=7,
    )
    print()
    print(result.render())
    for row in result.rows:
        assert row["independent DES"] == pytest.approx(
            row["SAN (Erlang unfold)"], abs=0.05
        )
