"""Benchmark ``mu-sweep``: QoS measure vs mean signal duration
(Section 4.3 in-text study)."""

from repro.experiments import sweeps


def test_bench_mu_sweep(run_once):
    result = run_once(sweeps.run_mu_sweep)
    print()
    print(result.render())
    oaq = [row["OAQ P(Y>=2)"] for row in result.rows]
    baq = [row["BAQ P(Y>=2)"] for row in result.rows]
    # Longer signals = extended opportunity, exploited only by OAQ.
    assert oaq == sorted(oaq)
    assert max(baq) - min(baq) < 0.01
