"""Shared benchmark helpers.

Every benchmark runs its experiment once (``rounds=1``) -- these are
model-evaluation workloads, not microbenchmarks -- then prints the
regenerated table so the benchmark log doubles as the paper-vs-measured
record quoted in EXPERIMENTS.md.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``bench`` (registered in pyproject.toml)
    so the guards are selectable with ``pytest benchmarks -m bench`` and
    excludable with ``-m 'not bench'`` in mixed collections."""
    for item in items:
        item.add_marker(pytest.mark.bench)
