"""Benchmark ``rerate-sweep``: the topology/rate-split acceptance guard.

A fixed-topology rate sweep (Figure 7's shape: one capacity topology,
many ``lambda`` values) must be at least **5x faster** through the
re-rate path -- assemble the state space once, re-rate the transition
arrays per point, warm-start each steady-state solve from the previous
point -- than the seed's per-point full regeneration (reachability +
unfolding + direct solve for every ``lambda``), while agreeing with it
on every ``P(k)`` to 1e-12.

The per-run numbers (times, speedup, max deviation, solver statistics
and per-stage timings) are also written to ``BENCH_rerate_sweep.json``
at the repository root so CI can archive them as an artifact.
"""

import json
import time
from pathlib import Path

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_caches_disabled,
    capacity_distribution,
    capacity_solver_stats,
    capacity_stage_timings,
    clear_capacity_caches,
)

#: 24 points amortise the sweep's fixed costs (one assemble, one ILU
#: factorisation) the way a real Figure-7-style sweep does.
POINTS = 24

REPO_ROOT = Path(__file__).resolve().parent.parent


def _sweep_configs():
    return [
        CapacityModelConfig(failure_rate_per_hour=i * 9.6e-5 / POINTS)
        for i in range(1, POINTS + 1)
    ]


def test_bench_rerate_sweep_speedup_vs_full_regeneration(run_once):
    """Acceptance guard: re-rated sweep >= 5x per-point regeneration,
    P(k) agreement <= 1e-12."""
    configs = _sweep_configs()

    clear_capacity_caches(reset_stats=True)
    with capacity_caches_disabled():
        start = time.perf_counter()
        baseline = [capacity_distribution(config) for config in configs]
        baseline_seconds = time.perf_counter() - start

    clear_capacity_caches(reset_stats=True)

    def rerate_sweep():
        return [capacity_distribution(config) for config in configs]

    start = time.perf_counter()
    rerated = run_once(rerate_sweep)
    rerate_seconds = time.perf_counter() - start

    stats = capacity_solver_stats()
    timings = capacity_stage_timings()

    max_deviation = max(
        abs(baseline_row[k] - rerated_row[k])
        for baseline_row, rerated_row in zip(baseline, rerated)
        for k in baseline_row
    )
    speedup = baseline_seconds / rerate_seconds

    payload = {
        "points": POINTS,
        "baseline_s": round(baseline_seconds, 4),
        "rerate_s": round(rerate_seconds, 4),
        "speedup": round(speedup, 2),
        "max_pk_deviation": max_deviation,
        "solver_stats": stats,
        "stage_timings": {k: round(v, 4) for k, v in timings.items()},
    }
    (REPO_ROOT / "BENCH_rerate_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\nfull regeneration {baseline_seconds:.2f}s vs re-rate "
        f"{rerate_seconds:.2f}s -> {speedup:.1f}x "
        f"(max |dP(k)| = {max_deviation:.2e})"
    )
    print(f"solver stats: {stats}")

    # Correctness before speed: every point's P(k) must match the
    # full-rebuild answer to the contract tolerance.
    assert max_deviation <= 1e-12, (
        f"re-rated sweep deviates from full rebuild by {max_deviation:.3e}"
    )
    # Every point went through the iterative solver, all but the cold
    # first point warm-started, and the topology never fell back to a
    # full regeneration.
    assert stats["iterative"] == POINTS
    assert stats["warm_started"] == POINTS - 1
    assert stats["structure_fallbacks"] == 0
    assert stats["solver_fallbacks"] == 0
    assert speedup >= 5.0, (
        f"re-rate speedup {speedup:.2f}x below the 5x floor "
        f"(baseline {baseline_seconds:.3f}s, re-rate {rerate_seconds:.3f}s)"
    )
