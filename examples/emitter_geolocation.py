"""End-to-end RF emitter geolocation with the real estimation stack.

Shows the physics behind the paper's QoS levels: a LEO satellite of the
reference constellation collects Doppler measurements of a 900 MHz
emitter; a short single-pass arc leaves the classic ground-track mirror
ambiguity, and the next satellite's revisit (sequential localization)
collapses it and shrinks the error.

Run with::

    python examples/emitter_geolocation.py
"""

import math

import numpy as np

from repro.geolocation import (
    Emitter,
    MeasurementGenerator,
    SequentialLocalizer,
    WLSEstimator,
)
from repro.orbits import build_reference_constellation
from repro.orbits.frames import GeodeticPoint, subsatellite_point


def main() -> None:
    rng = np.random.default_rng(7)
    constellation = build_reference_constellation()
    plane = constellation.planes[0]
    lead, trail = plane.satellites[0], plane.satellites[13]

    # Place the emitter 0.8 degrees east of the ground track.
    track = subsatellite_point(lead.position_ecef(60.0))
    emitter = Emitter(
        GeodeticPoint(
            track.latitude + math.radians(0.5),
            track.longitude + math.radians(0.8),
        ),
        frequency_hz=900.0e6,
    )
    print(
        f"true emitter: lat {emitter.location.latitude_deg:+.3f} deg, "
        f"lon {emitter.location.longitude_deg:+.3f} deg"
    )

    generator = MeasurementGenerator(
        emitter,
        doppler_sigma_hz=5.0,
        footprint_half_angle=constellation.footprint.half_angle,
    )

    # --- One short arc from a single pass: the ambiguity ------------
    short_times = np.arange(30.0, 100.0, 10.0)
    short_arc = generator.observe(lead, short_times, rng)
    estimator = WLSEstimator()
    guesses = [
        GeodeticPoint(track.latitude, track.longitude + math.radians(dlon))
        for dlon in (-2.0, -0.8, 0.8, 2.0)
    ]
    solutions = estimator.solve_multistart(short_arc, guesses)
    print(f"\nshort single-pass arc ({len(short_arc)} Doppler samples):")
    for i, solution in enumerate(solutions):
        print(
            f"  candidate {i + 1}: lat {solution.estimate.latitude_deg:+.3f}, "
            f"lon {solution.estimate.longitude_deg:+.3f}  "
            f"(residual rms {solution.residual_rms:.2f}, true error "
            f"{solution.error_km(emitter.location):.1f} km)"
        )
    print("  -> two near-identical fits: the ground-track mirror ambiguity")

    # --- Sequential localization: the next satellite resolves it ----
    # Seed the localizer with the best ambiguity candidate (a real
    # system would carry both candidates until a later pass resolves
    # them); the second satellite's geometry then pins the true side.
    localizer = SequentialLocalizer(initial_guess=solutions[0].estimate)
    full_times = np.arange(-180.0, 300.0, 10.0) + 60.0
    first = localizer.add_pass(generator.observe(lead, full_times, rng))
    print(
        f"\nafter pass 1 ({localizer.history[0].measurements_total} samples): "
        f"error {first.error_km(emitter.location):.2f} km, "
        f"estimated 1-sigma {first.horizontal_error_km:.2f} km"
    )
    revisit = lead.orbit.period_s() / plane.active_count
    second = localizer.add_pass(
        generator.observe(trail, full_times + revisit, rng)
    )
    print(
        f"after pass 2 ({localizer.history[1].measurements_total} samples): "
        f"error {second.error_km(emitter.location):.2f} km, "
        f"estimated 1-sigma {second.horizontal_error_km:.2f} km"
    )
    print(
        "\nsequential localization: each revisiting satellite tightens the "
        "estimate -- the mechanism the OAQ window of opportunity exploits."
    )


if __name__ == "__main__":
    main()
