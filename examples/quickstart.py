"""Quickstart: evaluate the OAQ and BAQ QoS measures.

Reproduces the paper's headline comparison in a few lines: build the
reference constellation's evaluation parameters, compute the
steady-state orbital-plane capacity distribution with the SAN engine,
compose it with the closed-form conditional QoS model (Eq. 3), and
print ``P(Y >= y)`` for both schemes.

Run with::

    python examples/quickstart.py
"""

from repro import EvaluationParams, OAQFramework, QoSLevel, Scheme


def main() -> None:
    print("OAQ reproduction quickstart")
    print("===========================")
    for lam in (1e-5, 5e-5, 1e-4):
        params = EvaluationParams(
            deadline_minutes=5.0,  # tau
            signal_termination_rate=0.2,  # mu (mean signal 5 minutes)
            computation_rate=30.0,  # nu (mean iteration 2 seconds)
            node_failure_rate_per_hour=lam,  # lambda
            deployment_threshold=10,  # eta
            scheduled_deployment_hours=30000.0,  # phi
        )
        framework = OAQFramework(params)

        print(f"\nnode-failure rate lambda = {lam:.0e}/hour")
        capacity = framework.capacity_probabilities()
        dominant = max(capacity, key=capacity.get)
        print(
            f"  plane capacity: P(k={dominant}) = {capacity[dominant]:.3f} "
            "dominates"
        )
        for level in (
            QoSLevel.SINGLE,
            QoSLevel.SEQUENTIAL_DUAL,
            QoSLevel.SIMULTANEOUS_DUAL,
        ):
            comparison = framework.compare_schemes(level)
            print(
                f"  P(Y >= {int(level)}): "
                f"OAQ {comparison[Scheme.OAQ]:.3f}  "
                f"BAQ {comparison[Scheme.BAQ]:.3f}  "
                f"(gain {framework.qos_gain(level):+.3f})"
            )

    print(
        "\nThe opportunity-adaptive scheme pushes the constellation toward "
        "the high end of the QoS spectrum even under heavy degradation, "
        "while both schemes keep P(Y >= 1) ~ 1 (the paper's Figure 9)."
    )


if __name__ == "__main__":
    main()
