"""Design-space study: spare-deployment policies vs delivered QoS.

The paper's capacity model has three policy knobs -- the deployment
threshold ``eta``, the scheduled-restore period ``phi`` and the
replacement-launch latency.  This example sweeps them and reports the
resulting orbital-plane capacity distribution and the composed OAQ
QoS measure, the kind of trade study a constellation operator would
run before committing to a launch manifest.

Run with::

    python examples/spare_policy_tradeoff.py
"""

from repro import EvaluationParams, OAQFramework, QoSLevel, Scheme


def evaluate(label: str, **overrides) -> None:
    params = EvaluationParams(
        signal_termination_rate=0.2,
        node_failure_rate_per_hour=8e-5,  # a harsh environment
        **overrides,
    )
    framework = OAQFramework(params)
    capacity = framework.capacity_probabilities()
    mean_capacity = sum(k * p for k, p in capacity.items())
    p_high = framework.qos_measure(Scheme.OAQ, QoSLevel.SEQUENTIAL_DUAL)
    p_top = framework.qos_measure(Scheme.OAQ, QoSLevel.SIMULTANEOUS_DUAL)
    print(
        f"  {label:<42} mean k = {mean_capacity:5.2f}   "
        f"P(Y>=2) = {p_high:.3f}   P(Y=3) = {p_top:.3f}"
    )


def main() -> None:
    print("Spare-deployment policy trade study (lambda = 8e-5/hour, OAQ)")
    print("==============================================================")

    print("\ndeployment threshold eta (sustained capacity):")
    for eta in (9, 10, 11, 12):
        evaluate(f"eta = {eta}", deployment_threshold=eta)

    print("\nscheduled-restore period phi:")
    for phi in (10000.0, 30000.0, 60000.0):
        evaluate(f"phi = {phi:.0f} hours", scheduled_deployment_hours=phi)

    print("\nreplacement-launch latency:")
    for latency in (24.0, 168.0, 720.0):
        evaluate(
            f"latency = {latency:.0f} hours",
            replacement_latency_hours=latency,
        )

    print(
        "\nReading the table: raising eta above the underlap threshold "
        "(k = 10) keeps footprints overlapping and level 3 reachable; a "
        "shorter phi lifts the full-capacity mass; slow replacement "
        "launches leak probability below the threshold."
    )


if __name__ == "__main__":
    main()
