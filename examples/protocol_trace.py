"""Trace one OAQ coordination episode message by message.

Walks through the paper's Figure 3 storyline on a degraded
(underlapping) plane: the first satellite detects the signal, computes
a preliminary geolocation, invites the next-arriving peer over the
crosslink, the peer refines the result and the 'coordination done'
notification propagates back while the final alert goes to the ground.
A second scenario shows Figure 4: the signal dies early and the
detector's wait timeout produces the guaranteed report.

Run with::

    python examples/protocol_trace.py
"""

from repro.core.config import EvaluationParams
from repro.protocol import CenterlineScenario
from repro.protocol.messages import (
    AlertMessage,
    CoordinationDone,
    CoordinationRequest,
)


def describe(record) -> str:
    message = record.message
    stamp = f"t={record.time_delivered:6.3f} min"
    if isinstance(message, CoordinationRequest):
        return (
            f"{stamp}  {record.source} -> {record.destination}: coordination "
            f"request (ordinal {message.next_ordinal}, preliminary error "
            f"{message.estimate.error_km:.1f} km)"
        )
    if isinstance(message, CoordinationDone):
        return (
            f"{stamp}  {record.source} -> {record.destination}: coordination "
            f"done (final by {message.terminated_by})"
        )
    if isinstance(message, AlertMessage):
        return (
            f"{stamp}  {record.source} -> ground: ALERT level "
            f"{message.estimate.qos_level}, error "
            f"{message.estimate.error_km:.1f} km, sent "
            f"{message.latency:.2f} min after detection"
        )
    return f"{stamp}  {record.source} -> {record.destination}: {message!r}"


def run_scenario(title: str, **kwargs) -> None:
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(9)  # degraded: underlap
    scenario = CenterlineScenario(geometry, params, **kwargs)
    outcome = scenario.run()
    print(title)
    print("-" * len(title))
    print(
        f"signal: onset at cycle position {scenario.onset_position:.2f} min, "
        f"duration {scenario.signal.duration:.2f} min"
    )
    for record in outcome.message_log:
        if not record.dropped:
            print("  " + describe(record))
        else:
            print(
                f"  t={record.time_sent:6.3f} min  {record.source} -> "
                f"{record.destination}: DROPPED (fail-silent)"
            )
    print(f"achieved QoS level: {outcome.achieved_level.name}")
    print()


def main() -> None:
    # Figure 3: successful sequential coordination.  The signal starts
    # near the end of the covered interval, so the next satellite
    # arrives just 2 minutes later -- inside the window of opportunity.
    run_scenario(
        "Sequential coordination (Figure 3)",
        onset_position=8.0,
        signal_duration=6.0,
        seed=1,
    )

    # Figure 4: the signal stops before the invited peer arrives; the
    # detector's timeout guarantees the report at the deadline.
    run_scenario(
        "Guaranteed report after TC-3 (Figure 4)",
        onset_position=8.0,
        signal_duration=0.5,
        seed=2,
    )

    # Fail-silent peer: same situation, but the invited satellite dies.
    # Backward messaging (done-propagation) still delivers on time.
    run_scenario(
        "Fail-silent successor, tolerated by backward messaging",
        onset_position=8.0,
        signal_duration=6.0,
        fail_silent={"S2": 0.5},
        seed=3,
    )


if __name__ == "__main__":
    main()
