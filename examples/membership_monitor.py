"""Group membership in a degraded orbital plane (Section 5 extension).

The paper's concluding section points at adapting group-membership
protocols to constellations as the next step.  This example runs the
heartbeat/ring membership service over a plane's crosslinks, fails two
satellites mid-flight, shows the views converging, restores one, and
finally answers the question the OAQ protocol actually cares about:
*which surviving peer visits the target next?*

Run with::

    python examples/membership_monitor.py
"""

from repro.protocol.membership import MembershipConfig, MembershipGroup

PLANE = [f"S{i}" for i in range(1, 11)]  # a 10-satellite plane


def show_views(group: MembershipGroup, moment: str) -> None:
    print(f"\n{moment} (t = {group.simulator.now:.1f} min):")
    for name, view in sorted(group.views().items()):
        version = group.nodes[name].view_version
        print(f"  {name}: v{version} {list(view)}")
    print(f"  converged: {group.converged()}")


def next_visitor(group: MembershipGroup, after: str) -> str:
    """The OAQ 'next peer' query, answered from the agreed view."""
    ring = list(group.agreed_view())
    return ring[(ring.index(after) + 1) % len(ring)]


def main() -> None:
    config = MembershipConfig(
        heartbeat_interval=0.5, suspicion_timeout=1.6, crosslink_delay=0.05
    )
    group = MembershipGroup(PLANE, config=config)

    group.run_for(3.0)
    print("initial agreed view:", list(group.agreed_view()))
    print("S3's next visitor:", next_visitor(group, "S3"))

    print("\n>>> S4 and S8 become fail-silent")
    group.fail("S4")
    group.fail("S8")
    group.run_for(8.0)
    show_views(group, "after detection and dissemination")
    print(
        "S3's next visitor is now:",
        next_visitor(group, "S3"),
        "(the failed S4 is skipped)",
    )

    print("\n>>> ground spare S4 restored, rejoins the group")
    group.restore("S4")
    group.run_for(8.0)
    show_views(group, "after rejoin")
    print("S3's next visitor again:", next_visitor(group, "S3"))

    messages = group.network.delivered_count()
    print(
        f"\nprotocol cost: {messages} crosslink messages over "
        f"{group.simulator.now:.0f} simulated minutes "
        f"({messages / group.simulator.now:.1f} msg/min for the plane)"
    )


if __name__ == "__main__":
    main()
