"""Setup shim: the offline environment lacks the ``wheel`` package, so
``pip install -e . --no-build-isolation --no-use-pep517`` needs this
legacy entry point.  All metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
