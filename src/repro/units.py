"""Unit conventions and conversion helpers.

The paper mixes two time scales:

* the *QoS model* (Section 4.2.1) quantifies time in **minutes**
  (deadline ``tau = 5``, coverage time ``Tc = 9``, orbit period
  ``theta = 90``), and
* the *capacity model* (Section 4.3) quantifies time in **hours**
  (node-failure rate ``lambda`` per hour, scheduled deployment period
  ``phi = 30000`` hours).

This module centralises the conventions so each subsystem can state its
native unit once and convert explicitly at the boundary.  All angles are
radians internally; degrees appear only in user-facing constructors.
"""

from __future__ import annotations

import math

#: Number of minutes in one hour.
MINUTES_PER_HOUR = 60.0

#: Number of seconds in one minute.
SECONDS_PER_MINUTE = 60.0

#: Number of seconds in one hour.
SECONDS_PER_HOUR = 3600.0


def minutes_to_hours(minutes: float) -> float:
    """Convert a duration in minutes to hours."""
    return minutes / MINUTES_PER_HOUR


def hours_to_minutes(hours: float) -> float:
    """Convert a duration in hours to minutes."""
    return hours * MINUTES_PER_HOUR


def minutes_to_seconds(minutes: float) -> float:
    """Convert a duration in minutes to seconds."""
    return minutes * SECONDS_PER_MINUTE


def seconds_to_minutes(seconds: float) -> float:
    """Convert a duration in seconds to minutes."""
    return seconds / SECONDS_PER_MINUTE


def per_hour_to_per_minute(rate: float) -> float:
    """Convert an event rate expressed per hour to per minute."""
    return rate / MINUTES_PER_HOUR


def per_minute_to_per_hour(rate: float) -> float:
    """Convert an event rate expressed per minute to per hour."""
    return rate * MINUTES_PER_HOUR


def deg_to_rad(degrees: float) -> float:
    """Convert an angle in degrees to radians."""
    return math.radians(degrees)


def rad_to_deg(radians: float) -> float:
    """Convert an angle in radians to degrees."""
    return math.degrees(radians)
