"""Reference-frame conversions and spherical-earth geodesy.

The reproduction uses a simplified Earth model that matches the
fidelity of the paper's SOAP analysis:

* **ECI** -- Earth-centred inertial frame; orbits are propagated here.
* **ECEF** -- Earth-centred Earth-fixed frame, rotating at the sidereal
  rate; ground points live here.  The epoch is chosen so the frames
  coincide at ``t = 0``.
* **Geodetic** -- latitude/longitude/altitude on a *spherical* Earth by
  default (the constellation-coverage quantities the paper consumes are
  insensitive to oblateness); a WGS-84 ellipsoidal conversion is
  provided for completeness.

All positions are kilometres, angles radians, times seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH, Body

__all__ = [
    "GeodeticPoint",
    "rotation_z",
    "rotation_x",
    "gmst_rad",
    "eci_to_ecef",
    "ecef_to_eci",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "ecef_to_geodetic_wgs84",
    "central_angle",
    "great_circle_distance_km",
    "subsatellite_point",
]

#: WGS-84 ellipsoid flattening (used only by the ellipsoidal conversion).
_WGS84_FLATTENING = 1.0 / 298.257223563


@dataclass(frozen=True)
class GeodeticPoint:
    """Latitude/longitude/altitude (radians, radians, km)."""

    latitude: float
    longitude: float
    altitude_km: float = 0.0

    def __post_init__(self) -> None:
        if not -math.pi / 2 - 1e-12 <= self.latitude <= math.pi / 2 + 1e-12:
            raise ConfigurationError(
                f"latitude {self.latitude} rad outside [-pi/2, pi/2]"
            )

    @classmethod
    def from_degrees(
        cls, latitude_deg: float, longitude_deg: float, altitude_km: float = 0.0
    ) -> "GeodeticPoint":
        """Constructor taking degrees (user-facing convenience)."""
        return cls(
            latitude=math.radians(latitude_deg),
            longitude=math.radians(longitude_deg),
            altitude_km=altitude_km,
        )

    @property
    def latitude_deg(self) -> float:
        """Latitude in degrees."""
        return math.degrees(self.latitude)

    @property
    def longitude_deg(self) -> float:
        """Longitude in degrees, wrapped to (-180, 180]."""
        deg = math.degrees(self.longitude)
        while deg <= -180.0:
            deg += 360.0
        while deg > 180.0:
            deg -= 360.0
        return deg


def rotation_z(angle: float) -> np.ndarray:
    """Right-handed rotation matrix about the z axis."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def rotation_x(angle: float) -> np.ndarray:
    """Right-handed rotation matrix about the x axis."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def gmst_rad(time_s: float, body: Body = EARTH) -> float:
    """Rotation angle of the body-fixed frame at ``time_s`` (the frames
    are aligned at the epoch ``t = 0``)."""
    return math.fmod(body.rotation_rate_rad_s * time_s, 2.0 * math.pi)


def eci_to_ecef(position_eci: np.ndarray, time_s: float, body: Body = EARTH) -> np.ndarray:
    """Rotate an ECI position into the Earth-fixed frame."""
    return rotation_z(-gmst_rad(time_s, body)) @ np.asarray(position_eci, float)


def ecef_to_eci(position_ecef: np.ndarray, time_s: float, body: Body = EARTH) -> np.ndarray:
    """Rotate an Earth-fixed position into the inertial frame."""
    return rotation_z(gmst_rad(time_s, body)) @ np.asarray(position_ecef, float)


def geodetic_to_ecef(point: GeodeticPoint, body: Body = EARTH) -> np.ndarray:
    """Spherical-earth geodetic -> ECEF position (km)."""
    radius = body.radius_km + point.altitude_km
    cos_lat = math.cos(point.latitude)
    return np.array(
        [
            radius * cos_lat * math.cos(point.longitude),
            radius * cos_lat * math.sin(point.longitude),
            radius * math.sin(point.latitude),
        ]
    )


def ecef_to_geodetic(position_ecef: np.ndarray, body: Body = EARTH) -> GeodeticPoint:
    """ECEF position -> spherical-earth geodetic point."""
    x, y, z = (float(v) for v in position_ecef)
    radius = math.sqrt(x * x + y * y + z * z)
    if radius == 0.0:
        raise ConfigurationError("cannot convert the origin to geodetic coordinates")
    return GeodeticPoint(
        latitude=math.asin(z / radius),
        longitude=math.atan2(y, x),
        altitude_km=radius - body.radius_km,
    )


def ecef_to_geodetic_wgs84(position_ecef: np.ndarray, body: Body = EARTH) -> GeodeticPoint:
    """ECEF -> geodetic on the WGS-84 ellipsoid (iterative Bowring
    method).  Provided for completeness; the reproduction's coverage
    analytics use the spherical conversion."""
    x, y, z = (float(v) for v in position_ecef)
    a = body.radius_km
    f = _WGS84_FLATTENING
    b = a * (1.0 - f)
    e2 = 1.0 - (b / a) ** 2
    p = math.hypot(x, y)
    if p == 0.0:
        # On the polar axis.
        return GeodeticPoint(
            latitude=math.copysign(math.pi / 2, z),
            longitude=0.0,
            altitude_km=abs(z) - b,
        )
    lat = math.atan2(z, p * (1.0 - e2))
    for _ in range(10):
        n = a / math.sqrt(1.0 - e2 * math.sin(lat) ** 2)
        alt = p / math.cos(lat) - n
        new_lat = math.atan2(z, p * (1.0 - e2 * n / (n + alt)))
        if abs(new_lat - lat) < 1e-13:
            lat = new_lat
            break
        lat = new_lat
    n = a / math.sqrt(1.0 - e2 * math.sin(lat) ** 2)
    alt = p / math.cos(lat) - n
    return GeodeticPoint(latitude=lat, longitude=math.atan2(y, x), altitude_km=alt)


def central_angle(point_a: np.ndarray, point_b: np.ndarray) -> float:
    """Angle subtended at the Earth's centre by two position vectors."""
    a = np.asarray(point_a, float)
    b = np.asarray(point_b, float)
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        raise ConfigurationError("central angle undefined for zero vectors")
    cosine = float(np.dot(a, b)) / denom
    return math.acos(max(-1.0, min(1.0, cosine)))


def great_circle_distance_km(
    point_a: GeodeticPoint, point_b: GeodeticPoint, body: Body = EARTH
) -> float:
    """Surface distance between two geodetic points (spherical earth,
    haversine formula -- numerically stable for nearby points)."""
    dlat = point_b.latitude - point_a.latitude
    dlon = point_b.longitude - point_a.longitude
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(point_a.latitude)
        * math.cos(point_b.latitude)
        * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * body.radius_km * math.asin(min(1.0, math.sqrt(h)))


def subsatellite_point(position_ecef: np.ndarray, body: Body = EARTH) -> GeodeticPoint:
    """The point on the surface directly beneath a satellite."""
    geodetic = ecef_to_geodetic(position_ecef, body)
    return GeodeticPoint(geodetic.latitude, geodetic.longitude, 0.0)
