"""Orbital-mechanics substrate (the reproduction's SOAP substitute).

Circular/Keplerian propagation, frame conversions, footprint geometry,
Walker-style constellation construction with failure + rephasing, and
coverage analytics that validate the paper's coarse-grained constants
(``Tc = 9`` min, ``Tr[k] = theta/k``, latitude overlap profile).
"""

from repro.orbits.bodies import EARTH, Body
from repro.orbits.constellation import (
    Constellation,
    OrbitalPlane,
    Satellite,
    build_reference_constellation,
)
from repro.orbits.footprint import (
    Footprint,
    coverage_time_minutes,
    elevation_from_half_angle,
    half_angle_for_coverage_time,
    half_angle_from_elevation,
)
from repro.orbits.frames import (
    GeodeticPoint,
    central_angle,
    ecef_to_eci,
    ecef_to_geodetic,
    ecef_to_geodetic_wgs84,
    eci_to_ecef,
    geodetic_to_ecef,
    gmst_rad,
    great_circle_distance_km,
    subsatellite_point,
)
from repro.orbits.j2 import (
    SUN_SYNCHRONOUS_RATE_RAD_S,
    J2CircularOrbit,
    raan_drift_rate,
    sun_synchronous_inclination,
)
from repro.orbits.kepler import CircularOrbit, KeplerianOrbit, solve_kepler
from repro.orbits.coverage import (
    CoverageSeries,
    coverage_multiplicity,
    coverage_series,
    covering_satellites,
    latitude_overlap_profile,
    measured_coverage_time_minutes,
    measured_revisit_time_minutes,
)

__all__ = [
    "EARTH",
    "Body",
    "CircularOrbit",
    "Constellation",
    "CoverageSeries",
    "Footprint",
    "GeodeticPoint",
    "J2CircularOrbit",
    "KeplerianOrbit",
    "OrbitalPlane",
    "SUN_SYNCHRONOUS_RATE_RAD_S",
    "Satellite",
    "build_reference_constellation",
    "central_angle",
    "coverage_multiplicity",
    "coverage_series",
    "coverage_time_minutes",
    "covering_satellites",
    "ecef_to_eci",
    "ecef_to_geodetic",
    "ecef_to_geodetic_wgs84",
    "eci_to_ecef",
    "elevation_from_half_angle",
    "geodetic_to_ecef",
    "gmst_rad",
    "great_circle_distance_km",
    "half_angle_for_coverage_time",
    "half_angle_from_elevation",
    "latitude_overlap_profile",
    "measured_coverage_time_minutes",
    "measured_revisit_time_minutes",
    "raan_drift_rate",
    "solve_kepler",
    "sun_synchronous_inclination",
    "subsatellite_point",
]
