"""Constellation construction, degradation and rephasing.

Builds Walker-star style constellations such as the paper's reference
RF geolocation design: 7 orbital planes of 14 active micro-satellites
(plus 2 in-orbit spares each), 90-minute near-polar orbits, full Earth
coverage at 98 active satellites.

The key fault-tolerance behaviour from Section 2 is implemented by
:meth:`OrbitalPlane.fail_satellites`: when a plane loses satellites
after exhausting its spares, the survivors undergo a **phasing
adjustment** so they are evenly distributed in the plane again --
which is exactly what makes the plane geometry collapse to
:class:`~repro.geometry.plane.PlaneGeometry` with a smaller ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry
from repro.orbits.bodies import EARTH, Body
from repro.orbits.footprint import Footprint, half_angle_for_coverage_time
from repro.orbits.frames import eci_to_ecef
from repro.orbits.kepler import CircularOrbit

__all__ = ["Satellite", "OrbitalPlane", "Constellation", "build_reference_constellation"]


@dataclass(frozen=True)
class Satellite:
    """One satellite: an orbit plus identity and health."""

    name: str
    orbit: CircularOrbit
    plane_index: int
    slot_index: int
    is_spare: bool = False

    def position_eci(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """ECI position (km)."""
        return self.orbit.position_eci(time_s, body)

    def position_ecef(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """Earth-fixed position (km)."""
        return eci_to_ecef(self.orbit.position_eci(time_s, body), time_s, body)

    def velocity_eci(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """ECI velocity (km/s)."""
        return self.orbit.velocity_eci(time_s, body)


class OrbitalPlane:
    """A ring of evenly phased satellites sharing inclination and RAAN."""

    def __init__(
        self,
        plane_index: int,
        altitude_km: float,
        inclination: float,
        raan: float,
        active_count: int,
        spare_count: int = 0,
        *,
        phase_offset: float = 0.0,
    ):
        if active_count < 1:
            raise ConfigurationError(f"active_count must be >= 1, got {active_count}")
        if spare_count < 0:
            raise ConfigurationError(f"spare_count must be >= 0, got {spare_count}")
        self.plane_index = plane_index
        self.altitude_km = altitude_km
        self.inclination = inclination
        self.raan = raan
        self.phase_offset = phase_offset
        self.spare_count = spare_count
        self._active: List[Satellite] = []
        for slot in range(active_count):
            self._active.append(self._make_satellite(slot, active_count))

    def _make_satellite(self, slot: int, total: int) -> Satellite:
        phase = self.phase_offset + 2.0 * math.pi * slot / total
        orbit = CircularOrbit(
            altitude_km=self.altitude_km,
            inclination=self.inclination,
            raan=self.raan,
            phase=phase,
        )
        return Satellite(
            name=f"P{self.plane_index}-S{slot}",
            orbit=orbit,
            plane_index=self.plane_index,
            slot_index=slot,
        )

    @property
    def satellites(self) -> List[Satellite]:
        """Active satellites, evenly phased."""
        return list(self._active)

    @property
    def active_count(self) -> int:
        """Number of active satellites."""
        return len(self._active)

    def rephase(self) -> None:
        """Redistribute the surviving satellites evenly in the plane
        (Section 2's post-failure phasing adjustment)."""
        total = len(self._active)
        self._active = [self._make_satellite(slot, total) for slot in range(total)]

    def fail_satellites(self, count: int) -> int:
        """Remove ``count`` satellites, consuming in-orbit spares first.

        While spares remain the plane keeps its full geometry (a spare
        takes over the failed slot); once spares are exhausted the
        survivors are rephased.  Returns the resulting active count.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        for _ in range(count):
            if self.spare_count > 0:
                self.spare_count -= 1
                continue
            if not self._active:
                break
            self._active.pop()
            self.rephase()
        return self.active_count

    def geometry(self, coverage_time_minutes: float) -> PlaneGeometry:
        """The plane's :class:`PlaneGeometry` given its coverage time."""
        period_minutes = (
            CircularOrbit(self.altitude_km, self.inclination).period_s() / 60.0
        )
        return PlaneGeometry(
            orbit_period=period_minutes,
            coverage_time=coverage_time_minutes,
            active_satellites=self.active_count,
        )


class Constellation:
    """A set of orbital planes plus the common footprint."""

    def __init__(self, planes: Sequence[OrbitalPlane], footprint: Footprint):
        if not planes:
            raise ConfigurationError("a constellation needs at least one plane")
        self.planes = list(planes)
        self.footprint = footprint

    @property
    def satellites(self) -> List[Satellite]:
        """All active satellites across planes."""
        return [sat for plane in self.planes for sat in plane.satellites]

    @property
    def total_active(self) -> int:
        """Total number of active satellites."""
        return sum(plane.active_count for plane in self.planes)

    def plane(self, index: int) -> OrbitalPlane:
        """Plane by index."""
        return self.planes[index]

    def degrade_plane(self, plane_index: int, failures: int) -> int:
        """Apply ``failures`` satellite losses to one plane (spares
        first, then rephasing).  Returns the plane's new active count."""
        return self.planes[plane_index].fail_satellites(failures)


def build_reference_constellation(
    *,
    planes: int = 7,
    active_per_plane: int = 14,
    spares_per_plane: int = 2,
    orbit_period_minutes: float = 90.0,
    coverage_time_minutes: float = 9.0,
    inclination: float = math.radians(85.0),
    body: Body = EARTH,
) -> Constellation:
    """Build the paper's reference RF geolocation constellation.

    Near-polar planes with RAAN spread over 180 degrees (a Walker-star
    arrangement, appropriate for full Earth coverage), 90-minute
    circular orbits, and the footprint calibrated so a ground point on
    the track centre line is covered for ``Tc = 9`` minutes.
    Inter-plane phase staggering spreads coverage seams.
    """
    period_s = orbit_period_minutes * 60.0
    altitude_km = body.semi_major_axis_km(period_s) - body.radius_km
    footprint = Footprint(
        half_angle_for_coverage_time(orbit_period_minutes, coverage_time_minutes)
    )
    plane_objects = []
    for p in range(planes):
        plane_objects.append(
            OrbitalPlane(
                plane_index=p,
                altitude_km=altitude_km,
                inclination=inclination,
                raan=math.pi * p / planes,
                active_count=active_per_plane,
                spare_count=spares_per_plane,
                phase_offset=math.pi * p / (planes * active_per_plane),
            )
        )
    return Constellation(plane_objects, footprint)
