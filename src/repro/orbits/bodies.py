"""Central-body constants for orbital mechanics.

Only the Earth matters to the reproduction; values follow WGS-84 /
EGM-96 conventions.  A dataclass keeps the door open for testing with
other bodies (and makes the constants explicit at call sites).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Body", "EARTH"]


@dataclass(frozen=True)
class Body:
    """A central gravitating body.

    Attributes
    ----------
    name:
        Human-readable name.
    mu_km3_s2:
        Standard gravitational parameter ``GM`` in km^3/s^2.
    radius_km:
        Mean equatorial radius in km.
    rotation_rate_rad_s:
        Sidereal rotation rate in rad/s.
    j2:
        Second zonal harmonic (oblateness), dimensionless.
    """

    name: str
    mu_km3_s2: float
    radius_km: float
    rotation_rate_rad_s: float
    j2: float

    def circular_speed_km_s(self, radius_km: float) -> float:
        """Circular-orbit speed at the given orbital radius."""
        return math.sqrt(self.mu_km3_s2 / radius_km)

    def period_s(self, semi_major_axis_km: float) -> float:
        """Keplerian orbital period for the given semi-major axis."""
        return 2.0 * math.pi * math.sqrt(semi_major_axis_km**3 / self.mu_km3_s2)

    def semi_major_axis_km(self, period_s: float) -> float:
        """Semi-major axis for the given Keplerian period."""
        return (self.mu_km3_s2 * (period_s / (2.0 * math.pi)) ** 2) ** (1.0 / 3.0)


#: The Earth (WGS-84 gravitational parameter and radius).
EARTH = Body(
    name="Earth",
    mu_km3_s2=398600.4418,
    radius_km=6378.137,
    rotation_rate_rad_s=7.2921158553e-5,
    j2=1.08262668e-3,
)
