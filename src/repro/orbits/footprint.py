"""Satellite footprints: the area on the Earth covered by a satellite.

The paper characterises a footprint by its **coverage time** ``Tc`` --
the maximum time a ground location stays inside it (9 minutes for the
reference constellation, whose orbit period is 90 minutes).  For a
circular orbit that translates into a footprint *half-angle* ``psi``
(the Earth-central angle between the sub-satellite point and the
footprint edge):

``Tc = 2 psi / omega_track``  with ``omega_track = 2 pi / T``

(approximating the ground-track rate by the orbital rate; Earth
rotation is second-order for near-polar LEO planes and is handled by
the full simulation, not this calibration).  Hence the reference
constellation's ``psi = pi * Tc / T = pi * 9 / 90 = 18 degrees``.

The half-angle also follows from antenna geometry: given a minimum
elevation angle ``eps`` at the edge of coverage,

``psi = acos( R/(R+h) * cos(eps) ) - eps``.

Both derivations are provided so the reference constellation can be
built either from the paper's published ``Tc`` or from hardware-style
parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH, Body
from repro.orbits.frames import GeodeticPoint, central_angle, geodetic_to_ecef

__all__ = [
    "Footprint",
    "half_angle_from_elevation",
    "elevation_from_half_angle",
    "half_angle_for_coverage_time",
    "coverage_time_minutes",
]


def half_angle_from_elevation(
    altitude_km: float, min_elevation: float, body: Body = EARTH
) -> float:
    """Footprint half-angle ``psi`` for a satellite at ``altitude_km``
    whose coverage edge is at elevation ``min_elevation`` (radians)."""
    if altitude_km <= 0:
        raise ConfigurationError(f"altitude_km must be positive, got {altitude_km}")
    if not 0.0 <= min_elevation < math.pi / 2:
        raise ConfigurationError(
            f"min_elevation must be in [0, pi/2), got {min_elevation}"
        )
    ratio = body.radius_km / (body.radius_km + altitude_km)
    return math.acos(ratio * math.cos(min_elevation)) - min_elevation


def elevation_from_half_angle(
    altitude_km: float, half_angle: float, body: Body = EARTH
) -> float:
    """Edge-of-coverage elevation angle for a footprint half-angle
    ``psi`` (inverse of :func:`half_angle_from_elevation`)."""
    if altitude_km <= 0:
        raise ConfigurationError(f"altitude_km must be positive, got {altitude_km}")
    horizon = math.acos(body.radius_km / (body.radius_km + altitude_km))
    if not 0.0 < half_angle <= horizon:
        raise ConfigurationError(
            f"half_angle must be in (0, {horizon:.4f}] for altitude "
            f"{altitude_km} km, got {half_angle}"
        )
    r = body.radius_km
    h = altitude_km
    # tan(eps) = (cos(psi) - r/(r+h)) / sin(psi)
    return math.atan2(math.cos(half_angle) - r / (r + h), math.sin(half_angle))


def half_angle_for_coverage_time(
    orbit_period_minutes: float, coverage_time_minutes_: float
) -> float:
    """Half-angle ``psi`` giving the requested coverage time:
    ``psi = pi * Tc / T``."""
    if not 0 < coverage_time_minutes_ < orbit_period_minutes:
        raise ConfigurationError(
            "coverage time must be positive and below the orbit period, got "
            f"Tc={coverage_time_minutes_}, T={orbit_period_minutes}"
        )
    return math.pi * coverage_time_minutes_ / orbit_period_minutes


def coverage_time_minutes(orbit_period_minutes: float, half_angle: float) -> float:
    """Coverage time implied by a half-angle (inverse of
    :func:`half_angle_for_coverage_time`)."""
    if half_angle <= 0:
        raise ConfigurationError(f"half_angle must be positive, got {half_angle}")
    return half_angle * orbit_period_minutes / math.pi


@dataclass(frozen=True)
class Footprint:
    """A conical footprint with Earth-central half-angle ``psi``."""

    half_angle: float

    def __post_init__(self) -> None:
        if not 0.0 < self.half_angle < math.pi / 2:
            raise ConfigurationError(
                f"half_angle must be in (0, pi/2), got {self.half_angle}"
            )

    @classmethod
    def reference(cls) -> "Footprint":
        """Footprint of the paper's reference constellation
        (``Tc = 9`` min on a 90-minute orbit => 18 degrees)."""
        return cls(half_angle=half_angle_for_coverage_time(90.0, 9.0))

    @property
    def radius_km(self) -> float:
        """Footprint radius measured along the surface (km)."""
        return EARTH.radius_km * self.half_angle

    def covers(
        self,
        satellite_ecef: np.ndarray,
        ground_point: GeodeticPoint,
        body: Body = EARTH,
    ) -> bool:
        """Whether the ground point lies inside the footprint of a
        satellite at ``satellite_ecef``."""
        ground = geodetic_to_ecef(ground_point, body)
        return central_angle(satellite_ecef, ground) <= self.half_angle

    def covers_angle(self, angle: float) -> bool:
        """Whether a pre-computed Earth-central angle is inside the
        footprint (vector-free fast path for sweeps)."""
        return angle <= self.half_angle
