"""Secular J2 perturbations for circular orbits (extension).

The Earth's oblateness makes orbital planes precess: the RAAN drifts at

``d(RAAN)/dt = -(3/2) n J2 (Re / a)^2 cos(i)``

and the in-plane motion picks up a small secular correction.  For
constellation design this matters in two ways the base model ignores:

* plane spacing is only preserved if all planes share the same
  inclination and altitude (equal drift) -- which Walker designs do;
* sun-synchronous missions pick the inclination whose drift matches
  the Earth's mean motion around the Sun (~0.9856 deg/day).

:class:`J2CircularOrbit` wraps :class:`~repro.orbits.kepler.CircularOrbit`
with these secular rates; :func:`sun_synchronous_inclination` solves the
design equation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.orbits.bodies import EARTH, Body
from repro.orbits.frames import rotation_x, rotation_z
from repro.orbits.kepler import CircularOrbit

__all__ = [
    "SUN_SYNCHRONOUS_RATE_RAD_S",
    "J2CircularOrbit",
    "raan_drift_rate",
    "sun_synchronous_inclination",
]

#: Required nodal drift for sun-synchronism: one revolution per
#: tropical year (rad/s).
SUN_SYNCHRONOUS_RATE_RAD_S = 2.0 * math.pi / (365.2422 * 86400.0)


def raan_drift_rate(
    altitude_km: float, inclination: float, body: Body = EARTH
) -> float:
    """Secular RAAN drift of a circular orbit (rad/s)."""
    if altitude_km <= 0:
        raise ConfigurationError(f"altitude_km must be positive, got {altitude_km}")
    a = body.radius_km + altitude_km
    n = 2.0 * math.pi / body.period_s(a)
    return -1.5 * n * body.j2 * (body.radius_km / a) ** 2 * math.cos(inclination)


def sun_synchronous_inclination(altitude_km: float, body: Body = EARTH) -> float:
    """Inclination making a circular orbit sun-synchronous (radians).

    Solves ``raan_drift(i) = +SUN_SYNCHRONOUS_RATE``; feasible only up
    to the altitude where the required ``cos(i)`` magnitude exceeds 1.
    """
    if altitude_km <= 0:
        raise ConfigurationError(f"altitude_km must be positive, got {altitude_km}")
    a = body.radius_km + altitude_km
    n = 2.0 * math.pi / body.period_s(a)
    cos_i = -SUN_SYNCHRONOUS_RATE_RAD_S / (
        1.5 * n * body.j2 * (body.radius_km / a) ** 2
    )
    if not -1.0 <= cos_i <= 1.0:
        raise SolverError(
            f"no sun-synchronous inclination exists at {altitude_km} km"
        )
    return math.acos(cos_i)


@dataclass(frozen=True)
class J2CircularOrbit:
    """A circular orbit with secular J2 nodal regression.

    The osculating orbit at time ``t`` is the base orbit with
    ``raan(t) = raan0 + raan_drift * t``; the in-plane rate uses the
    J2-corrected nodal period.
    """

    base: CircularOrbit

    def raan_rate(self, body: Body = EARTH) -> float:
        """Secular RAAN drift (rad/s)."""
        return raan_drift_rate(self.base.altitude_km, self.base.inclination, body)

    def nodal_rate(self, body: Body = EARTH) -> float:
        """J2-corrected argument-of-latitude rate (rad/s): the draconic
        (node-to-node) angular rate."""
        a = self.base.radius_km(body)
        n = self.base.mean_motion(body)
        correction = (
            1.0
            - 1.5
            * body.j2
            * (body.radius_km / a) ** 2
            * (1.0 - 4.0 * math.cos(self.base.inclination) ** 2)
        )
        return n * correction

    def raan_at(self, time_s: float, body: Body = EARTH) -> float:
        """RAAN at ``time_s``."""
        return self.base.raan + self.raan_rate(body) * time_s

    def position_eci(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """ECI position (km) including nodal regression."""
        u = self.base.phase + self.nodal_rate(body) * time_s
        r = self.base.radius_km(body)
        in_plane = np.array([r * math.cos(u), r * math.sin(u), 0.0])
        rotation = rotation_z(self.raan_at(time_s, body)) @ rotation_x(
            self.base.inclination
        )
        return rotation @ in_plane

    def is_sun_synchronous(self, *, tolerance: float = 0.02, body: Body = EARTH) -> bool:
        """Whether the drift matches the sun-synchronous rate within a
        relative ``tolerance``."""
        rate = self.raan_rate(body)
        if rate <= 0.0:
            return False
        return abs(rate - SUN_SYNCHRONOUS_RATE_RAD_S) <= (
            tolerance * SUN_SYNCHRONOUS_RATE_RAD_S
        )
