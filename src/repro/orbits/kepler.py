"""Orbit propagation: circular orbits (the constellation's workhorse)
and general Keplerian orbits (completeness; eccentric transfer orbits
for ground-spare delivery scenarios).

Conventions: distances km, times seconds, angles radians.  ECI frame;
see :mod:`repro.orbits.frames` for the rotation to Earth-fixed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.orbits.bodies import EARTH, Body
from repro.orbits.frames import rotation_x, rotation_z

__all__ = ["CircularOrbit", "KeplerianOrbit", "solve_kepler"]


@dataclass(frozen=True)
class CircularOrbit:
    """A circular orbit defined by altitude, inclination, RAAN and the
    argument of latitude at the epoch.

    Attributes
    ----------
    altitude_km:
        Height above the body's mean radius.
    inclination:
        Orbital inclination (radians).
    raan:
        Right ascension of the ascending node (radians).
    phase:
        Argument of latitude at ``t = 0`` (radians) -- the satellite's
        angular position along the orbit, measured from the ascending
        node.
    """

    altitude_km: float
    inclination: float
    raan: float = 0.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.altitude_km <= 0:
            raise ConfigurationError(
                f"altitude_km must be positive, got {self.altitude_km}"
            )

    @classmethod
    def from_period(
        cls,
        period_s: float,
        inclination: float,
        raan: float = 0.0,
        phase: float = 0.0,
        body: Body = EARTH,
    ) -> "CircularOrbit":
        """Circular orbit with the given Keplerian period (e.g. the
        reference constellation's 90 minutes)."""
        semi_major = body.semi_major_axis_km(period_s)
        return cls(
            altitude_km=semi_major - body.radius_km,
            inclination=inclination,
            raan=raan,
            phase=phase,
        )

    def radius_km(self, body: Body = EARTH) -> float:
        """Orbital radius (km)."""
        return body.radius_km + self.altitude_km

    def period_s(self, body: Body = EARTH) -> float:
        """Orbital period (s)."""
        return body.period_s(self.radius_km(body))

    def mean_motion(self, body: Body = EARTH) -> float:
        """Angular rate along the orbit (rad/s)."""
        return 2.0 * math.pi / self.period_s(body)

    def _plane_rotation(self) -> np.ndarray:
        return rotation_z(self.raan) @ rotation_x(self.inclination)

    def argument_of_latitude(self, time_s: float, body: Body = EARTH) -> float:
        """Argument of latitude at ``time_s``."""
        return self.phase + self.mean_motion(body) * time_s

    def position_eci(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """ECI position at ``time_s`` (km)."""
        u = self.argument_of_latitude(time_s, body)
        r = self.radius_km(body)
        in_plane = np.array([r * math.cos(u), r * math.sin(u), 0.0])
        return self._plane_rotation() @ in_plane

    def velocity_eci(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """ECI velocity at ``time_s`` (km/s)."""
        u = self.argument_of_latitude(time_s, body)
        speed = body.circular_speed_km_s(self.radius_km(body))
        in_plane = np.array([-speed * math.sin(u), speed * math.cos(u), 0.0])
        return self._plane_rotation() @ in_plane

    def with_phase(self, phase: float) -> "CircularOrbit":
        """Copy with a different epoch phase (used by plane rephasing)."""
        return replace(self, phase=phase)


def solve_kepler(mean_anomaly: float, eccentricity: float, *, tolerance: float = 1e-12) -> float:
    """Solve Kepler's equation ``M = E - e sin E`` for the eccentric
    anomaly by bracketed Newton iteration.

    ``f(E) = E - e sin E - M`` is strictly increasing (``f' >= 1 - e >
    0``), so the root on ``[0, 2 pi]`` is unique; any Newton step that
    leaves the bracket is replaced by its midpoint, which makes the
    iteration unconditionally convergent even at high eccentricity
    (plain Newton from ``E = pi`` oscillates for e.g. ``M = -4``,
    ``e = 0.94``).  Negative mean anomalies solve by oddness:
    ``E(-M) = -E(M)``.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ConfigurationError(
            f"eccentricity must be in [0, 1) for elliptic orbits, got {eccentricity}"
        )
    m = math.fmod(mean_anomaly, 2.0 * math.pi)
    sign = -1.0 if m < 0.0 else 1.0
    m_abs = abs(m)
    low, high = 0.0, 2.0 * math.pi
    e_anom = m_abs if eccentricity < 0.8 else math.pi
    for _ in range(120):
        residual = e_anom - eccentricity * math.sin(e_anom) - m_abs
        delta = residual / (1.0 - eccentricity * math.cos(e_anom))
        if abs(delta) < tolerance:
            return sign * (e_anom - delta)
        if residual > 0.0:
            high = e_anom
        else:
            low = e_anom
        e_anom -= delta
        if not low < e_anom < high:
            e_anom = 0.5 * (low + high)
    raise SolverError(
        f"Kepler iteration failed for M={mean_anomaly}, e={eccentricity}"
    )


@dataclass(frozen=True)
class KeplerianOrbit:
    """A general elliptic orbit in classical elements.

    Attributes: semi-major axis (km), eccentricity, inclination, RAAN,
    argument of perigee, mean anomaly at epoch (radians).
    """

    semi_major_axis_km: float
    eccentricity: float
    inclination: float
    raan: float = 0.0
    argument_of_perigee: float = 0.0
    mean_anomaly_epoch: float = 0.0

    def __post_init__(self) -> None:
        if self.semi_major_axis_km <= 0:
            raise ConfigurationError(
                f"semi_major_axis_km must be positive, got {self.semi_major_axis_km}"
            )
        if not 0.0 <= self.eccentricity < 1.0:
            raise ConfigurationError(
                f"eccentricity must be in [0, 1), got {self.eccentricity}"
            )

    def period_s(self, body: Body = EARTH) -> float:
        """Orbital period (s)."""
        return body.period_s(self.semi_major_axis_km)

    def mean_motion(self, body: Body = EARTH) -> float:
        """Mean motion (rad/s)."""
        return 2.0 * math.pi / self.period_s(body)

    def _state_perifocal(self, time_s: float, body: Body) -> "tuple[np.ndarray, np.ndarray]":
        mean_anomaly = self.mean_anomaly_epoch + self.mean_motion(body) * time_s
        ecc_anomaly = solve_kepler(mean_anomaly, self.eccentricity)
        a, e = self.semi_major_axis_km, self.eccentricity
        cos_e, sin_e = math.cos(ecc_anomaly), math.sin(ecc_anomaly)
        radius = a * (1.0 - e * cos_e)
        position = np.array(
            [a * (cos_e - e), a * math.sqrt(1.0 - e * e) * sin_e, 0.0]
        )
        # Vis-viva derived perifocal velocity.
        factor = math.sqrt(body.mu_km3_s2 * a) / radius
        velocity = np.array(
            [-factor * sin_e, factor * math.sqrt(1.0 - e * e) * cos_e, 0.0]
        )
        return position, velocity

    def _rotation(self) -> np.ndarray:
        return (
            rotation_z(self.raan)
            @ rotation_x(self.inclination)
            @ rotation_z(self.argument_of_perigee)
        )

    def position_eci(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """ECI position at ``time_s`` (km)."""
        position, _ = self._state_perifocal(time_s, body)
        return self._rotation() @ position

    def velocity_eci(self, time_s: float, body: Body = EARTH) -> np.ndarray:
        """ECI velocity at ``time_s`` (km/s)."""
        _, velocity = self._state_perifocal(time_s, body)
        return self._rotation() @ velocity

    @classmethod
    def from_circular(cls, orbit: CircularOrbit, body: Body = EARTH) -> "KeplerianOrbit":
        """Embed a circular orbit in the general representation."""
        return cls(
            semi_major_axis_km=orbit.radius_km(body),
            eccentricity=0.0,
            inclination=orbit.inclination,
            raan=orbit.raan,
            argument_of_perigee=0.0,
            mean_anomaly_epoch=orbit.phase,
        )
