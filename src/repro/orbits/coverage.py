"""Coverage analytics over a constellation (the reproduction's
substitute for the SOAP interactive simulation the paper used).

Answers the coarse-grained questions Section 4.1 takes from SOAP:

* how long is a ground point covered by a single footprint
  (measured coverage time, to validate ``Tc = 9`` minutes);
* how often does the next satellite of a plane revisit a point
  (measured revisit time, to validate ``Tr[k] = theta / k``);
* what fraction of time is a point covered by overlapped footprints,
  as a function of latitude (lowest at the equator, highest at the
  poles; around 30 degrees the centre line of a trajectory is the
  worst case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH, Body
from repro.orbits.constellation import Constellation, OrbitalPlane, Satellite
from repro.orbits.frames import GeodeticPoint, central_angle, ecef_to_eci, geodetic_to_ecef

__all__ = [
    "covering_satellites",
    "coverage_multiplicity",
    "CoverageSeries",
    "coverage_series",
    "measured_coverage_time_minutes",
    "measured_revisit_time_minutes",
    "latitude_overlap_profile",
]


def covering_satellites(
    constellation: Constellation,
    point: GeodeticPoint,
    time_s: float,
    body: Body = EARTH,
) -> List[Satellite]:
    """Satellites whose footprint covers ``point`` at ``time_s``."""
    ground_eci = ecef_to_eci(geodetic_to_ecef(point, body), time_s, body)
    result = []
    for satellite in constellation.satellites:
        sat_eci = satellite.position_eci(time_s, body)
        if central_angle(sat_eci, ground_eci) <= constellation.footprint.half_angle:
            result.append(satellite)
    return result


def coverage_multiplicity(
    constellation: Constellation,
    point: GeodeticPoint,
    time_s: float,
    body: Body = EARTH,
) -> int:
    """Number of footprints covering ``point`` at ``time_s``."""
    return len(covering_satellites(constellation, point, time_s, body))


@dataclass
class CoverageSeries:
    """Sampled coverage multiplicity at a ground point."""

    times_s: np.ndarray
    multiplicity: np.ndarray

    @property
    def step_s(self) -> float:
        """Sampling interval."""
        return float(self.times_s[1] - self.times_s[0]) if len(self.times_s) > 1 else 0.0

    def fraction_at_least(self, count: int) -> float:
        """Fraction of samples covered by >= ``count`` footprints."""
        return float(np.mean(self.multiplicity >= count))

    def longest_run_minutes(self, count: int) -> float:
        """Longest contiguous run with multiplicity >= ``count``, in
        minutes."""
        covered = self.multiplicity >= count
        best = run = 0
        for flag in covered:
            run = run + 1 if flag else 0
            best = max(best, run)
        return best * self.step_s / 60.0

    def gaps_minutes(self) -> List[float]:
        """Durations (minutes) of the uncovered gaps in the series."""
        gaps = []
        run = 0
        for flag in self.multiplicity == 0:
            if flag:
                run += 1
            elif run:
                gaps.append(run * self.step_s / 60.0)
                run = 0
        if run:
            gaps.append(run * self.step_s / 60.0)
        return gaps


def coverage_series(
    constellation: Constellation,
    point: GeodeticPoint,
    duration_s: float,
    *,
    step_s: float = 10.0,
    start_s: float = 0.0,
    body: Body = EARTH,
) -> CoverageSeries:
    """Sample the coverage multiplicity at ``point`` over a window.

    Vectorised over satellites per sample; for the reference
    constellation (98 satellites) a full orbit at 10 s resolution is a
    few tens of thousands of angle evaluations.
    """
    if duration_s <= 0 or step_s <= 0:
        raise ConfigurationError("duration_s and step_s must be positive")
    times = np.arange(start_s, start_s + duration_s, step_s)
    ground_ecef = geodetic_to_ecef(point, body)
    half_angle = constellation.footprint.half_angle
    counts = np.zeros(len(times), dtype=int)
    satellites = constellation.satellites
    for i, t in enumerate(times):
        ground_eci = ecef_to_eci(ground_ecef, float(t), body)
        ground_unit = ground_eci / np.linalg.norm(ground_eci)
        count = 0
        for satellite in satellites:
            sat = satellite.position_eci(float(t), body)
            cosine = float(np.dot(sat, ground_unit) / np.linalg.norm(sat))
            if math.acos(max(-1.0, min(1.0, cosine))) <= half_angle:
                count += 1
        counts[i] = count
    return CoverageSeries(times_s=times, multiplicity=counts)


def measured_coverage_time_minutes(
    plane: OrbitalPlane,
    footprint_half_angle: float,
    point: GeodeticPoint,
    *,
    step_s: float = 5.0,
    body: Body = EARTH,
) -> float:
    """Maximum single-satellite dwell time over ``point`` for one
    satellite of ``plane`` (measures ``Tc``).

    Earth rotation is frozen during the measurement (the paper's ``Tc``
    is the footprint "diameter in time units" along the track), so the
    result is directly comparable to ``Tc = psi T / pi``.
    """
    satellite = plane.satellites[0]
    period_s = satellite.orbit.period_s(body)
    ground = geodetic_to_ecef(point, body)  # frozen frame
    best = 0.0
    run = 0.0
    # Scan two periods so a pass straddling the period boundary is seen
    # as one contiguous dwell.
    for t in np.arange(0.0, 2.0 * period_s, step_s):
        sat = satellite.orbit.position_eci(float(t), body)
        if central_angle(sat, ground) <= footprint_half_angle:
            run += step_s
            best = max(best, run)
        else:
            run = 0.0
    return best / 60.0


def measured_revisit_time_minutes(
    plane: OrbitalPlane,
    point: GeodeticPoint,
    *,
    step_s: float = 2.0,
    body: Body = EARTH,
) -> float:
    """Time between successive footprint-centre passes of adjacent
    satellites in ``plane`` over ``point`` (measures ``Tr[k]``).

    Computed as the gap between closest-approach times of consecutive
    satellites, with the Earth frozen (matching the paper's definition
    of ``Tr`` as the "distance, measured in time units, between the two
    satellites").
    """
    if plane.active_count < 2:
        raise ConfigurationError("revisit time needs at least two satellites")
    ground = geodetic_to_ecef(point, body)
    period_s = plane.satellites[0].orbit.period_s(body)
    times = np.arange(0.0, period_s, step_s)

    def closest_approach(satellite: Satellite) -> float:
        angles = [
            central_angle(satellite.orbit.position_eci(float(t), body), ground)
            for t in times
        ]
        return float(times[int(np.argmin(angles))])

    first, second = plane.satellites[0], plane.satellites[1]
    gap = abs(closest_approach(first) - closest_approach(second))
    # The two satellites are adjacent: the gap is one revisit period,
    # modulo wrap-around at the orbit period.
    gap = min(gap, period_s - gap)
    return gap / 60.0


def latitude_overlap_profile(
    constellation: Constellation,
    latitudes_deg: Sequence[float],
    *,
    duration_s: float = 5400.0,
    step_s: float = 30.0,
    longitude_deg: float = 0.0,
    body: Body = EARTH,
) -> "dict[float, float]":
    """Fraction of time each latitude is covered by overlapped
    footprints (multiplicity >= 2).

    Reproduces the Section 4.1 observation that the overlapped-to-single
    coverage ratio is lowest at the equator and highest at the poles.
    """
    profile = {}
    for lat in latitudes_deg:
        point = GeodeticPoint.from_degrees(lat, longitude_deg)
        series = coverage_series(
            constellation, point, duration_s, step_s=step_s, body=body
        )
        profile[float(lat)] = series.fraction_at_least(2)
    return profile
