"""Exception hierarchy for the OAQ reproduction library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A model or scenario was configured with invalid parameters."""


class ModelError(ReproError):
    """A model is structurally ill-formed (e.g. an absorbing SAN marking
    where none is expected, or a non-ergodic chain passed to a
    steady-state solver)."""


class SolverError(ReproError):
    """A numerical solver failed to converge or produced an invalid
    result (e.g. a singular normal-equation matrix in the WLS
    estimator)."""


class StateSpaceExplosionError(ModelError):
    """Reachability-graph generation exceeded the configured state
    budget."""

    def __init__(self, limit: int):
        super().__init__(
            f"state-space generation exceeded the limit of {limit} markings; "
            "raise max_states or simplify the model"
        )
        self.limit = limit


class ProtocolError(ReproError):
    """The OAQ coordination protocol reached an inconsistent state
    (indicates a bug in a scenario definition, not in a satellite --
    genuine node failures are simulated as fail-silence, never as
    exceptions)."""
