"""Exception hierarchy for the OAQ reproduction library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A model or scenario was configured with invalid parameters."""


class ModelError(ReproError):
    """A model is structurally ill-formed (e.g. an absorbing SAN marking
    where none is expected, or a non-ergodic chain passed to a
    steady-state solver)."""


class SolverError(ReproError):
    """A numerical solver failed to converge or produced an invalid
    result (e.g. a singular normal-equation matrix in the WLS
    estimator)."""


class StateSpaceExplosionError(ModelError):
    """Reachability-graph generation exceeded the configured state
    budget.

    Carries the ``limit`` that was exceeded and (when the generator can
    provide it) the ``marking`` whose interning tripped the limit, so
    the offending corner of the state space is visible without
    re-running under a debugger.
    """

    def __init__(self, limit: int, marking=None):
        message = f"state-space generation exceeded the limit of {limit} markings"
        if marking is not None:
            message += f" while interning marking {marking}"
        message += (
            "; raise max_states, declare exchangeable place groups and use "
            "state lumping (repro.san.lumping) to collapse symmetric "
            "states, or simplify the model"
        )
        super().__init__(message)
        self.limit = limit
        self.marking = marking


class CampaignError(ReproError):
    """A sharded campaign run failed in a way that voids its
    determinism or fault-tolerance contract (divergent re-execution
    digests, worker-pool restarts exhausted), as opposed to an
    evaluator error, which propagates as itself."""


class ProtocolError(ReproError):
    """The OAQ coordination protocol reached an inconsistent state
    (indicates a bug in a scenario definition, not in a satellite --
    genuine node failures are simulated as fail-silence, never as
    exceptions)."""
