"""Resolve a :class:`~repro.faults.plan.FaultPlan` against a concrete
:class:`~repro.protocol.runner.CenterlineScenario`.

The plan is declarative; this module turns it into the runner's
mechanisms:

* ``fail_silent`` schedules (expanding the successor rule relative to
  the scenario's initial detector, which is ``S1`` when the signal
  starts covered and ``S2`` when it starts in the coverage gap);
* a time-aware ``link_loss_fn`` for per-link loss and downlink
  blackout windows;
* a stale-membership ``next_peer_override`` that skips satellites the
  (lagging) failure view knows to be dead.

``faulty_scenario`` is deterministic in ``seed``: the signal draws are
taken from a probe scenario with the same seed, so a plan changes the
injected faults but never the sampled signal -- paired comparisons
across plans stay paired.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.config import EvaluationParams
from repro.core.schemes import Scheme
from repro.faults.plan import FaultPlan
from repro.geometry.plane import PlaneGeometry
from repro.protocol.runner import CenterlineScenario
from repro.protocol.satellite import MessagingVariant

__all__ = ["StalePeerView", "build_link_loss_fn", "faulty_scenario"]


def build_link_loss_fn(
    plan: FaultPlan,
) -> Optional[Callable[[float, str, str], float]]:
    """The network's per-message loss hook for ``plan`` (None when the
    plan has neither per-link loss nor blackout windows, so the fast
    scalar-only path stays in force)."""
    if not plan.link_loss and not plan.downlink_blackouts:
        return None

    def loss_fn(now: float, source: str, destination: str) -> float:
        return plan.link_loss_probability(now, source, destination)

    return loss_fn


class StalePeerView:
    """Next-peer selection from a stale failure view.

    The view at simulation time ``t`` contains exactly the failures
    that happened at or before ``t - staleness``; the peer invited is
    the first not-known-failed satellite after the caller in visit
    order.  With ``staleness = 0`` this is an omniscient membership
    service; large staleness converges to the default
    next-in-visit-order rule (failures are never learned in time).
    """

    def __init__(
        self,
        names: Sequence[str],
        failure_times: "dict[str, float]",
        staleness: float,
        scenario: object,
    ):
        # ``scenario`` is anything exposing a ``simulator`` attribute:
        # a CenterlineScenario (None before the first run) or a
        # batched-replication ScenarioTemplate.
        self._names = list(names)
        self._failure_times = dict(failure_times)
        self._staleness = staleness
        self._scenario = scenario

    def _known_failed(self, now: float) -> "set[str]":
        view_time = now - self._staleness
        return {
            name
            for name, time in self._failure_times.items()
            if time <= view_time
        }

    def __call__(self, name: str) -> Optional[str]:
        simulator = self._scenario.simulator
        now = simulator.now if simulator is not None else 0.0
        failed = self._known_failed(now)
        index = self._names.index(name)
        for candidate in self._names[index + 1 :]:
            if candidate not in failed:
                return candidate
        return None


def faulty_scenario(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    plan: FaultPlan,
    *,
    scheme: Scheme = Scheme.OAQ,
    variant: MessagingVariant = MessagingVariant.DONE_PROPAGATION,
    seed: int,
    onset_position: Optional[float] = None,
    signal_duration: Optional[float] = None,
    satellite_count: Optional[int] = None,
) -> CenterlineScenario:
    """A :class:`CenterlineScenario` with ``plan`` injected.

    The signal (onset position and duration) is drawn exactly as a
    plain ``CenterlineScenario(geometry, params, seed=seed)`` would
    draw it, so outcomes across plans with the same seed are paired
    samples of the same physical signal.
    """
    probe = CenterlineScenario(
        geometry,
        params,
        scheme=scheme,
        variant=variant,
        onset_position=onset_position,
        signal_duration=signal_duration,
        satellite_count=satellite_count,
        seed=seed,
    )
    names: List[str] = [f"S{j + 1}" for j in range(probe.satellite_count)]
    detector = "S1" if probe.covered_at_onset() else "S2"
    failure_times = plan.failure_times(names, detector)

    scenario = CenterlineScenario(
        geometry,
        params,
        scheme=scheme,
        variant=variant,
        onset_position=probe.onset_position,
        signal_duration=probe.signal.duration,
        fail_silent=failure_times,
        crosslink_loss_probability=plan.crosslink_loss,
        link_loss_fn=build_link_loss_fn(plan),
        satellite_count=probe.satellite_count,
        seed=seed,
    )
    if plan.membership_staleness is not None:
        scenario.next_peer_override = StalePeerView(
            names, failure_times, plan.membership_staleness, scenario
        )
    return scenario
