"""Cross-checks between fault campaigns and the closed-form QoS model.

Two campaign configurations have exact analytic references:

* **fault-free**: the empirical level distribution must match the
  paper's conditional model ``P(Y = y | k)``
  (:func:`repro.analytic.qos_model.conditional_distribution`) for the
  scheme under test;
* **all successors fail-silent** (underlapping plane, OAQ,
  done-propagation): every coordination request dies with its
  recipient, the detector's done-timeout fires, and the chain never
  extends -- so OAQ degrades exactly to the BAQ conditional
  distribution (the sequential-dual mass folds into single coverage
  while detection, which is pure geometry, is untouched).  This is the
  paper's graceful-degradation claim in closed form.

``validate_outcome`` wraps the comparison as per-level Wilson-interval
containment checks; ``cross_check_fault_free`` and
``cross_check_fail_silent`` run the corresponding campaigns and
validate them in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.faults.campaign import Campaign, PlanOutcome
from repro.faults.plan import FaultPlan
from repro.geometry.plane import PlaneGeometry

__all__ = [
    "LevelCheck",
    "ValidationReport",
    "fail_silent_reference",
    "validate_outcome",
    "cross_check_fault_free",
    "cross_check_fail_silent",
]


@dataclass(frozen=True)
class LevelCheck:
    """One ``P(Y >= level)`` containment check."""

    level: QoSLevel
    empirical: float
    low: float
    high: float
    analytic: float

    @property
    def contained(self) -> bool:
        """Whether the analytic value lies inside the Wilson interval."""
        return self.low <= self.analytic <= self.high


@dataclass(frozen=True)
class ValidationReport:
    """All level checks for one campaign cell."""

    plan_name: str
    scheme: Scheme
    runs: int
    checks: Tuple[LevelCheck, ...]

    @property
    def passed(self) -> bool:
        """Whether every level check is contained."""
        return all(check.contained for check in self.checks)

    def failures(self) -> List[LevelCheck]:
        """The checks whose analytic value escaped the interval."""
        return [check for check in self.checks if not check.contained]


def fail_silent_reference(
    geometry: PlaneGeometry, params: EvaluationParams, scheme: Scheme
) -> QoSDistribution:
    """Analytic ``P(Y = y | k)`` when every successor is fail-silent.

    Only defined for underlapping planes: there the coordination chain
    is the *sole* source of level 2, so killing it reduces both
    schemes to the BAQ distribution.  On an overlapping plane level 3
    comes from the detector's own simultaneous measurement, which the
    fail-silent model does not remove, so no degraded closed form
    applies and this raises.
    """
    if geometry.overlapping:
        raise ConfigurationError(
            "the fail-silent degradation reference is only defined for "
            f"underlapping planes (k={geometry.active_satellites} overlaps)"
        )
    return conditional_distribution(geometry, params, Scheme.BAQ)


def validate_outcome(
    outcome: PlanOutcome,
    analytic: QoSDistribution,
    *,
    levels: Sequence[QoSLevel] = (
        QoSLevel.SINGLE,
        QoSLevel.SEQUENTIAL_DUAL,
        QoSLevel.SIMULTANEOUS_DUAL,
    ),
) -> ValidationReport:
    """Check ``P(Y >= y)`` containment for every requested level."""
    checks = []
    for level in levels:
        interval = outcome.wilson(level)
        checks.append(
            LevelCheck(
                level=level,
                empirical=outcome.p_at_least(level),
                low=interval.low,
                high=interval.high,
                analytic=analytic.at_least(level),
            )
        )
    return ValidationReport(
        plan_name=outcome.plan.name,
        scheme=outcome.scheme,
        runs=outcome.runs,
        checks=tuple(checks),
    )


def _run_and_validate(
    params: EvaluationParams,
    *,
    capacity: int,
    plan: FaultPlan,
    references,
    schemes: Sequence[Scheme],
    runs: int,
    seed: int,
    n_jobs: int,
) -> List[ValidationReport]:
    campaign = Campaign(
        params,
        capacity=capacity,
        plans=(plan,),
        schemes=schemes,
        runs=runs,
        seed=seed,
        n_jobs=n_jobs,
    )
    result = campaign.run()
    return [
        validate_outcome(result.outcome(plan.name, scheme), reference)
        for scheme, reference in zip(schemes, references)
    ]


def cross_check_fault_free(
    params: EvaluationParams,
    *,
    capacity: int,
    schemes: Sequence[Scheme] = (Scheme.OAQ, Scheme.BAQ),
    runs: int = 200,
    seed: int = 0,
    n_jobs: int = 1,
) -> List[ValidationReport]:
    """Fault-free campaign versus the paper's conditional model, one
    report per scheme."""
    geometry = params.constellation.plane_geometry(capacity)
    references = [
        conditional_distribution(geometry, params, scheme) for scheme in schemes
    ]
    return _run_and_validate(
        params,
        capacity=capacity,
        plan=FaultPlan.fault_free(),
        references=references,
        schemes=schemes,
        runs=runs,
        seed=seed,
        n_jobs=n_jobs,
    )


def cross_check_fail_silent(
    params: EvaluationParams,
    *,
    capacity: int,
    schemes: Sequence[Scheme] = (Scheme.OAQ, Scheme.BAQ),
    runs: int = 200,
    seed: int = 0,
    n_jobs: int = 1,
) -> List[ValidationReport]:
    """All-successors-fail-silent campaign versus the degraded
    (BAQ-shaped) reference, one report per scheme (underlap only)."""
    geometry = params.constellation.plane_geometry(capacity)
    references = [
        fail_silent_reference(geometry, params, scheme) for scheme in schemes
    ]
    return _run_and_validate(
        params,
        capacity=capacity,
        plan=FaultPlan.successors_fail_silent(0.0),
        references=references,
        schemes=schemes,
        runs=runs,
        seed=seed,
        n_jobs=n_jobs,
    )
