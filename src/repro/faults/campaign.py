"""Seeded Monte-Carlo fault-injection campaigns.

A :class:`Campaign` crosses a battery of
:class:`~repro.faults.plan.FaultPlan` entries with one or more schemes
and runs each combination ``runs`` times through the full protocol
simulation.  Work is batched and dispatched through the experiment
engine's :class:`~repro.experiments.engine.SweepRunner`, so ``n_jobs``
fans batches out over a process pool exactly like the sweep
experiments -- and, like them, the result is independent of ``n_jobs``
and byte-identical across reruns with the same seed: every scenario's
seed derives from ``numpy.random.SeedSequence(campaign_seed).spawn``
keyed by (plan, scheme, run) position, never from worker identity or
wall-clock.

Each (plan, scheme) cell yields a :class:`PlanOutcome` holding the
achieved-QoS-level counts, the empirical ``P(Y >= y)`` and its Wilson
confidence interval.  ``degradation_curve`` builds the paper-style
graceful-degradation view: achieved level versus loss rate or failure
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.experiments.engine import SweepRunner
from repro.faults.injector import StalePeerView, build_link_loss_fn
from repro.faults.plan import FaultPlan
from repro.faults.stats import WilsonInterval, wilson_interval
from repro.protocol.satellite import MessagingVariant

__all__ = ["PlanOutcome", "CampaignResult", "Campaign", "degradation_curve"]


@dataclass(frozen=True)
class PlanOutcome:
    """Aggregated result of all runs of one (plan, scheme) cell."""

    plan: FaultPlan
    scheme: Scheme
    runs: int
    detected: int
    level_counts: Tuple[int, int, int, int]  #: runs per achieved level 0..3
    confidence: float = 0.95

    def count_at_least(self, level: QoSLevel) -> int:
        """Runs that achieved QoS level ``level`` or better."""
        return sum(self.level_counts[int(level) :])

    def p_at_least(self, level: QoSLevel) -> float:
        """Empirical ``P(Y >= level)``."""
        return self.count_at_least(level) / self.runs

    def wilson(self, level: QoSLevel) -> WilsonInterval:
        """Wilson confidence interval for ``P(Y >= level)``."""
        return wilson_interval(
            self.count_at_least(level), self.runs, confidence=self.confidence
        )

    def mean_level(self) -> float:
        """Average achieved QoS level over the campaign."""
        return (
            sum(level * count for level, count in enumerate(self.level_counts))
            / self.runs
        )


@dataclass
class CampaignResult:
    """All cells of a campaign, in (plan, scheme) declaration order."""

    outcomes: List[PlanOutcome]
    seed: int
    timings: Dict[str, float]

    def outcome(self, plan_name: str, scheme: Scheme) -> PlanOutcome:
        """The cell for ``(plan_name, scheme)``."""
        for outcome in self.outcomes:
            if outcome.plan.name == plan_name and outcome.scheme is scheme:
                return outcome
        raise ConfigurationError(
            f"no campaign cell for plan {plan_name!r} under {scheme.name}"
        )


def _scenario_seeds(campaign_seed: int, cell_index: int, runs: int) -> Tuple[int, ...]:
    """Deterministic per-run seeds for one (plan, scheme) cell."""
    cell_sequence = np.random.SeedSequence(campaign_seed).spawn(cell_index + 1)[
        cell_index
    ]
    return tuple(
        int(value) for value in cell_sequence.generate_state(runs, dtype=np.uint64)
    )


#: Single-slot template cache: ``(key, template)`` of the last cell
#: evaluated in this process.  Batches of one (plan, scheme) cell run
#: consecutively on one worker under the campaign's cell affinity, so
#: one slot turns per-batch template construction into per-cell.
#: Value-neutral: a :class:`ScenarioTemplate` is immutable and
#: ``replicate(seed)`` is bit-identical however often the template is
#: reused, so cache hits cannot change any result.
_TEMPLATE_SLOT: Optional[Tuple[Tuple, object]] = None


def _cell_template(geometry, plan, scheme, variant, params, capacity):
    """The cell's :class:`~repro.simulation.batch.ScenarioTemplate`,
    reused across this worker's consecutive batches of the same cell."""
    global _TEMPLATE_SLOT
    from repro.simulation.batch import ScenarioTemplate

    key = (repr(plan), scheme, variant, repr(params), capacity)
    if _TEMPLATE_SLOT is not None and _TEMPLATE_SLOT[0] == key:
        return _TEMPLATE_SLOT[1]
    template = ScenarioTemplate(
        geometry,
        params,
        scheme=scheme,
        variant=variant,
        crosslink_loss_probability=plan.crosslink_loss,
        link_loss_fn=build_link_loss_fn(plan),
        lazy_events=False,
        record_log=False,
    )
    _TEMPLATE_SLOT = (key, template)
    return template


def _cell_affinity(point: Mapping[str, object]) -> int:
    """Campaign affinity key: all batches of one (plan, scheme) cell
    execute consecutively on one worker, sharing its cached template."""
    return point["cell"]


def _evaluate_batch(point: Mapping[str, object]) -> Dict[str, object]:
    """Top-level (picklable) batch evaluator: run every seed of one
    batch against a shared :class:`ScenarioTemplate` and return the
    aggregated counts.

    The template replays :func:`~repro.faults.injector.faulty_scenario`
    bit for bit: the signal is drawn from a probe generator with the
    run's seed, and the replication then re-seeds a fresh generator for
    the protocol draws -- the same two-generator protocol the legacy
    per-run construction used, so campaign results (including the
    golden pins) are byte-identical, just without rebuilding the
    scenario infrastructure per run.  Strict (non-lazy) event
    scheduling keeps the event order key-for-key identical as well.

    ``engine="vector"`` routes *fault-free* cells through the
    struct-of-arrays engine of :mod:`repro.simulation.vector` instead:
    signal variates come batched from
    :func:`~repro.simulation.qos_montecarlo.draw_signal_variates` and
    protocol randomness from tapes, both off one generator keyed by
    the cell's full seed tuple.  Level counts are statistically -- not
    byte -- identical to the scalar path (deterministic across reruns,
    ``n_jobs`` and ``batch_size``, and exact against the scalar oracle
    within the vector engine).  Cells that inject any fault keep the
    scalar per-seed path regardless of ``engine``.
    """
    plan: FaultPlan = point["plan"]
    scheme: Scheme = point["scheme"]
    variant: MessagingVariant = point["variant"]
    params: EvaluationParams = point["params"]
    capacity: int = point["capacity"]
    seeds: Tuple[int, ...] = point["seeds"]
    engine: str = point.get("engine", "batch")
    geometry = params.constellation.plane_geometry(capacity)
    template = _cell_template(geometry, plan, scheme, variant, params, capacity)
    names = list(template.names)
    single_coverage = geometry.single_coverage_length

    if engine == "vector" and plan.is_fault_free:
        from repro.simulation.qos_montecarlo import draw_signal_variates

        runs: int = point["runs"]
        rng = np.random.default_rng(
            np.random.SeedSequence(point["cell_entropy"])
        )
        onsets, durations, _ = draw_signal_variates(geometry, params, runs, rng)
        levels, detected_mask = template.sample_levels(
            rng, onsets, durations, engine="vector"
        )
        counts = np.bincount(levels, minlength=4)
        return {
            "cell": point["cell"],
            "counts": tuple(int(count) for count in counts[:4]),
            "detected": int(np.count_nonzero(detected_mask)),
            "runs": runs,
        }

    counts = [0, 0, 0, 0]
    detected = 0
    for seed in seeds:
        # Signal draws come from a probe generator, exactly as
        # faulty_scenario's probe CenterlineScenario would consume them.
        probe = np.random.default_rng(seed)
        onset = float(probe.uniform(0.0, geometry.l1))
        duration = float(probe.exponential(1.0 / params.mu))
        covered = geometry.overlapping or onset < single_coverage
        failure_times = plan.failure_times(names, "S1" if covered else "S2")
        next_peer = None
        if plan.membership_staleness is not None:
            next_peer = StalePeerView(
                names, failure_times, plan.membership_staleness, template
            )
        outcome = template.replicate(
            seed,
            onset_position=onset,
            signal_duration=duration,
            fail_silent=failure_times,
            next_peer_override=next_peer,
        ).run()
        counts[int(outcome.achieved_level)] += 1
        if outcome.detection_time is not None:
            detected += 1
    return {
        "cell": point["cell"],
        "counts": tuple(counts),
        "detected": detected,
        "runs": len(seeds),
    }


class Campaign:
    """A seeded Monte-Carlo fault-injection campaign.

    Parameters
    ----------
    params / capacity:
        Evaluation parameters and the plane's satellite count ``k``.
    plans:
        The fault plans to evaluate (order preserved in the result).
    schemes:
        Schemes crossed with every plan (default: OAQ and BAQ).
    runs:
        Scenario runs per (plan, scheme) cell.
    seed:
        Campaign master seed; all per-run seeds derive from it.
    batch_size:
        Runs per work unit handed to the engine (smaller batches give
        better load balancing with ``n_jobs > 1``).
    n_jobs:
        Engine fan-out (see :class:`SweepRunner`); results do not
        depend on it.
    journal:
        Optional JSONL checkpoint-journal path: batches are journaled
        as they complete and an interrupted campaign resumes from the
        file, skipping completed work, to the identical result (see
        ``docs/CAMPAIGN.md``).
    engine:
        ``"batch"`` (default) runs every cell through the scalar
        per-seed path that the golden pins were recorded against;
        ``"vector"`` routes fault-free cells through
        :mod:`repro.simulation.vector` (~100x throughput on those
        cells; statistically-identical counts, still deterministic and
        independent of ``n_jobs``, but not byte-identical to the
        scalar path).  Faulty cells always use the scalar path.
    """

    def __init__(
        self,
        params: EvaluationParams,
        *,
        capacity: int,
        plans: Sequence[FaultPlan],
        schemes: Sequence[Scheme] = (Scheme.OAQ, Scheme.BAQ),
        variant: MessagingVariant = MessagingVariant.DONE_PROPAGATION,
        runs: int = 200,
        seed: int = 0,
        batch_size: int = 50,
        confidence: float = 0.95,
        n_jobs: int = 1,
        journal: Optional[str] = None,
        engine: str = "batch",
    ):
        if runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {runs}")
        if engine not in ("batch", "vector"):
            raise ConfigurationError(
                f"unknown engine {engine!r} (expected 'batch' or 'vector')"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if not plans:
            raise ConfigurationError("a campaign needs at least one fault plan")
        names = [plan.name for plan in plans]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate plan names: {names}")
        self.params = params
        self.capacity = capacity
        self.plans = list(plans)
        self.schemes = list(schemes)
        self.variant = variant
        self.runs = runs
        self.seed = seed
        self.batch_size = batch_size
        self.confidence = confidence
        self.n_jobs = n_jobs
        self.journal = journal
        self.engine = engine

    def _points(self) -> List[Dict[str, object]]:
        points: List[Dict[str, object]] = []
        cell_index = 0
        for plan in self.plans:
            for scheme in self.schemes:
                base = {
                    "cell": cell_index,
                    "plan": plan,
                    "scheme": scheme,
                    "variant": self.variant,
                    "params": self.params,
                    "capacity": self.capacity,
                    "engine": self.engine,
                }
                if self.engine == "vector" and plan.is_fault_free:
                    # One work unit per vector-eligible cell: draws are
                    # keyed by (campaign seed, cell), so the counts are
                    # independent of batch_size / n_jobs, and the
                    # engine is fast enough that batch-level load
                    # balancing buys nothing.
                    points.append(
                        dict(
                            base,
                            seeds=(),
                            runs=self.runs,
                            cell_entropy=(self.seed, cell_index),
                        )
                    )
                else:
                    seeds = _scenario_seeds(self.seed, cell_index, self.runs)
                    for offset in range(0, self.runs, self.batch_size):
                        points.append(
                            dict(
                                base,
                                seeds=seeds[
                                    offset : offset + self.batch_size
                                ],
                            )
                        )
                cell_index += 1
        return points

    def run(self) -> CampaignResult:
        """Execute every cell and aggregate the batches."""
        runner = SweepRunner(n_jobs=self.n_jobs, journal=self.journal)
        result = runner.run(
            experiment_id="fault-campaign",
            title="fault-injection campaign",
            headers=["cell", "counts", "detected", "runs"],
            row_fn=_evaluate_batch,
            points=self._points(),
            affinity=_cell_affinity,
        )
        cells: Dict[int, Dict[str, object]] = {}
        for row in result.rows:
            cell = cells.setdefault(
                row["cell"], {"counts": [0, 0, 0, 0], "detected": 0, "runs": 0}
            )
            for level, count in enumerate(row["counts"]):
                cell["counts"][level] += count
            cell["detected"] += row["detected"]
            cell["runs"] += row["runs"]

        outcomes: List[PlanOutcome] = []
        cell_index = 0
        for plan in self.plans:
            for scheme in self.schemes:
                cell = cells[cell_index]
                outcomes.append(
                    PlanOutcome(
                        plan=plan,
                        scheme=scheme,
                        runs=cell["runs"],
                        detected=cell["detected"],
                        level_counts=tuple(cell["counts"]),
                        confidence=self.confidence,
                    )
                )
                cell_index += 1
        return CampaignResult(
            outcomes=outcomes, seed=self.seed, timings=dict(result.timings)
        )


def degradation_curve(
    params: EvaluationParams,
    *,
    capacity: int,
    scheme: Scheme = Scheme.OAQ,
    loss_rates: Optional[Sequence[float]] = None,
    failure_counts: Optional[Sequence[int]] = None,
    runs: int = 200,
    seed: int = 0,
    n_jobs: int = 1,
    engine: str = "batch",
) -> List[Dict[str, object]]:
    """Achieved QoS level versus fault severity.

    Exactly one of ``loss_rates`` (crosslink loss sweep) or
    ``failure_counts`` (number of fail-silent successors, failed at
    time 0) must be given.  Returns one row per severity with the
    empirical ``P(Y >= 1)`` / ``P(Y >= 2)``, the level-2 Wilson
    bounds, and the mean achieved level -- the paper's
    graceful-degradation story as data.
    """
    if (loss_rates is None) == (failure_counts is None):
        raise ConfigurationError(
            "exactly one of loss_rates or failure_counts must be given"
        )
    if loss_rates is not None:
        axis = "loss rate"
        plans = [FaultPlan.lossy(rate) for rate in loss_rates]
        severities: Sequence[object] = list(loss_rates)
    else:
        axis = "failed successors"
        plans = []
        for count in failure_counts:
            if count == 0:
                plans.append(FaultPlan(name="successors-fail-0"))
            else:
                plans.append(
                    FaultPlan.successors_fail_silent(
                        0.0, count=count, name=f"successors-fail-{count}"
                    )
                )
        severities = list(failure_counts)

    campaign = Campaign(
        params,
        capacity=capacity,
        plans=plans,
        schemes=(scheme,),
        runs=runs,
        seed=seed,
        n_jobs=n_jobs,
        engine=engine,
    )
    result = campaign.run()
    rows: List[Dict[str, object]] = []
    for severity, outcome in zip(severities, result.outcomes):
        interval = outcome.wilson(QoSLevel.SEQUENTIAL_DUAL)
        rows.append(
            {
                axis: severity,
                "runs": outcome.runs,
                "P(Y>=1)": outcome.p_at_least(QoSLevel.SINGLE),
                "P(Y>=2)": outcome.p_at_least(QoSLevel.SEQUENTIAL_DUAL),
                "ci low": interval.low,
                "ci high": interval.high,
                "mean level": outcome.mean_level(),
            }
        )
    return rows
