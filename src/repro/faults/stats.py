"""Small-sample statistics for fault-injection campaigns.

Campaign results are Bernoulli counts (``successes`` runs out of
``trials`` achieved QoS level ``>= y``), so the natural uncertainty
statement is a binomial-proportion confidence interval.  The engine
uses the **Wilson score interval**: unlike the Wald interval it stays
inside ``[0, 1]``, behaves sensibly at 0 or ``n`` successes (both
common in fault campaigns -- e.g. BAQ never reaches level 2), and has
close-to-nominal coverage at the campaign sizes used here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

from repro.errors import ConfigurationError

__all__ = ["WilsonInterval", "wilson_interval"]


@dataclass(frozen=True)
class WilsonInterval:
    """A binomial-proportion confidence interval.

    Attributes
    ----------
    successes / trials:
        The Bernoulli counts the interval summarises.
    confidence:
        Nominal two-sided coverage (e.g. 0.95).
    low / high:
        The interval bounds, both inside ``[0, 1]``.
    """

    successes: int
    trials: int
    confidence: float
    low: float
    high: float

    @property
    def point(self) -> float:
        """The empirical proportion ``successes / trials``."""
        return self.successes / self.trials

    @property
    def width(self) -> float:
        """``high - low``."""
        return self.high - self.low

    def contains(self, probability: float) -> bool:
        """Whether ``probability`` lies inside ``[low, high]``."""
        return self.low <= probability <= self.high


def wilson_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> WilsonInterval:
    """Wilson score interval for a binomial proportion.

    With ``p = successes / trials`` and ``z`` the two-sided normal
    quantile for ``confidence``::

        centre = (p + z^2 / 2n) / (1 + z^2 / n)
        half   = z / (1 + z^2 / n) * sqrt(p (1 - p) / n + z^2 / 4 n^2)
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be in [0, trials={trials}], got {successes}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    z = float(norm.ppf(0.5 + confidence / 2.0))
    n = float(trials)
    p = successes / n
    denominator = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denominator
    half = (z / denominator) * math.sqrt(
        p * (1.0 - p) / n + z * z / (4.0 * n * n)
    )
    return WilsonInterval(
        successes=successes,
        trials=trials,
        confidence=confidence,
        low=max(0.0, centre - half),
        high=min(1.0, centre + half),
    )
