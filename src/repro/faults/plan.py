"""Declarative fault plans for the DES/protocol stack.

A :class:`FaultPlan` is pure data -- no callables, fully picklable --
describing *what goes wrong* in one scenario configuration:

* **fail-silent schedules**: named satellites go fail-silent at given
  times (the paper's failure model);
* **successor failures**: every satellite after the initial detector
  (optionally capped at a count) goes fail-silent at a given time --
  the worst case for OAQ's coordination chain, which degrades it to
  BAQ behaviour on an underlapping plane;
* **crosslink loss**: i.i.d. per-message erasure, plus per-link rates
  (with ``"*"`` wildcards) for asymmetric degradation;
* **downlink blackout windows**: intervals during which every message
  to the ground station is lost (ground-segment outage);
* **membership-view staleness**: the coordination layer picks the next
  peer from a failure view that lags reality by a fixed delay, instead
  of the default static next-in-visit-order rule.

Plans are *resolved* against a concrete scenario by
:mod:`repro.faults.injector` and executed in bulk by
:mod:`repro.faults.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["FaultPlan", "GROUND", "ANY"]

#: Destination name of the satellite-to-ground downlink.
GROUND = "ground"

#: Wildcard endpoint for per-link loss entries.
ANY = "*"

_LinkLoss = Tuple[str, str, float]
_Window = Tuple[float, float]


def _as_fail_silent(
    value: Union[Mapping[str, float], Iterable[Tuple[str, float]]],
) -> Tuple[Tuple[str, float], ...]:
    items = value.items() if isinstance(value, Mapping) else value
    return tuple(sorted((str(name), float(time)) for name, time in items))


def _as_link_loss(value: Iterable[_LinkLoss]) -> Tuple[_LinkLoss, ...]:
    return tuple(
        (str(source), str(destination), float(probability))
        for source, destination, probability in value
    )


def _as_windows(value: Iterable[_Window]) -> Tuple[_Window, ...]:
    return tuple(sorted((float(start), float(end)) for start, end in value))


@dataclass(frozen=True)
class FaultPlan:
    """One named fault configuration (see the module docstring).

    Attributes
    ----------
    name:
        Identifier used in campaign tables and golden files.
    fail_silent:
        ``(satellite, time)`` pairs: the node goes fail-silent at
        ``time`` minutes (accepts a mapping too; normalised to a
        sorted tuple).
    fail_successors_at:
        If set, every satellite *after the initial detector* in visit
        order goes fail-silent at this time (in addition to
        ``fail_silent`` entries).
    fail_successor_count:
        Caps how many successors ``fail_successors_at`` affects
        (None = all of them).
    crosslink_loss:
        i.i.d. loss probability applied to every message.
    link_loss:
        ``(source, destination, probability)`` triples adding loss on
        specific links; ``"*"`` matches any endpoint.  Multiple
        matching entries act as independent erasure channels.
    downlink_blackouts:
        ``[start, end)`` windows during which every message to
        ``ground`` is lost.
    membership_staleness:
        If set, next-peer selection uses a failure view that lags the
        true failure times by this many minutes (0 = omniscient view
        that skips known-failed satellites immediately).
    """

    name: str = "fault-free"
    fail_silent: Tuple[Tuple[str, float], ...] = ()
    fail_successors_at: Optional[float] = None
    fail_successor_count: Optional[int] = None
    crosslink_loss: float = 0.0
    link_loss: Tuple[_LinkLoss, ...] = ()
    downlink_blackouts: Tuple[_Window, ...] = ()
    membership_staleness: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fail_silent", _as_fail_silent(self.fail_silent))
        object.__setattr__(self, "link_loss", _as_link_loss(self.link_loss))
        object.__setattr__(
            self, "downlink_blackouts", _as_windows(self.downlink_blackouts)
        )
        if not self.name:
            raise ConfigurationError("a fault plan needs a non-empty name")
        for satellite, time in self.fail_silent:
            if time < 0.0:
                raise ConfigurationError(
                    f"fail-silent time for {satellite!r} must be >= 0, got {time}"
                )
        if self.fail_successors_at is not None and self.fail_successors_at < 0.0:
            raise ConfigurationError(
                f"fail_successors_at must be >= 0, got {self.fail_successors_at}"
            )
        if self.fail_successor_count is not None:
            if self.fail_successors_at is None:
                raise ConfigurationError(
                    "fail_successor_count requires fail_successors_at"
                )
            if self.fail_successor_count < 1:
                raise ConfigurationError(
                    f"fail_successor_count must be >= 1, got "
                    f"{self.fail_successor_count}"
                )
        if not 0.0 <= self.crosslink_loss <= 1.0:
            raise ConfigurationError(
                f"crosslink_loss must be in [0, 1], got {self.crosslink_loss}"
            )
        for source, destination, probability in self.link_loss:
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"link loss {source!r}->{destination!r} must be in "
                    f"[0, 1], got {probability}"
                )
        for start, end in self.downlink_blackouts:
            if start < 0.0 or end <= start:
                raise ConfigurationError(
                    f"blackout windows need 0 <= start < end, got "
                    f"[{start}, {end})"
                )
        if self.membership_staleness is not None and self.membership_staleness < 0.0:
            raise ConfigurationError(
                "membership_staleness must be >= 0, got "
                f"{self.membership_staleness}"
            )

    # ------------------------------------------------------------------
    # JSON-friendly serialization (used by the scenario corpus)
    # ------------------------------------------------------------------
    def to_dict(self) -> "dict[str, object]":
        """Pure-data dictionary representation, round-trippable through
        :meth:`from_dict` (``FaultPlan.from_dict(plan.to_dict()) ==
        plan``).  Tuples become lists so the result serialises as plain
        JSON."""
        return {
            "name": self.name,
            "fail_silent": [list(item) for item in self.fail_silent],
            "fail_successors_at": self.fail_successors_at,
            "fail_successor_count": self.fail_successor_count,
            "crosslink_loss": self.crosslink_loss,
            "link_loss": [list(item) for item in self.link_loss],
            "downlink_blackouts": [list(item) for item in self.downlink_blackouts],
            "membership_staleness": self.membership_staleness,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (validation runs
        again, so a hand-edited dictionary is checked like any other
        constructor call)."""
        known = {
            "name",
            "fail_silent",
            "fail_successors_at",
            "fail_successor_count",
            "crosslink_loss",
            "link_loss",
            "downlink_blackouts",
            "membership_staleness",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        kwargs["fail_silent"] = [
            (str(name), float(time))
            for name, time in kwargs.get("fail_silent", ())
        ]
        kwargs["link_loss"] = [
            (str(src), str(dst), float(p))
            for src, dst, p in kwargs.get("link_loss", ())
        ]
        kwargs["downlink_blackouts"] = [
            (float(start), float(end))
            for start, end in kwargs.get("downlink_blackouts", ())
        ]
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Queries used by the injector
    # ------------------------------------------------------------------
    @property
    def is_fault_free(self) -> bool:
        """Whether this plan injects nothing at all."""
        return (
            not self.fail_silent
            and self.fail_successors_at is None
            and self.crosslink_loss == 0.0
            and not self.link_loss
            and not self.downlink_blackouts
            and self.membership_staleness is None
        )

    def in_blackout(self, time: float) -> bool:
        """Whether ``time`` falls inside a downlink blackout window."""
        return any(start <= time < end for start, end in self.downlink_blackouts)

    def link_loss_probability(
        self, time: float, source: str, destination: str
    ) -> float:
        """Combined loss probability of the matching ``link_loss``
        entries and blackout windows for one message (excluding the
        plan-wide ``crosslink_loss``, which the injector applies as
        the network's scalar loss)."""
        survive = 1.0
        for src, dst, probability in self.link_loss:
            if src in (source, ANY) and dst in (destination, ANY):
                survive *= 1.0 - probability
        if destination == GROUND and self.in_blackout(time):
            return 1.0
        return 1.0 - survive

    def failure_times(
        self, names: Sequence[str], detector: str
    ) -> "dict[str, float]":
        """Resolve the full ``satellite -> fail time`` schedule for a
        concrete visit order, expanding ``fail_successors_at`` relative
        to ``detector``.  Explicit ``fail_silent`` entries win over the
        successor rule (earliest time wins when both apply)."""
        times = dict(self.fail_silent)
        unknown = set(times) - set(names)
        if unknown:
            raise ConfigurationError(
                f"fail-silent entries for unknown satellites: {sorted(unknown)}"
            )
        if self.fail_successors_at is not None:
            if detector not in names:
                raise ConfigurationError(
                    f"detector {detector!r} is not among {list(names)}"
                )
            successors = list(names[list(names).index(detector) + 1 :])
            if self.fail_successor_count is not None:
                successors = successors[: self.fail_successor_count]
            for name in successors:
                if name in times:
                    times[name] = min(times[name], self.fail_successors_at)
                else:
                    times[name] = self.fail_successors_at
        return times

    # ------------------------------------------------------------------
    # Fluent helpers for building plan batteries
    # ------------------------------------------------------------------
    def renamed(self, name: str) -> "FaultPlan":
        """Copy of this plan under another name."""
        return replace(self, name=name)

    @classmethod
    def fault_free(cls) -> "FaultPlan":
        """The no-fault reference plan."""
        return cls()

    @classmethod
    def lossy(cls, probability: float, *, name: Optional[str] = None) -> "FaultPlan":
        """Uniform i.i.d. crosslink/downlink loss."""
        return cls(
            name=name or f"loss-{probability:g}", crosslink_loss=probability
        )

    @classmethod
    def successors_fail_silent(
        cls,
        at: float = 0.0,
        *,
        count: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "FaultPlan":
        """Every satellite after the detector fails at ``at`` minutes."""
        if name is None:
            suffix = "all" if count is None else str(count)
            name = f"successors-fail-{suffix}"
        return cls(
            name=name, fail_successors_at=at, fail_successor_count=count
        )

    @classmethod
    def downlink_blackout(
        cls, start: float, end: float, *, name: Optional[str] = None
    ) -> "FaultPlan":
        """Ground-segment outage over ``[start, end)`` minutes."""
        return cls(
            name=name or f"blackout-{start:g}-{end:g}",
            downlink_blackouts=((start, end),),
        )
