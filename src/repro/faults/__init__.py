"""Fault-injection campaign engine (declarative plans, seeded
Monte-Carlo campaigns, Wilson-interval statistics, and analytic
cross-checks).  See ``docs/FAULTS.md`` for the full tour."""

from repro.faults.campaign import (
    Campaign,
    CampaignResult,
    PlanOutcome,
    degradation_curve,
)
from repro.faults.injector import StalePeerView, build_link_loss_fn, faulty_scenario
from repro.faults.plan import ANY, GROUND, FaultPlan
from repro.faults.stats import WilsonInterval, wilson_interval
from repro.faults.validation import (
    LevelCheck,
    ValidationReport,
    cross_check_fail_silent,
    cross_check_fault_free,
    fail_silent_reference,
    validate_outcome,
)

__all__ = [
    "ANY",
    "GROUND",
    "FaultPlan",
    "Campaign",
    "CampaignResult",
    "PlanOutcome",
    "degradation_curve",
    "StalePeerView",
    "build_link_loss_fn",
    "faulty_scenario",
    "WilsonInterval",
    "wilson_interval",
    "LevelCheck",
    "ValidationReport",
    "fail_silent_reference",
    "validate_outcome",
    "cross_check_fault_free",
    "cross_check_fail_silent",
]
