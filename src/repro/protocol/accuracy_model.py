"""Accuracy models plugged into the protocol simulation.

The protocol needs to know what error a geolocation iteration yields so
TC-1 (error below threshold) can be evaluated.  Two models are
provided:

* :class:`GeometricAccuracyModel` -- a synthetic model capturing the
  qualitative facts from the sequential-localization literature the
  paper builds on: a single-coverage result is coarse (ground-track
  mirror ambiguity), each sequential pass shrinks the error by a
  constant factor, and a simultaneous dual coverage is dramatically
  better ("the ambiguity problem will practically disappear");
* :class:`EmpiricalWLSAccuracyModel` -- samples errors from empirical
  distributions produced by running the real estimation stack
  (:mod:`repro.geolocation` over the orbital substrate) once per
  coverage pattern; used by the end-to-end integration scenario to tie
  the protocol's TC-1 decisions to physically grounded numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "AccuracyModel",
    "GeometricAccuracyModel",
    "EmpiricalWLSAccuracyModel",
]


class AccuracyModel(ABC):
    """Maps coverage pedigree to an estimated geolocation error."""

    @abstractmethod
    def single_pass_error_km(self, rng: np.random.Generator) -> float:
        """Error of an initial, single-coverage result."""

    @abstractmethod
    def refined_error_km(
        self, previous_error_km: float, passes: int, rng: np.random.Generator
    ) -> float:
        """Error after one more sequential refinement iteration
        (``passes`` counts all contributing satellites so far)."""

    @abstractmethod
    def simultaneous_error_km(self, rng: np.random.Generator) -> float:
        """Error of a simultaneous-dual-coverage result."""


class GeometricAccuracyModel(AccuracyModel):
    """Synthetic accuracy: deterministic factors with optional jitter.

    Defaults reflect single-pass Doppler geolocation at LEO: tens of km
    for one pass (driven by the across-track ambiguity), a ~4x
    improvement per sequential pass, and sub-km accuracy from
    simultaneous dual coverage.
    """

    def __init__(
        self,
        *,
        single_pass_km: float = 40.0,
        refinement_factor: float = 0.25,
        simultaneous_km: float = 0.5,
        jitter: float = 0.1,
    ):
        if single_pass_km <= 0 or simultaneous_km <= 0:
            raise ConfigurationError("error magnitudes must be positive")
        if not 0.0 < refinement_factor < 1.0:
            raise ConfigurationError(
                f"refinement_factor must be in (0, 1), got {refinement_factor}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")
        self.single_pass_km = single_pass_km
        self.refinement_factor = refinement_factor
        self.simultaneous_km = simultaneous_km
        self.jitter = jitter

    def _jittered(self, value: float, rng: np.random.Generator) -> float:
        if self.jitter == 0.0:
            return value
        return value * float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))

    def single_pass_error_km(self, rng: np.random.Generator) -> float:
        return self._jittered(self.single_pass_km, rng)

    def refined_error_km(
        self, previous_error_km: float, passes: int, rng: np.random.Generator
    ) -> float:
        return self._jittered(previous_error_km * self.refinement_factor, rng)

    def simultaneous_error_km(self, rng: np.random.Generator) -> float:
        return self._jittered(self.simultaneous_km, rng)


class EmpiricalWLSAccuracyModel(AccuracyModel):
    """Accuracy sampled from the *real* estimation stack.

    On construction, runs the WLS/sequential-localization pipeline of
    :class:`~repro.simulation.scenarios.CoverageAccuracyScenario` a few
    times per coverage pattern and keeps the raw error samples; during
    protocol simulation each query draws from the matching empirical
    distribution.  This grounds TC-1 decisions (and the alert payloads)
    in the physics of Doppler geolocation rather than a synthetic
    factor model.
    """

    def __init__(
        self,
        *,
        active_satellites: int = 12,
        measurements_per_pass: int = 6,
        trials: int = 8,
        seed: Optional[int] = None,
    ):
        from repro.core.qos import QoSLevel
        from repro.simulation.scenarios import CoverageAccuracyScenario

        scenario = CoverageAccuracyScenario(
            active_satellites=active_satellites,
            measurements_per_pass=measurements_per_pass,
        )
        self._samples = {}
        for offset, level in enumerate(
            (QoSLevel.SINGLE, QoSLevel.SEQUENTIAL_DUAL, QoSLevel.SIMULTANEOUS_DUAL)
        ):
            samples = scenario.error_samples(
                level,
                trials=trials,
                seed=None if seed is None else seed + offset,
            )
            if not samples:
                raise ConfigurationError(
                    f"no error samples produced for level {level.name}"
                )
            self._samples[level] = samples

    def _draw(self, samples: Sequence[float], rng: np.random.Generator) -> float:
        return float(samples[int(rng.integers(0, len(samples)))])

    def single_pass_error_km(self, rng: np.random.Generator) -> float:
        from repro.core.qos import QoSLevel

        return self._draw(self._samples[QoSLevel.SINGLE], rng)

    def refined_error_km(
        self, previous_error_km: float, passes: int, rng: np.random.Generator
    ) -> float:
        from repro.core.qos import QoSLevel

        return self._draw(self._samples[QoSLevel.SEQUENTIAL_DUAL], rng)

    def simultaneous_error_km(self, rng: np.random.Generator) -> float:
        from repro.core.qos import QoSLevel

        return self._draw(self._samples[QoSLevel.SIMULTANEOUS_DUAL], rng)
