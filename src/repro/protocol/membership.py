"""Group membership for an orbital plane (paper Section 5 future work).

The paper closes with: "our current work is directed toward adapting
group membership management techniques to the applications in the
environments of distributed autonomous mobile computing."  This module
implements that extension: a heartbeat-based, view-synchronous group
membership protocol for the satellites of one orbital plane, running
over the same crosslink network as the OAQ protocol.

Design, adapted to the constellation setting:

* satellites form a **ring** (the plane's physical topology): each
  node exchanges heartbeats with its ring successor and predecessor
  only -- crosslink budgets are tight on micro-satellites;
* a node that misses heartbeats for ``suspicion_timeout`` is declared
  failed by a neighbour, which installs and **disseminates a new view**
  (monotonically versioned) around the ring;
* view updates are idempotent and merge by version, so concurrent
  suspicions converge;
* a restored (or newly launched) satellite **rejoins** by announcing
  itself to a neighbour, triggering another view change.

The membership service is what the OAQ coordination layer would use to
pick "the peer expected to visit the target next" when satellites can
fail at any time -- the ``next_peer`` hook of
:class:`~repro.protocol.satellite.OAQSatellite` can be served directly
from a node's current view.

Properties (asserted by the tests):

* **accuracy** -- while heartbeats flow, no correct node is ever
  removed from a correct node's view (requires ``suspicion_timeout >
  heartbeat_interval + 2*delta``);
* **completeness** -- a fail-silent node is removed from every correct
  node's view within ``suspicion_timeout + ring-dissemination`` time;
* **agreement** -- once the system quiesces, all correct nodes hold
  identical views;
* **monotonicity** -- a node's installed view version never decreases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.desim.kernel import Event, Simulator
from repro.desim.network import Network
from repro.errors import ConfigurationError, ProtocolError

__all__ = [
    "MembershipConfig",
    "Heartbeat",
    "ViewUpdate",
    "JoinAnnouncement",
    "MemberNode",
    "MembershipGroup",
]


@dataclass(frozen=True)
class MembershipConfig:
    """Timing parameters of the membership protocol (minutes).

    Attributes
    ----------
    heartbeat_interval:
        Period of heartbeat emission to ring neighbours.
    suspicion_timeout:
        Silence duration after which a neighbour is declared failed.
        Must exceed ``heartbeat_interval + 2 * crosslink delay`` or the
        protocol loses accuracy (the constructor enforces a margin).
    crosslink_delay:
        One-hop message latency (the paper's ``delta``).
    """

    heartbeat_interval: float = 0.5
    suspicion_timeout: float = 1.6
    crosslink_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.crosslink_delay < 0:
            raise ConfigurationError(
                f"crosslink_delay must be >= 0, got {self.crosslink_delay}"
            )
        minimum = self.heartbeat_interval + 2.0 * self.crosslink_delay
        if self.suspicion_timeout <= minimum:
            raise ConfigurationError(
                f"suspicion_timeout ({self.suspicion_timeout}) must exceed "
                f"heartbeat_interval + 2*crosslink_delay ({minimum}) to "
                "preserve accuracy"
            )


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness signal to a ring neighbour."""

    sender: str


@dataclass(frozen=True)
class ViewUpdate:
    """A new membership view, flooded around the ring."""

    version: int
    members: Tuple[str, ...]
    originator: str


@dataclass(frozen=True)
class JoinAnnouncement:
    """A restored/new satellite asking to be re-admitted."""

    joiner: str


class MemberNode:
    """One satellite's membership agent."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: MembershipConfig,
        initial_members: Sequence[str],
    ):
        self.name = name
        self.simulator = simulator
        self.network = network
        self.config = config
        self.view: Tuple[str, ...] = tuple(sorted(initial_members))
        self.view_version = 0
        self.version_history: List[int] = [0]
        self._last_heard: Dict[str, float] = {}
        self._heartbeat_event: Optional[Event] = None
        self._check_event: Optional[Event] = None
        network.register(name, self.on_message)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _ring_neighbours(self) -> List[str]:
        members = [m for m in self.view]
        if self.name not in members or len(members) < 2:
            return []
        index = members.index(self.name)
        successor = members[(index + 1) % len(members)]
        predecessor = members[(index - 1) % len(members)]
        return list({successor, predecessor} - {self.name})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin emitting heartbeats and monitoring neighbours."""
        now = self.simulator.now
        for neighbour in self._ring_neighbours():
            self._last_heard[neighbour] = now
        self._emit_heartbeats()
        self._schedule_check()

    def stop(self) -> None:
        """Stop timers (used when a node is failed by the scenario)."""
        for event in (self._heartbeat_event, self._check_event):
            if event is not None:
                event.cancel()
        self._heartbeat_event = self._check_event = None

    def rejoin(self) -> None:
        """Announce this (restored) node to a live neighbour."""
        # The rejoining node knows the constellation roster; it asks the
        # nearest live satellite for re-admission.
        candidates = [m for m in self.view if m != self.name]
        if not candidates:
            raise ProtocolError(f"{self.name} has no peer to rejoin through")
        self.network.send(
            self.name,
            candidates[0],
            JoinAnnouncement(joiner=self.name),
            delay=self.config.crosslink_delay,
        )
        self.start()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _emit_heartbeats(self) -> None:
        if self.network.is_failed(self.name):
            return
        for neighbour in self._ring_neighbours():
            self.network.send(
                self.name,
                neighbour,
                Heartbeat(sender=self.name),
                delay=self.config.crosslink_delay,
            )
        self._heartbeat_event = self.simulator.schedule(
            self.config.heartbeat_interval, self._emit_heartbeats
        )

    def _schedule_check(self) -> None:
        self._check_event = self.simulator.schedule(
            self.config.heartbeat_interval, self._check_neighbours
        )

    def _check_neighbours(self) -> None:
        if self.network.is_failed(self.name):
            return
        now = self.simulator.now
        suspects = [
            neighbour
            for neighbour in self._ring_neighbours()
            if now - self._last_heard.get(neighbour, now)
            > self.config.suspicion_timeout
        ]
        for suspect in suspects:
            self._remove_member(suspect)
        self._schedule_check()

    # ------------------------------------------------------------------
    # View management
    # ------------------------------------------------------------------
    def _install(self, version: int, members: Tuple[str, ...]) -> bool:
        if version <= self.view_version:
            return False
        previous_neighbours = set(self._ring_neighbours())
        self.view = tuple(sorted(members))
        self.view_version = version
        self.version_history.append(version)
        now = self.simulator.now
        for neighbour in set(self._ring_neighbours()) - previous_neighbours:
            self._last_heard.setdefault(neighbour, now)
        return True

    def _flood(self) -> None:
        update = ViewUpdate(
            version=self.view_version,
            members=self.view,
            originator=self.name,
        )
        for neighbour in self._ring_neighbours():
            self.network.send(
                self.name, neighbour, update, delay=self.config.crosslink_delay
            )

    def _remove_member(self, member: str) -> None:
        if member not in self.view:
            return
        members = tuple(m for m in self.view if m != member)
        self._install(self.view_version + 1, members)
        self._flood()

    def _add_member(self, member: str) -> None:
        if member in self.view:
            return
        members = tuple(sorted((*self.view, member)))
        self._install(self.view_version + 1, members)
        self._flood()

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, source: str, message: object) -> None:
        if isinstance(message, Heartbeat):
            self._last_heard[message.sender] = self.simulator.now
            return
        if isinstance(message, ViewUpdate):
            if message.version == self.view_version and set(
                message.members
            ) != set(self.view):
                # Concurrent view changes collided on the version
                # number (e.g. two disjoint failures detected at the
                # same time).  Merge deterministically -- intersection,
                # so removals win -- under a bumped version; the merge
                # is commutative, so all nodes converge on it.
                merged = tuple(
                    sorted(set(message.members) & set(self.view))
                )
                if merged and self._install(self.view_version + 1, merged):
                    self._flood()
                return
            if self._install(message.version, message.members):
                self._flood()
            return
        if isinstance(message, JoinAnnouncement):
            self._add_member(message.joiner)
            return
        raise ProtocolError(
            f"{self.name} received unexpected membership message {message!r}"
        )


class MembershipGroup:
    """Convenience wrapper: a whole plane's membership service.

    Builds one :class:`MemberNode` per satellite on a shared network,
    starts them, and offers scenario-level queries (fail a node, let a
    node rejoin, inspect convergence).
    """

    def __init__(
        self,
        names: Sequence[str],
        *,
        config: Optional[MembershipConfig] = None,
        simulator: Optional[Simulator] = None,
    ):
        if len(names) < 2:
            raise ConfigurationError("a membership group needs >= 2 nodes")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        self.config = config or MembershipConfig()
        self.simulator = simulator or Simulator()
        self.network = Network(
            self.simulator, default_delay=self.config.crosslink_delay
        )
        self.nodes: Dict[str, MemberNode] = {
            name: MemberNode(
                name, self.simulator, self.network, self.config, names
            )
            for name in names
        }
        for node in self.nodes.values():
            node.start()

    def fail(self, name: str) -> None:
        """Make a node fail-silent (it keeps no timers either)."""
        self.nodes[name].stop()
        self.network.fail(name)

    def restore(self, name: str) -> None:
        """Restore a failed node and have it rejoin the group."""
        self.network.restore(name)
        self.nodes[name].rejoin()

    def run_for(self, duration: float) -> None:
        """Advance the simulation."""
        self.simulator.run_until(self.simulator.now + duration)

    def correct_nodes(self) -> List[MemberNode]:
        """Nodes that are not currently fail-silent."""
        return [
            node
            for name, node in self.nodes.items()
            if not self.network.is_failed(name)
        ]

    def views(self) -> Dict[str, Tuple[str, ...]]:
        """Current view of every correct node."""
        return {node.name: node.view for node in self.correct_nodes()}

    def converged(self) -> bool:
        """Whether all correct nodes hold identical views."""
        views = {node.view for node in self.correct_nodes()}
        return len(views) == 1

    def agreed_view(self) -> Tuple[str, ...]:
        """The common view (raises if not converged)."""
        if not self.converged():
            raise ProtocolError(f"views diverge: {self.views()}")
        return self.correct_nodes()[0].view
