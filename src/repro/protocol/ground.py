"""Ground station: the alert-message sink.

Collects :class:`~repro.protocol.messages.AlertMessage` deliveries and
adjudicates the scenario outcome: the *official* result for a signal is
the first alert **sent** (the paper's deadline constrains send time);
later alerts for the same signal are retained as duplicates -- they can
occur in rare races between a predecessor's timeout and a successor's
completion, and the tests assert they stay rare and consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.desim.network import Network
from repro.errors import ProtocolError
from repro.protocol.messages import AlertMessage

__all__ = ["GroundStation"]


class GroundStation:
    """Receives alerts and reports per-signal outcomes."""

    def __init__(self, network: Network, *, name: str = "ground"):
        self.name = name
        self._alerts: Dict[str, List[AlertMessage]] = {}
        #: True once any alert has been delivered (cheap early-stop
        #: signal for the batched replication engine: with a constant
        #: downlink delay the first alert *delivered* is the first one
        #: *sent*, i.e. the official alert, so a level-only run can end
        #: here).
        self.alert_received = False
        network.register(name, self._on_message)

    def reset(self) -> None:
        """Forget all collected alerts (the network registration is
        kept).  Used by the batched replication engine to reuse one
        ground station across scenario replications."""
        self._alerts.clear()
        self.alert_received = False

    def _on_message(self, source: str, message: object) -> None:
        if not isinstance(message, AlertMessage):
            raise ProtocolError(
                f"ground station received a non-alert message {message!r}"
            )
        self._alerts.setdefault(message.signal_id, []).append(message)
        self.alert_received = True

    def alerts(self, signal_id: str) -> List[AlertMessage]:
        """All alerts received for a signal, in delivery order."""
        return list(self._alerts.get(signal_id, []))

    def official(self, signal_id: str) -> Optional[AlertMessage]:
        """The first-sent alert for a signal, or None."""
        alerts = self._alerts.get(signal_id)
        if not alerts:
            return None
        return min(alerts, key=lambda alert: alert.sent_at)

    def duplicates(self, signal_id: str) -> int:
        """Number of redundant alerts beyond the official one."""
        return max(0, len(self._alerts.get(signal_id, ())) - 1)

    def achieved_level(self, signal_id: str, deadline: float) -> int:
        """The paper's QoS level achieved for a signal: the official
        alert's level if it was sent within ``deadline`` minutes of the
        initial detection, level 0 otherwise."""
        official = self.official(signal_id)
        if official is None:
            return 0
        if official.latency > deadline + 1e-9:
            return 0
        return official.estimate.qos_level
