"""Scenario runner: drives the OAQ protocol for a signal on the centre
line of one plane's footprint trajectory (the paper's worst-case
evaluation setting).

Physical timeline (minutes; signal onset at ``t = 0``): the cycle
convention of :class:`~repro.geometry.intervals.FootprintCycle` places
the onset at cycle position ``x`` measured from the start of the
singly-covered interval ``alpha``.  Satellite ``j`` (0-based visit
order; protocol name ``S{j+1}``) covers the target during::

    [ j*L1 - x - offset,  j*L1 - x - offset + Tc )

with ``offset = L2`` for an overlapping plane (its coverage begins when
it starts sharing the point with its predecessor) and ``offset = 0``
for an underlapping one.  The runner schedules footprint arrivals,
double-coverage onsets (overlap case) and fail-silence injections, then
lets the satellites run the Section 3.2 protocol over the simulated
crosslinks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analytic.distributions import Distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.desim.kernel import Simulator
from repro.desim.network import MessageRecord, Network
from repro.errors import ConfigurationError
from repro.geometry.intervals import CoverageKind, FootprintCycle
from repro.geometry.plane import PlaneGeometry
from repro.protocol.accuracy_model import AccuracyModel
from repro.protocol.ground import GroundStation
from repro.protocol.messages import AlertMessage
from repro.protocol.satellite import MessagingVariant, OAQSatellite
from repro.protocol.signal import Signal

__all__ = ["ScenarioOutcome", "CenterlineScenario", "normalise_onset_position"]


def normalise_onset_position(geometry: PlaneGeometry, onset_position: float) -> float:
    """Validate a cycle position against ``[0, L1)`` and wrap the
    half-open boundary.

    The cycle is periodic, so a position equal to ``L1`` (reached
    exactly, or through floating-point tolerance) is the start of the
    next cycle and wraps to ``0.0``; anything beyond is rejected.
    Shared by :class:`CenterlineScenario` and the batched replication
    engine so both paths accept exactly the same inputs.
    """
    if not 0.0 <= onset_position <= geometry.l1 + 1e-12:
        raise ConfigurationError(
            f"onset_position must be in [0, L1={geometry.l1}), got "
            f"{onset_position}"
        )
    if onset_position >= geometry.l1:
        return 0.0
    return onset_position


@dataclass
class ScenarioOutcome:
    """Everything a test or experiment needs from one protocol run."""

    signal: Signal
    achieved_level: QoSLevel
    official_alert: Optional[AlertMessage]
    all_alerts: List[AlertMessage]
    duplicates: int
    message_log: List[MessageRecord]
    detection_time: Optional[float]

    @property
    def alert_latency(self) -> Optional[float]:
        """Minutes from detection to the official alert's send time."""
        return self.official_alert.latency if self.official_alert else None

    @property
    def chain_length(self) -> int:
        """Satellites in the official alert's coordination chain."""
        return len(self.official_alert.chain) if self.official_alert else 0


class CenterlineScenario:
    """One signal, one plane, full protocol execution.

    Parameters
    ----------
    geometry:
        Plane geometry (``k``, ``theta``, ``Tc``).
    params:
        Evaluation parameters (``tau``, ``delta``, ``Tg``, TC-1
        threshold, ...).
    onset_position:
        Signal onset's cycle position ``x`` in ``[0, L1)``; sampled
        uniformly when None (the Poisson-arrival assumption).  The
        cycle is periodic, so a position equal to ``L1`` (up to
        floating-point tolerance) wraps to ``0.0``; anything beyond is
        rejected.
    signal_duration:
        Emission length in minutes; sampled from ``Exp(mu)`` when None.
    scheme / variant:
        OAQ or BAQ; done-propagation or successor-responsibility.
    fail_silent:
        Mapping satellite name -> failure time (minutes); the node goes
        fail-silent then.
    crosslink_loss_probability:
        i.i.d. chance that any message (crosslink or downlink) is lost
        in flight -- fault injection beyond the paper's fail-silent
        model.
    link_loss_fn:
        Per-message loss hook ``(now, source, destination) ->
        probability`` combined independently with
        ``crosslink_loss_probability`` (see
        :class:`~repro.desim.network.Network`); the fault-injection
        campaign engine uses it for per-link loss rates and downlink
        blackout windows.
    next_peer_override:
        Replaces the default "next satellite in visit order" peer
        selection -- e.g. a group-membership view that skips satellites
        known to have failed (see
        :mod:`repro.protocol.membership`).  Receives a satellite name,
        returns the peer to invite (or None to stop the chain).
    satellite_count:
        Chain capacity; by default enough satellites to cover the
        deadline window.
    """

    def __init__(
        self,
        geometry: PlaneGeometry,
        params: EvaluationParams,
        *,
        scheme: Scheme = Scheme.OAQ,
        variant: MessagingVariant = MessagingVariant.DONE_PROPAGATION,
        onset_position: Optional[float] = None,
        signal_duration: Optional[float] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        computation_time: Optional[Distribution] = None,
        fail_silent: Optional[Mapping[str, float]] = None,
        crosslink_loss_probability: float = 0.0,
        link_loss_fn: Optional[Callable[[float, str, str], float]] = None,
        next_peer_override: Optional[Callable[[str], Optional[str]]] = None,
        satellite_count: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        self.geometry = geometry
        self.params = params
        self.scheme = scheme
        self.variant = variant
        self.accuracy_model = accuracy_model
        self.computation_time = computation_time
        self.fail_silent = dict(fail_silent or {})
        self.crosslink_loss_probability = crosslink_loss_probability
        self.link_loss_fn = link_loss_fn
        self.next_peer_override = next_peer_override
        self.rng = np.random.default_rng(seed)
        self.cycle = FootprintCycle(geometry)
        #: The DES kernel of the most recent :meth:`run` (None before
        #: the first run).  Fault-injection hooks that need the current
        #: simulation time (e.g. stale membership views) read it here.
        self.simulator: Optional[Simulator] = None
        if onset_position is None:
            onset_position = float(self.rng.uniform(0.0, geometry.l1))
        self.onset_position = normalise_onset_position(geometry, onset_position)
        if signal_duration is None:
            signal_duration = float(self.rng.exponential(1.0 / params.mu))
        self.signal = Signal("signal-0", 0.0, signal_duration)
        if satellite_count is None:
            # Enough visits to span the deadline plus margin.
            satellite_count = 3 + int(
                math.ceil((params.tau + geometry.coverage_time) / geometry.l1)
            )
        self.satellite_count = satellite_count

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def coverage_interval(self, visit_index: int) -> Tuple[float, float]:
        """Absolute time interval during which satellite ``visit_index``
        (0-based) covers the target."""
        offset = self.geometry.l2 if self.geometry.overlapping else 0.0
        start = visit_index * self.geometry.l1 - self.onset_position - offset
        return start, start + self.geometry.coverage_time

    def covered_at_onset(self) -> bool:
        """Whether the target is covered when the signal starts."""
        return (
            self.cycle.interval_at(self.onset_position).kind
            is not CoverageKind.GAP
        )

    def onset_in_double_coverage(self) -> bool:
        """Whether the signal starts inside an overlapped region."""
        return (
            self.cycle.interval_at(self.onset_position).kind
            is CoverageKind.DOUBLE
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, *, horizon: Optional[float] = None) -> ScenarioOutcome:
        """Build the simulation, run it to quiescence, adjudicate."""
        params = self.params
        simulator = Simulator()
        self.simulator = simulator
        lossy = self.crosslink_loss_probability > 0.0 or self.link_loss_fn is not None
        network = Network(
            simulator,
            default_delay=params.delta,
            loss_probability=self.crosslink_loss_probability,
            loss_fn=self.link_loss_fn,
            rng=self.rng if lossy else None,
        )
        ground = GroundStation(network)

        names = [f"S{j + 1}" for j in range(self.satellite_count)]

        def default_next_peer(name: str) -> Optional[str]:
            index = names.index(name)
            return names[index + 1] if index + 1 < len(names) else None

        next_peer = self.next_peer_override or default_next_peer

        satellites: Dict[str, OAQSatellite] = {}
        for name in names:
            satellites[name] = OAQSatellite(
                name,
                simulator,
                network,
                params,
                self.geometry,
                scheme=self.scheme,
                variant=self.variant,
                accuracy_model=self.accuracy_model,
                computation_time=self.computation_time,
                next_peer=next_peer,
                ground_name=ground.name,
                rng=self.rng,
            )

        for name, fail_time in self.fail_silent.items():
            if name not in satellites:
                raise ConfigurationError(f"unknown fail-silent node {name!r}")
            simulator.at(max(0.0, fail_time), network.fail, name)

        detection_time = self._schedule_physical_events(simulator, satellites, names)

        if horizon is None:
            horizon = params.tau + self.geometry.coverage_time + self.geometry.l1 + 5.0
        simulator.run_until(horizon)

        official = ground.official(self.signal.signal_id)
        level = QoSLevel(
            ground.achieved_level(self.signal.signal_id, params.tau)
        )
        return ScenarioOutcome(
            signal=self.signal,
            achieved_level=level,
            official_alert=official,
            all_alerts=ground.alerts(self.signal.signal_id),
            duplicates=ground.duplicates(self.signal.signal_id),
            message_log=list(network.log),
            detection_time=detection_time,
        )

    def _schedule_physical_events(
        self,
        simulator: Simulator,
        satellites: Dict[str, OAQSatellite],
        names: Sequence[str],
    ) -> Optional[float]:
        """Schedule footprint arrivals and double-coverage onsets.

        Returns the initial-detection time (None if the signal escapes
        surveillance entirely -- possible only in the underlap case).
        """
        detection_time: Optional[float] = None
        detector: Optional[str] = None
        for j, name in enumerate(names):
            start, end = self.coverage_interval(j)
            if end <= 0.0:
                continue  # this visit ended before the signal started
            arrival = max(0.0, start)
            simultaneous = False
            is_detector = False
            if detector is None and self.signal.active(arrival):
                detection_time = arrival
                detector = name
                is_detector = True
                simultaneous = (
                    self.geometry.overlapping
                    and self.onset_in_double_coverage()
                    and arrival == 0.0
                )
            # Later visitors only act if a coordination request invited
            # them; otherwise the arrival is a no-op.
            simulator.at(
                arrival,
                self._arrival_with_flag,
                satellites[name],
                simultaneous,
                is_detector,
            )

        if self.geometry.overlapping and detector is not None:
            # Double-coverage onsets: start of each beta interval after
            # the signal onset, delivered to the (possibly withholding)
            # detector.
            beta_offset = self.geometry.single_coverage_length - self.onset_position
            first = beta_offset if beta_offset > 0 else beta_offset + self.geometry.l1
            t = first
            horizon = self.params.tau + self.geometry.l1
            while t <= horizon:
                simulator.at(
                    t, satellites[detector].on_simultaneous_coverage, self.signal
                )
                t += self.geometry.l1
        return detection_time

    def _arrival_with_flag(
        self, satellite: OAQSatellite, simultaneous: bool, allow_detection: bool
    ) -> None:
        satellite.on_footprint_arrival(
            self.signal,
            simultaneous=simultaneous,
            allow_detection=allow_detection,
        )
