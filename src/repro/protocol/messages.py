"""Message types of the OAQ coordination protocol (paper Figure 3).

Three messages flow over the crosslinks and the downlink:

* :class:`CoordinationRequest` -- ``Sn -> Sn+1``: carries the
  accumulated measurements and the preliminary result, inviting the
  next-arriving satellite to perform another accuracy-improvement
  iteration;
* :class:`CoordinationDone` -- ``Sn+1 -> Sn -> ... -> S1``: propagated
  down the chain when coordination terminates, so no participant stays
  "unnecessarily alarmed";
* :class:`AlertMessage` -- satellite -> ground: the final geolocation
  result, which must be *sent* within the deadline ``tau`` of the
  initial detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.orbits.frames import GeodeticPoint

__all__ = [
    "GeolocationEstimate",
    "CoordinationRequest",
    "CoordinationDone",
    "AlertMessage",
]


@dataclass(frozen=True)
class GeolocationEstimate:
    """A geolocation result with its quality pedigree.

    Attributes
    ----------
    error_km:
        Estimated 1-sigma horizontal error.
    passes_used:
        Number of satellites whose measurements contributed.
    simultaneous:
        Whether the result came from a simultaneous multiple coverage
        (QoS level 3).
    computed_by / computed_at:
        Provenance (satellite name, completion time in minutes).
    position:
        The estimated emitter position when a real estimator ran
        (synthetic accuracy models leave it None).
    """

    error_km: float
    passes_used: int
    simultaneous: bool
    computed_by: str
    computed_at: float
    position: Optional[GeodeticPoint] = None

    @property
    def qos_level(self) -> int:
        """The paper's QoS level implied by the pedigree."""
        if self.simultaneous:
            return 3
        if self.passes_used >= 2:
            return 2
        return 1


@dataclass(frozen=True)
class CoordinationRequest:
    """Invitation from ``Sn`` to the next-arriving peer ``Sn+1``."""

    signal_id: str
    detection_time: float  #: ``t0`` -- initial detection instant
    next_ordinal: int  #: the receiver's position ``n+1`` in the chain
    estimate: GeolocationEstimate  #: preliminary result so far
    measurement_count: int  #: accumulated measurements (payload proxy)
    chain: Tuple[str, ...]  #: names of satellites already in the chain


@dataclass(frozen=True)
class CoordinationDone:
    """Termination notification propagated down the chain."""

    signal_id: str
    final_estimate: GeolocationEstimate
    terminated_by: str


@dataclass(frozen=True)
class AlertMessage:
    """The result delivered to the ground station."""

    signal_id: str
    estimate: GeolocationEstimate
    sent_by: str
    sent_at: float  #: send time in minutes since scenario start
    detection_time: float  #: ``t0``
    chain: Tuple[str, ...]

    @property
    def latency(self) -> float:
        """Minutes from initial detection to alert transmission (must
        not exceed ``tau``)."""
        return self.sent_at - self.detection_time
