"""The OAQ satellite state machine (paper Section 3.2, Figures 3-4).

Each satellite runs the same distributed logic -- there is no team
leader or decision authority.  A satellite that completes a geolocation
iteration at chain position ``n`` checks the termination conditions:

* **TC-1** -- the estimated error is below the threshold;
* **TC-2** -- ``getTime() - t0 > tau - (n*delta + Tg)``: too little
  time remains to guarantee another iteration *and* timely
  down-chain notification;
* **TC-3** -- the signal has stopped (observed by the *next* satellite,
  which finds nothing to measure when its footprint arrives).

If neither holds it sends a coordination request to the peer expected
to visit the target next and -- under the **done-propagation**
("backward messaging") variant -- waits for a "coordination done"
notification until ``t0 + tau - (n-1)*delta``; on timeout it assumes
the successor hit TC-3 or became fail-silent and sends its own result
(Figure 4), guaranteeing a timely alert.  Under the
**successor-responsibility** ("no backward messaging") variant the
successor delivers the predecessor's result when it cannot compute;
no done messages flow, and a fail-silent successor loses the alert --
exactly the trade-off the paper discusses.

In an *overlapping* plane the coordination takes the withholding form:
the first detector keeps its preliminary result and waits (within the
deadline) for overlapped footprints; a simultaneous dual coverage then
completes the optimisation, otherwise the preliminary result goes out
at the deadline guard.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.analytic.distributions import Distribution, Exponential
from repro.core.config import EvaluationParams
from repro.core.schemes import Scheme
from repro.desim.kernel import Event, Simulator
from repro.desim.network import Network
from repro.errors import ProtocolError
from repro.geometry.plane import PlaneGeometry
from repro.protocol.accuracy_model import AccuracyModel, GeometricAccuracyModel
from repro.protocol.messages import (
    AlertMessage,
    CoordinationDone,
    CoordinationRequest,
    GeolocationEstimate,
)
from repro.protocol.signal import Signal

__all__ = ["MessagingVariant", "OAQSatellite"]


class MessagingVariant(enum.Enum):
    """How alert-delivery responsibility is protected (Section 3.2)."""

    #: "Backward messaging": done notifications propagate down the
    #: chain; each participant times out and self-delivers if the chain
    #: goes quiet.  Tolerates fail-silent successors.
    DONE_PROPAGATION = "done-propagation"

    #: "No backward messaging": the successor delivers the
    #: predecessor's result when it cannot compute.  Fewer messages,
    #: but a fail-silent successor loses the alert.
    SUCCESSOR_RESPONSIBILITY = "successor-responsibility"


@dataclass
class _SignalState:
    """Per-signal protocol state held by one satellite."""

    ordinal: int
    detection_time: float
    chain: Tuple[str, ...]
    predecessor: Optional[str] = None
    estimate: Optional[GeolocationEstimate] = None
    inherited: Optional[GeolocationEstimate] = None
    awaiting_pass: bool = False
    withholding: bool = False
    computing: bool = False
    alert_sent: bool = False
    done_received: bool = False
    wait_event: Optional[Event] = None
    guard_event: Optional[Event] = None


class OAQSatellite:
    """One satellite node of the coordination protocol."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        params: EvaluationParams,
        geometry: PlaneGeometry,
        *,
        scheme: Scheme = Scheme.OAQ,
        variant: MessagingVariant = MessagingVariant.DONE_PROPAGATION,
        accuracy_model: Optional[AccuracyModel] = None,
        computation_time: Optional[Distribution] = None,
        next_peer: Optional[Callable[[str], Optional[str]]] = None,
        ground_name: str = "ground",
        rng: Optional[np.random.Generator] = None,
    ):
        self.name = name
        self.simulator = simulator
        self.network = network
        self.params = params
        self.geometry = geometry
        self.scheme = scheme
        self.variant = variant
        self.accuracy_model = accuracy_model or GeometricAccuracyModel()
        self.computation_time = computation_time or Exponential(params.nu)
        self.next_peer = next_peer or (lambda _name: None)
        self.ground_name = ground_name
        self.rng = rng or np.random.default_rng()
        # Hot-path caches: these are read on every computation
        # completion and timer, and never change over the satellite's
        # lifetime.
        self._tau = params.tau
        self._delta = params.delta
        self._tg = params.tg
        self._overlapping = geometry.overlapping
        self._states: Dict[str, _SignalState] = {}
        #: Optional hook called (with this node's name) when a
        #: coordination request first creates per-signal state here.
        #: The batched replication engine uses it to schedule footprint
        #: arrivals lazily -- only satellites actually invited into the
        #: chain get an arrival event.
        self.on_invited: Optional[Callable[[str], None]] = None
        network.register(name, self.on_message)

    def reset(self, rng: Optional[np.random.Generator] = None) -> None:
        """Drop all per-signal protocol state and (optionally) install
        the generator for the next replication's draws.  Static wiring
        -- network registration, peers, models -- is kept.  Used by the
        batched replication engine to reuse one satellite across
        scenario replications."""
        self._states.clear()
        if rng is not None:
            self.rng = rng

    # ------------------------------------------------------------------
    # Introspection (used by scenario assertions)
    # ------------------------------------------------------------------
    def state_of(self, signal_id: str) -> Optional[_SignalState]:
        """The node's protocol state for a signal (None if uninvolved)."""
        return self._states.get(signal_id)

    @property
    def failed(self) -> bool:
        """Whether this node is currently fail-silent."""
        return self.network.is_failed(self.name)

    # ------------------------------------------------------------------
    # Runner-driven physical events
    # ------------------------------------------------------------------
    def on_footprint_arrival(
        self,
        signal: Signal,
        *,
        simultaneous: bool = False,
        allow_detection: bool = True,
    ) -> None:
        """The satellite's footprint reaches the signal location.

        ``simultaneous`` marks a detection under double coverage (the
        signal started inside an overlapped region).  ``allow_detection``
        is False for visits after the initial detection: those passes
        only matter to satellites already invited into the chain (the
        initial detector owns the alert pipeline for the signal).
        """
        if self.failed:
            return
        state = self._states.get(signal.signal_id)
        now = self.simulator.now
        if state is None:
            if not allow_detection or not signal.active(now):
                return  # nothing to detect (or not ours to detect)
            state = _SignalState(
                ordinal=1, detection_time=now, chain=(self.name,)
            )
            self._states[signal.signal_id] = state
            self._start_computation(signal, state, simultaneous=simultaneous)
            return
        if state.awaiting_pass:
            state.awaiting_pass = False
            if signal.active(now):
                self._start_computation(signal, state, simultaneous=False)
            else:
                self._handle_unmeasurable(signal, state)

    def on_simultaneous_coverage(self, signal: Signal) -> None:
        """Overlapped footprints arrive at the signal location while
        this satellite withholds its preliminary result."""
        if self.failed or self.scheme is not Scheme.OAQ:
            return
        state = self._states.get(signal.signal_id)
        if state is None or state.alert_sent or state.ordinal != 1:
            return
        if not (state.withholding or state.computing):
            return
        if not signal.active(self.simulator.now):
            return  # the opportunity evaporated with the signal (TC-3)
        # A simultaneous measurement is collected even if the initial
        # single-coverage computation is still running; whichever
        # completes first that satisfies a termination condition sends
        # the alert (finalisation is idempotent).
        state.withholding = False
        self._start_computation(signal, state, simultaneous=True)

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def _start_computation(
        self, signal: Signal, state: _SignalState, *, simultaneous: bool
    ) -> None:
        state.computing = True
        duration = self.computation_time.sample(self.rng)
        self.simulator.schedule(
            duration, self._on_computation_complete, signal, state, simultaneous
        )

    def _build_estimate(
        self, state: _SignalState, *, simultaneous: bool
    ) -> GeolocationEstimate:
        now = self.simulator.now
        if simultaneous:
            error = self.accuracy_model.simultaneous_error_km(self.rng)
            passes = max(2, state.ordinal + 1)
        elif state.ordinal == 1:
            error = self.accuracy_model.single_pass_error_km(self.rng)
            passes = 1
        else:
            previous = (
                state.inherited.error_km
                if state.inherited
                else self.accuracy_model.single_pass_error_km(self.rng)
            )
            error = self.accuracy_model.refined_error_km(
                previous, state.ordinal, self.rng
            )
            passes = state.ordinal
        return GeolocationEstimate(
            error_km=error,
            passes_used=passes,
            simultaneous=simultaneous,
            computed_by=self.name,
            computed_at=now,
        )

    def _on_computation_complete(
        self, signal: Signal, state: _SignalState, simultaneous: bool
    ) -> None:
        if self.failed or state.alert_sent:
            return
        state.computing = False
        state.estimate = self._build_estimate(state, simultaneous=simultaneous)
        now = self.simulator.now
        tau = self._tau
        t0 = state.detection_time

        if self.scheme is Scheme.BAQ:
            # Basic scheme: deliver right after the initial computation.
            self._finalize(signal, state)
            return

        if state.estimate.simultaneous:
            # Simultaneous coverage marks the completion of QoS
            # optimisation (Section 3.1).
            self._finalize(signal, state)
            return
        # TC-1: result already good enough.
        if state.estimate.error_km <= self.params.error_threshold_km:
            self._finalize(signal, state)
            return
        # TC-2: no guaranteed room for another iteration + notification.
        n = state.ordinal
        if now - t0 > tau - (n * self._delta + self._tg):
            self._finalize(signal, state)
            return

        if self._overlapping:
            # Withhold and wait for the overlapped footprints; the
            # deadline guard sends the preliminary result if they do
            # not arrive (or the signal dies first).
            state.withholding = True
            self._arm_guard(signal, state)
            return

        # Underlapping plane: expand the chain to the next peer.
        successor = self.next_peer(self.name)
        if successor is None:
            self._finalize(signal, state)
            return
        request = CoordinationRequest(
            signal_id=signal.signal_id,
            detection_time=t0,
            next_ordinal=n + 1,
            estimate=state.estimate,
            measurement_count=state.estimate.passes_used,
            chain=state.chain,
        )
        self.network.send(
            self.name, successor, request, delay=self._delta
        )
        if self.variant is MessagingVariant.DONE_PROPAGATION:
            self._arm_guard(signal, state)
        # Under SUCCESSOR_RESPONSIBILITY the alert duty moves forward
        # with the request; this node is finished unless notified.

    def _handle_unmeasurable(self, signal: Signal, state: _SignalState) -> None:
        """A coordination request was accepted but the signal stopped
        before this satellite's footprint arrived (TC-3)."""
        if self.variant is MessagingVariant.SUCCESSOR_RESPONSIBILITY:
            # This node must deliver the predecessor's result itself.
            if state.inherited is not None and not state.alert_sent:
                state.estimate = state.inherited
                self._finalize(signal, state)
        # Under DONE_PROPAGATION we stay silent: the predecessor's wait
        # timeout produces the guaranteed report (Figure 4).

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_guard(self, signal: Signal, state: _SignalState) -> None:
        """Arm the wait/deadline guard at ``t0 + tau - (n-1) delta``."""
        deadline = (
            state.detection_time
            + self._tau
            - (state.ordinal - 1) * self._delta
        )
        now = self.simulator.now
        delay = max(0.0, deadline - now)
        state.wait_event = self.simulator.schedule(
            delay, self._on_guard_expired, signal, state
        )

    def _on_guard_expired(self, signal: Signal, state: _SignalState) -> None:
        if self.failed or state.alert_sent or state.done_received:
            return
        # Either the withheld opportunity never materialised, or the
        # successor went quiet (TC-3 / fail-silence): deliver our own
        # result now -- it is the last moment that still meets the
        # deadline for every downstream participant.
        state.withholding = False
        if state.estimate is None and state.inherited is not None:
            state.estimate = state.inherited
        if state.estimate is not None:
            self._finalize(signal, state)

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, source: str, message: object) -> None:
        """Network delivery entry point."""
        if isinstance(message, CoordinationRequest):
            self._on_request(source, message)
        elif isinstance(message, CoordinationDone):
            self._on_done(source, message)
        else:
            raise ProtocolError(
                f"{self.name} received unexpected message {message!r}"
            )

    def _on_request(self, source: str, request: CoordinationRequest) -> None:
        if request.signal_id in self._states:
            raise ProtocolError(
                f"{self.name} got a duplicate coordination request for "
                f"{request.signal_id}"
            )
        self._states[request.signal_id] = _SignalState(
            ordinal=request.next_ordinal,
            detection_time=request.detection_time,
            chain=request.chain + (self.name,),
            predecessor=source,
            inherited=request.estimate,
            awaiting_pass=True,
        )
        if self.on_invited is not None:
            self.on_invited(self.name)

    def _on_done(self, source: str, done: CoordinationDone) -> None:
        state = self._states.get(done.signal_id)
        if state is None:
            return
        state.done_received = True
        if state.wait_event is not None:
            state.wait_event.cancel()
            state.wait_event = None
        if state.predecessor is not None:
            self.network.send(
                self.name,
                state.predecessor,
                CoordinationDone(
                    signal_id=done.signal_id,
                    final_estimate=done.final_estimate,
                    terminated_by=done.terminated_by,
                ),
                delay=self._delta,
            )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finalize(self, signal: Signal, state: _SignalState) -> None:
        if state.alert_sent or state.estimate is None:
            return
        state.alert_sent = True
        for event in (state.wait_event, state.guard_event):
            if event is not None:
                event.cancel()
        state.wait_event = state.guard_event = None
        alert = AlertMessage(
            signal_id=signal.signal_id,
            estimate=state.estimate,
            sent_by=self.name,
            sent_at=self.simulator.now,
            detection_time=state.detection_time,
            chain=state.chain,
        )
        self.network.send(self.name, self.ground_name, alert, delay=self._delta)
        if state.predecessor is not None:
            self.network.send(
                self.name,
                state.predecessor,
                CoordinationDone(
                    signal_id=signal.signal_id,
                    final_estimate=state.estimate,
                    terminated_by=self.name,
                ),
                delay=self._delta,
            )
