"""The RF signal (target) being geolocated."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Signal"]


@dataclass(frozen=True)
class Signal:
    """An emitter transmission with finite duration.

    Attributes
    ----------
    signal_id:
        Unique identifier (the protocol keys its per-signal state on
        it).
    start_time:
        Onset, in scenario minutes.
    duration:
        Emission length in minutes (TC-3 fires when it elapses).
    """

    signal_id: str
    start_time: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {self.duration}")

    @property
    def end_time(self) -> float:
        """Time at which the signal stops."""
        return self.start_time + self.duration

    def active(self, time: float) -> bool:
        """Whether the signal is emitting at ``time``."""
        return self.start_time <= time < self.end_time
