"""The OAQ coordination protocol (paper Section 3): satellite state
machines, crosslink messages, ground station and scenario runner."""

from repro.protocol.accuracy_model import (
    AccuracyModel,
    EmpiricalWLSAccuracyModel,
    GeometricAccuracyModel,
)
from repro.protocol.ground import GroundStation
from repro.protocol.membership import (
    MemberNode,
    MembershipConfig,
    MembershipGroup,
)
from repro.protocol.messages import (
    AlertMessage,
    CoordinationDone,
    CoordinationRequest,
    GeolocationEstimate,
)
from repro.protocol.runner import CenterlineScenario, ScenarioOutcome
from repro.protocol.satellite import MessagingVariant, OAQSatellite
from repro.protocol.signal import Signal

__all__ = [
    "AccuracyModel",
    "AlertMessage",
    "CenterlineScenario",
    "EmpiricalWLSAccuracyModel",
    "CoordinationDone",
    "CoordinationRequest",
    "GeolocationEstimate",
    "GeometricAccuracyModel",
    "GroundStation",
    "MemberNode",
    "MembershipConfig",
    "MembershipGroup",
    "MessagingVariant",
    "OAQSatellite",
    "ScenarioOutcome",
    "Signal",
]
