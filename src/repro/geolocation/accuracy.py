"""Accuracy metrics for geolocation experiments.

Summaries used by the benchmarks: circular error probable (CEP), RMSE
over Monte-Carlo trials, and the 1-sigma error-ellipse parameters from
a WLS covariance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH

__all__ = ["ErrorEllipse", "cep_km", "rmse_km", "error_ellipse"]


@dataclass(frozen=True)
class ErrorEllipse:
    """1-sigma horizontal error ellipse.

    Attributes
    ----------
    semi_major_km / semi_minor_km:
        Ellipse axes (km).
    orientation_rad:
        Angle of the major axis from local north (radians).
    """

    semi_major_km: float
    semi_minor_km: float
    orientation_rad: float

    @property
    def area_km2(self) -> float:
        """Ellipse area (km^2)."""
        return math.pi * self.semi_major_km * self.semi_minor_km

    @property
    def elongation(self) -> float:
        """Major/minor axis ratio (large for single-pass Doppler
        geometry, near 1 after a crossing second pass)."""
        if self.semi_minor_km == 0.0:
            return float("inf")
        return self.semi_major_km / self.semi_minor_km


def cep_km(errors_km: Sequence[float]) -> float:
    """Circular error probable: the median of the radial errors."""
    if not len(errors_km):
        raise ConfigurationError("cep_km needs at least one error sample")
    return float(np.median(np.asarray(errors_km, float)))


def rmse_km(errors_km: Sequence[float]) -> float:
    """Root-mean-square of radial errors."""
    if not len(errors_km):
        raise ConfigurationError("rmse_km needs at least one error sample")
    values = np.asarray(errors_km, float)
    return float(np.sqrt(np.mean(values**2)))


def error_ellipse(covariance: np.ndarray, latitude: float) -> ErrorEllipse:
    """1-sigma error ellipse from a (lat, lon[, f]) WLS covariance.

    The latitude/longitude block is converted to local north/east
    kilometres before the eigen-decomposition.
    """
    cov = np.asarray(covariance, float)
    if cov.shape[0] < 2 or cov.shape[1] < 2:
        raise ConfigurationError("covariance must be at least 2x2")
    radius = EARTH.radius_km
    scale = np.diag([radius, radius * math.cos(latitude)])
    cov_ne = scale @ cov[:2, :2] @ scale
    eigenvalues, eigenvectors = np.linalg.eigh(cov_ne)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    major_idx = int(np.argmax(eigenvalues))
    minor_idx = 1 - major_idx
    major_vec = eigenvectors[:, major_idx]
    return ErrorEllipse(
        semi_major_km=float(np.sqrt(eigenvalues[major_idx])),
        semi_minor_km=float(np.sqrt(eigenvalues[minor_idx])),
        orientation_rad=float(math.atan2(major_vec[1], major_vec[0])),
    )
