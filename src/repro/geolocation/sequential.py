"""Sequential localization: iterative accuracy refinement across
satellite passes (paper Section 3.1; Levanon 1998, Chan & Towers 1992).

Each satellite that (re)visits the emitter contributes a batch of
measurements.  The localizer accumulates batches, re-solves the WLS
problem warm-started from the previous estimate, and tracks the
estimated error -- the quantity the OAQ protocol's termination
condition TC-1 compares against its threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.geolocation.measurements import Measurement
from repro.geolocation.wls import GeolocationResult, WLSEstimator
from repro.orbits.frames import GeodeticPoint

__all__ = ["PassRecord", "SequentialLocalizer"]


@dataclass(frozen=True)
class PassRecord:
    """Bookkeeping for one refinement iteration.

    Attributes
    ----------
    satellite_name:
        Which satellite's measurements were added.
    measurements_total:
        Cumulative measurement count after this pass.
    result:
        The WLS solution after this pass.
    """

    satellite_name: str
    measurements_total: int
    result: GeolocationResult


class SequentialLocalizer:
    """Accumulates measurement batches and refines the estimate.

    Parameters
    ----------
    estimator:
        The WLS engine (defaults to a frequency-estimating solver).
    initial_guess:
        Where the first solve starts; later solves warm-start from the
        previous estimate (the paper's coordination-request message
        carries exactly this: earlier measurements plus the preliminary
        result).
    """

    def __init__(
        self,
        estimator: Optional[WLSEstimator] = None,
        *,
        initial_guess: Optional[GeodeticPoint] = None,
    ):
        self.estimator = estimator or WLSEstimator()
        self._initial_guess = initial_guess
        self._measurements: List[Measurement] = []
        self._history: List[PassRecord] = []

    @property
    def measurements(self) -> List[Measurement]:
        """All accumulated measurements."""
        return list(self._measurements)

    @property
    def history(self) -> List[PassRecord]:
        """One record per completed refinement iteration."""
        return list(self._history)

    @property
    def passes(self) -> int:
        """Number of satellite passes incorporated so far."""
        return len(self._history)

    @property
    def current(self) -> Optional[GeolocationResult]:
        """The latest solution, or None before the first pass."""
        return self._history[-1].result if self._history else None

    @property
    def estimated_error_km(self) -> float:
        """The latest 1-sigma horizontal error estimate (km); infinity
        before the first solution.  This is TC-1's input."""
        result = self.current
        return result.horizontal_error_km if result else float("inf")

    def add_pass(
        self,
        measurements: Sequence[Measurement],
        *,
        satellite_name: Optional[str] = None,
    ) -> GeolocationResult:
        """Incorporate one satellite's measurement batch and re-solve.

        Returns the refined solution.  The warm start makes each
        iteration cheap and monotone in practice: more measurements
        mean a better-conditioned problem.
        """
        measurements = list(measurements)
        if not measurements:
            raise ConfigurationError("add_pass requires at least one measurement")
        if satellite_name is None:
            satellite_name = measurements[0].satellite_name or f"pass-{self.passes+1}"
        self._measurements.extend(measurements)
        guess = self._warm_start()
        result = self.estimator.solve(self._measurements, guess)
        self._history.append(
            PassRecord(
                satellite_name=satellite_name,
                measurements_total=len(self._measurements),
                result=result,
            )
        )
        return result

    def _warm_start(self) -> GeodeticPoint:
        if self._history:
            return self._history[-1].result.estimate
        if self._initial_guess is not None:
            return self._initial_guess
        # Default: the sub-satellite point of the first measurement, the
        # natural crude guess for a just-detected emitter.
        from repro.orbits.frames import subsatellite_point

        return subsatellite_point(self._measurements[0].satellite_position_ecef)

    def error_history_km(self) -> List[float]:
        """Estimated error after each pass (should be decreasing)."""
        return [record.result.horizontal_error_km for record in self._history]
