"""Emitter geolocation substrate: measurement models, iterative
weighted-least-squares estimation, and sequential localization
(the machinery behind the paper's QoS levels; references [4, 5]).
"""

from repro.geolocation.accuracy import ErrorEllipse, cep_km, error_ellipse, rmse_km
from repro.geolocation.measurements import (
    SPEED_OF_LIGHT_KM_S,
    Emitter,
    Measurement,
    MeasurementGenerator,
    range_km,
    range_rate_km_s,
    received_frequency_hz,
)
from repro.geolocation.sequential import PassRecord, SequentialLocalizer
from repro.geolocation.wls import GeolocationResult, WLSEstimator

__all__ = [
    "SPEED_OF_LIGHT_KM_S",
    "Emitter",
    "ErrorEllipse",
    "GeolocationResult",
    "Measurement",
    "MeasurementGenerator",
    "PassRecord",
    "SequentialLocalizer",
    "WLSEstimator",
    "cep_km",
    "error_ellipse",
    "range_km",
    "range_rate_km_s",
    "received_frequency_hz",
    "rmse_km",
]
