"""RF measurement models for emitter geolocation.

The paper's constellation locates radio-frequency emitters from
satellite measurements.  Following the sequential-localization
literature it cites (Levanon 1998; Chan & Towers 1992), the primary
observable is the **Doppler-shifted received frequency**: a LEO
satellite moving at ~7.7 km/s sees the emitter's carrier shifted by up
to ~25 kHz (at 900 MHz), with a characteristic S-curve as it passes by;
the curve's shape encodes the emitter's position.  A time-of-arrival
(range) observable is also provided for diversity experiments.

All measurement geometry is computed in the Earth-fixed frame, where
the emitter is static; satellite ECEF velocity therefore includes the
frame-rotation term ``-omega x r``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.orbits.bodies import EARTH, Body
from repro.orbits.constellation import Satellite
from repro.orbits.frames import GeodeticPoint, eci_to_ecef, geodetic_to_ecef

__all__ = [
    "SPEED_OF_LIGHT_KM_S",
    "Emitter",
    "Measurement",
    "range_rate_km_s",
    "received_frequency_hz",
    "range_km",
    "MeasurementGenerator",
]

#: Speed of light in km/s.
SPEED_OF_LIGHT_KM_S = 299_792.458


@dataclass(frozen=True)
class Emitter:
    """A ground RF emitter (the "signal" of the paper).

    Attributes
    ----------
    location:
        Geodetic position (the estimation target).
    frequency_hz:
        Transmitted carrier frequency (e.g. 900 MHz for the cellular
        handsets of the paper's figures).
    name:
        Identifier used in scenario logs.
    """

    location: GeodeticPoint
    frequency_hz: float = 900.0e6
    name: str = "emitter"

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency_hz must be positive, got {self.frequency_hz}"
            )

    def position_ecef(self, body: Body = EARTH) -> np.ndarray:
        """Earth-fixed position (km)."""
        return geodetic_to_ecef(self.location, body)


@dataclass(frozen=True)
class Measurement:
    """One sensor observation of the emitter by one satellite.

    Attributes
    ----------
    kind:
        ``"doppler"`` (received frequency, Hz) or ``"range"`` (km).
    time_s:
        Observation time.
    satellite_position_ecef / satellite_velocity_ecef:
        Observer state in the Earth-fixed frame (km, km/s).
    value:
        The observed quantity (Hz or km) including noise.
    sigma:
        Measurement standard deviation in the same unit.
    satellite_name:
        Which satellite produced the measurement (drives the
        per-satellite accounting of sequential localization).
    """

    kind: str
    time_s: float
    satellite_position_ecef: np.ndarray
    satellite_velocity_ecef: np.ndarray
    value: float
    sigma: float
    satellite_name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("doppler", "range"):
            raise ConfigurationError(f"unknown measurement kind {self.kind!r}")
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {self.sigma}")


def _ecef_velocity(satellite: Satellite, time_s: float, body: Body) -> np.ndarray:
    """Satellite velocity in the rotating Earth-fixed frame."""
    position_ecef = satellite.position_ecef(time_s, body)
    velocity_inertial_in_ecef = eci_to_ecef(
        satellite.velocity_eci(time_s, body), time_s, body
    )
    omega = np.array([0.0, 0.0, body.rotation_rate_rad_s])
    return velocity_inertial_in_ecef - np.cross(omega, position_ecef)


def range_km(satellite_position_ecef: np.ndarray, emitter_ecef: np.ndarray) -> float:
    """Slant range satellite -> emitter (km)."""
    return float(np.linalg.norm(np.asarray(satellite_position_ecef) - emitter_ecef))


def range_rate_km_s(
    satellite_position_ecef: np.ndarray,
    satellite_velocity_ecef: np.ndarray,
    emitter_ecef: np.ndarray,
) -> float:
    """Range rate (km/s): positive when the satellite recedes."""
    offset = np.asarray(satellite_position_ecef) - np.asarray(emitter_ecef)
    distance = float(np.linalg.norm(offset))
    if distance == 0.0:
        raise ConfigurationError("range rate undefined at zero range")
    return float(np.dot(offset, satellite_velocity_ecef)) / distance

def received_frequency_hz(
    satellite_position_ecef: np.ndarray,
    satellite_velocity_ecef: np.ndarray,
    emitter_ecef: np.ndarray,
    transmitted_hz: float,
) -> float:
    """Doppler-shifted frequency observed by the satellite (Hz)."""
    rate = range_rate_km_s(
        satellite_position_ecef, satellite_velocity_ecef, emitter_ecef
    )
    return transmitted_hz * (1.0 - rate / SPEED_OF_LIGHT_KM_S)


class MeasurementGenerator:
    """Generates noisy measurements of an emitter from satellite passes.

    Parameters
    ----------
    emitter:
        The (true) emitter being observed.
    doppler_sigma_hz:
        Frequency-measurement noise (1-sigma).
    range_sigma_km:
        Range-measurement noise (1-sigma), for ``kind="range"``.
    footprint_half_angle:
        When given, measurements are only produced while the emitter is
        inside the satellite's footprint (Earth-central angle test).
    """

    def __init__(
        self,
        emitter: Emitter,
        *,
        doppler_sigma_hz: float = 5.0,
        range_sigma_km: float = 0.5,
        footprint_half_angle: Optional[float] = None,
        body: Body = EARTH,
    ):
        if doppler_sigma_hz <= 0 or range_sigma_km <= 0:
            raise ConfigurationError("measurement sigmas must be positive")
        self.emitter = emitter
        self.doppler_sigma_hz = doppler_sigma_hz
        self.range_sigma_km = range_sigma_km
        self.footprint_half_angle = footprint_half_angle
        self.body = body
        self._emitter_ecef = emitter.position_ecef(body)

    def visible(self, satellite: Satellite, time_s: float) -> bool:
        """Whether the emitter is inside the satellite's footprint (or
        always, if no footprint was configured)."""
        if self.footprint_half_angle is None:
            return True
        position = satellite.position_ecef(time_s, self.body)
        offset_angle = math.acos(
            max(
                -1.0,
                min(
                    1.0,
                    float(
                        np.dot(position, self._emitter_ecef)
                        / (
                            np.linalg.norm(position)
                            * np.linalg.norm(self._emitter_ecef)
                        )
                    ),
                ),
            )
        )
        return offset_angle <= self.footprint_half_angle

    def observe(
        self,
        satellite: Satellite,
        times_s: Sequence[float],
        rng: np.random.Generator,
        *,
        kind: str = "doppler",
    ) -> List[Measurement]:
        """Noisy measurements at the visible subset of ``times_s``."""
        measurements = []
        for time_s in times_s:
            if not self.visible(satellite, float(time_s)):
                continue
            position = satellite.position_ecef(float(time_s), self.body)
            velocity = _ecef_velocity(satellite, float(time_s), self.body)
            if kind == "doppler":
                truth = received_frequency_hz(
                    position, velocity, self._emitter_ecef, self.emitter.frequency_hz
                )
                sigma = self.doppler_sigma_hz
            elif kind == "range":
                truth = range_km(position, self._emitter_ecef)
                sigma = self.range_sigma_km
            else:
                raise ConfigurationError(f"unknown measurement kind {kind!r}")
            measurements.append(
                Measurement(
                    kind=kind,
                    time_s=float(time_s),
                    satellite_position_ecef=position,
                    satellite_velocity_ecef=velocity,
                    value=truth + rng.normal(0.0, sigma),
                    sigma=sigma,
                    satellite_name=satellite.name,
                )
            )
        return measurements
