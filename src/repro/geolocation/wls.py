"""Iterative weighted-least-squares emitter geolocation.

The estimator behind the paper's QoS levels: Gauss-Newton iteration on
the measurement residuals, estimating the emitter's latitude and
longitude (the emitter is constrained to the Earth's surface) and,
for Doppler measurements, the unknown transmitted frequency.

Why more coverage means better QoS:

* a *single pass* of Doppler measurements leaves a near-mirror
  **ambiguity** about the ground track (Levanon 1998) and a thin error
  ellipse across it -- the paper's QoS level 1;
* a second satellite pass (sequential, level 2) or a simultaneous
  second satellite (level 3) observes the emitter from a different
  geometry, collapsing the ambiguity and shrinking the error
  covariance dramatically.

:func:`WLSEstimator.solve_multistart` exposes the ambiguity explicitly
by running Gauss-Newton from mirrored initial guesses and reporting the
distinct local solutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.geolocation.measurements import (
    Measurement,
    range_km,
    received_frequency_hz,
)
from repro.orbits.bodies import EARTH, Body
from repro.orbits.frames import GeodeticPoint, geodetic_to_ecef, great_circle_distance_km

__all__ = ["GeolocationResult", "WLSEstimator"]


@dataclass(frozen=True)
class GeolocationResult:
    """Outcome of a WLS geolocation solve.

    Attributes
    ----------
    estimate:
        Estimated emitter position (surface point).
    frequency_hz:
        Estimated transmitted frequency (Doppler solves only).
    covariance:
        Parameter covariance in solver units (rad/rad/Hz); use
        :attr:`horizontal_error_km` for the position summary.
    residual_rms:
        Root-mean-square of the weighted residuals at the solution
        (≈1 when the model and noise are consistent).
    iterations:
        Gauss-Newton iterations used.
    converged:
        Whether the step size dropped below tolerance.
    """

    estimate: GeodeticPoint
    frequency_hz: Optional[float]
    covariance: np.ndarray
    residual_rms: float
    iterations: int
    converged: bool

    @property
    def horizontal_error_km(self) -> float:
        """1-sigma horizontal position uncertainty (km), from the
        covariance of the latitude/longitude estimates."""
        lat_var = float(self.covariance[0, 0])
        lon_var = float(self.covariance[1, 1])
        lat = self.estimate.latitude
        radius = EARTH.radius_km
        north = radius * math.sqrt(max(lat_var, 0.0))
        east = radius * math.cos(lat) * math.sqrt(max(lon_var, 0.0))
        return math.hypot(north, east)

    def error_km(self, truth: GeodeticPoint) -> float:
        """Great-circle distance from the estimate to the true emitter
        position (km)."""
        return great_circle_distance_km(self.estimate, truth)


class WLSEstimator:
    """Gauss-Newton weighted least squares on emitter measurements.

    Parameters
    ----------
    estimate_frequency:
        Include the transmitted frequency as an unknown (needed for
        Doppler-only geolocation of non-cooperative emitters).
    max_iterations / tolerance_rad:
        Iteration control; ``tolerance_rad`` bounds the position step.
    body:
        Central body (the Earth).
    """

    def __init__(
        self,
        *,
        estimate_frequency: bool = True,
        max_iterations: int = 50,
        tolerance_rad: float = 1e-10,
        body: Body = EARTH,
    ):
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.estimate_frequency = estimate_frequency
        self.max_iterations = max_iterations
        self.tolerance_rad = tolerance_rad
        self.body = body

    # ------------------------------------------------------------------
    # Model
    # ------------------------------------------------------------------
    def _predict(
        self, measurement: Measurement, lat: float, lon: float, freq: float
    ) -> float:
        # Finite-difference probes can push the latitude marginally past
        # a pole; clamp before constructing the (validating) point.
        lat = max(-math.pi / 2, min(math.pi / 2, lat))
        emitter = geodetic_to_ecef(GeodeticPoint(lat, lon, 0.0), self.body)
        if measurement.kind == "doppler":
            return received_frequency_hz(
                measurement.satellite_position_ecef,
                measurement.satellite_velocity_ecef,
                emitter,
                freq,
            )
        return range_km(measurement.satellite_position_ecef, emitter)

    def _parameter_count(self, measurements: Sequence[Measurement]) -> int:
        has_doppler = any(m.kind == "doppler" for m in measurements)
        return 3 if (self.estimate_frequency and has_doppler) else 2

    def _residuals_and_jacobian(
        self,
        measurements: Sequence[Measurement],
        theta: np.ndarray,
        nominal_frequency: float,
    ) -> "tuple[np.ndarray, np.ndarray]":
        n_params = len(theta)
        lat, lon = float(theta[0]), float(theta[1])
        freq = float(theta[2]) if n_params == 3 else nominal_frequency
        residuals = np.empty(len(measurements))
        jacobian = np.empty((len(measurements), n_params))
        # Finite-difference steps: ~0.6 m on the ground, 1e-3 Hz.
        steps = [1e-7, 1e-7, 1e-3][:n_params]
        for i, measurement in enumerate(measurements):
            predicted = self._predict(measurement, lat, lon, freq)
            residuals[i] = (measurement.value - predicted) / measurement.sigma
            for j, step in enumerate(steps):
                perturbed = theta.copy()
                perturbed[j] += step
                p_lat, p_lon = float(perturbed[0]), float(perturbed[1])
                p_freq = float(perturbed[2]) if n_params == 3 else nominal_frequency
                shifted = self._predict(measurement, p_lat, p_lon, p_freq)
                jacobian[i, j] = (shifted - predicted) / (step * measurement.sigma)
        return residuals, jacobian

    # ------------------------------------------------------------------
    # Solver
    # ------------------------------------------------------------------
    def solve(
        self,
        measurements: Sequence[Measurement],
        initial_guess: GeodeticPoint,
        *,
        nominal_frequency_hz: Optional[float] = None,
    ) -> GeolocationResult:
        """Run Gauss-Newton from ``initial_guess``.

        ``nominal_frequency_hz`` seeds (or, when the frequency is not
        estimated, fixes) the transmitted frequency; defaults to the
        mean observed Doppler value, which is within ~30 ppm of truth
        for LEO geometry.
        """
        measurements = list(measurements)
        if not measurements:
            raise ConfigurationError("no measurements supplied")
        n_params = self._parameter_count(measurements)
        if len(measurements) < n_params:
            raise ConfigurationError(
                f"need at least {n_params} measurements, got {len(measurements)}"
            )
        doppler_values = [m.value for m in measurements if m.kind == "doppler"]
        if nominal_frequency_hz is None:
            nominal_frequency_hz = (
                float(np.mean(doppler_values)) if doppler_values else 0.0
            )
        theta = np.array(
            [initial_guess.latitude, initial_guess.longitude, nominal_frequency_hz][
                :n_params
            ]
        )

        def clamp(vector: np.ndarray) -> np.ndarray:
            vector = vector.copy()
            vector[0] = max(-math.pi / 2, min(math.pi / 2, float(vector[0])))
            return vector

        def sum_squares(vector: np.ndarray) -> float:
            lat, lon = float(vector[0]), float(vector[1])
            freq = float(vector[2]) if n_params == 3 else nominal_frequency_hz
            total = 0.0
            for measurement in measurements:
                predicted = self._predict(measurement, lat, lon, freq)
                total += ((measurement.value - predicted) / measurement.sigma) ** 2
            return total

        # Levenberg-Marquardt: Gauss-Newton with adaptive damping, which
        # keeps iterations stable when the initial guess sits on the
        # ground track (where the across-track direction is nearly
        # unobservable from a single pass).
        converged = False
        iterations = 0
        damping = 1e-3
        residuals = np.zeros(len(measurements))
        jacobian = np.zeros((len(measurements), n_params))
        current_sse = sum_squares(theta)
        for iterations in range(1, self.max_iterations + 1):
            residuals, jacobian = self._residuals_and_jacobian(
                measurements, theta, nominal_frequency_hz
            )
            normal = jacobian.T @ jacobian
            gradient = jacobian.T @ residuals
            scale = np.diag(np.clip(np.diag(normal), 1e-30, None))
            accepted = False
            step = np.zeros(n_params)
            for _ in range(12):
                try:
                    step = np.linalg.solve(normal + damping * scale, gradient)
                except np.linalg.LinAlgError:
                    damping *= 10.0
                    continue
                candidate = clamp(theta + step)
                candidate_sse = sum_squares(candidate)
                if candidate_sse <= current_sse:
                    theta = candidate
                    current_sse = candidate_sse
                    damping = max(damping / 3.0, 1e-12)
                    accepted = True
                    break
                damping *= 10.0
            if not accepted:
                # Damping exhausted: we are at a (local) minimum up to
                # numerical precision.
                converged = True
                break
            if float(np.max(np.abs(step[:2]))) < self.tolerance_rad:
                converged = True
                break
        try:
            covariance = np.linalg.inv(jacobian.T @ jacobian)
        except np.linalg.LinAlgError:
            covariance = np.full((n_params, n_params), np.inf)
        rms = float(np.sqrt(np.mean(residuals**2)))
        return GeolocationResult(
            estimate=GeodeticPoint(float(theta[0]), float(theta[1]), 0.0),
            frequency_hz=float(theta[2]) if n_params == 3 else None,
            covariance=covariance,
            residual_rms=rms,
            iterations=iterations,
            converged=converged,
        )

    def solve_multistart(
        self,
        measurements: Sequence[Measurement],
        initial_guesses: Sequence[GeodeticPoint],
        *,
        nominal_frequency_hz: Optional[float] = None,
        distinct_km: float = 25.0,
    ) -> List[GeolocationResult]:
        """Run :meth:`solve` from several initial guesses and return the
        distinct converged solutions, best residual first.

        With a single satellite pass this typically returns **two**
        solutions (the ground-track mirror ambiguity); with measurements
        from two satellites it collapses to one.
        """
        solutions: List[GeolocationResult] = []
        for guess in initial_guesses:
            try:
                result = self.solve(
                    measurements, guess, nominal_frequency_hz=nominal_frequency_hz
                )
            except SolverError:
                continue
            if not result.converged:
                continue
            if any(
                result.estimate is not None
                and great_circle_distance_km(result.estimate, other.estimate)
                < distinct_km
                for other in solutions
            ):
                continue
            solutions.append(result)
        solutions.sort(key=lambda r: r.residual_rms)
        return solutions
