"""Chunk-granular JSONL checkpoint journal.

One campaign run appends JSON records, one per line, to a journal
file::

    {"record": "campaign", "version": 1, "fingerprint": ..., ...}
    {"record": "planned", "chunk": 0, "affinity": ..., "indices": [...]}
    ...
    {"record": "leased", "chunk": 3, "attempt": 1}
    {"record": "completed", "chunk": 3, "digest": ..., "payload": ...,
     "seconds": ..., "source": "executed"}
    {"record": "failed", "chunk": 5, "attempt": 1, "error": "..."}
    {"record": "resumed", "completed": [0, 3]}

``payload`` is the base64-encoded pickle of the chunk's row list --
the exact objects the merge step needs -- and ``digest`` its SHA-256,
so a resume replays completed chunks to the byte-identical final
artifact without re-executing them, and a re-executed chunk (worker
loss, speculative straggler copy) can be checked against the recorded
digest.  ``leased`` lines mark chunks handed to a worker; a chunk
leased but never completed is simply re-run on resume.

The file is append-only and flushed per record.  A process killed
mid-write can leave one truncated trailing line; the loader tolerates
(and the next append overwrites nothing -- the partial line is ignored
and superseded by the re-executed chunk's record).  Everything before
the truncation point is intact, which is all resume needs.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.planner import Chunk
from repro.errors import ConfigurationError

__all__ = ["CampaignJournal", "load_journal"]

#: Journal format version (independent of the plan fingerprint version).
JOURNAL_VERSION = 1


def payload_digest(payload: bytes) -> str:
    """SHA-256 hex digest of a pickled chunk payload."""
    return hashlib.sha256(payload).hexdigest()


def load_journal(
    path: str,
) -> Tuple[Optional[Dict[str, object]], Dict[int, Tuple[str, bytes]]]:
    """Parse a journal file.

    Returns ``(header, completed)`` where ``completed`` maps chunk id
    to ``(digest, payload_bytes)`` of its latest ``completed`` record.
    A missing or empty file yields ``(None, {})``.  A truncated final
    line (killed process) is ignored; corruption anywhere else raises.
    Two ``completed`` records for one chunk with different digests
    raise -- that would mean a nondeterministic evaluator, which voids
    every guarantee resume relies on.
    """
    if not os.path.exists(path):
        return None, {}
    header: Optional[Dict[str, object]] = None
    completed: Dict[int, Tuple[str, bytes]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno >= len(lines) - 2:  # truncated tail from a kill
                continue
            raise ConfigurationError(
                f"corrupt campaign journal {path!r} at line {lineno + 1}"
            )
        kind = record.get("record")
        if kind == "campaign":
            if header is None:
                header = record
            elif record.get("fingerprint") != header.get("fingerprint"):
                raise ConfigurationError(
                    f"campaign journal {path!r} mixes two different "
                    f"campaigns (fingerprint changed at line {lineno + 1})"
                )
        elif kind == "completed":
            chunk_id = int(record["chunk"])
            digest = str(record["digest"])
            payload = base64.b64decode(record["payload"])
            if payload_digest(payload) != digest:
                raise ConfigurationError(
                    f"campaign journal {path!r}: chunk {chunk_id} payload "
                    f"does not match its recorded digest (line {lineno + 1})"
                )
            previous = completed.get(chunk_id)
            if previous is not None and previous[0] != digest:
                raise ConfigurationError(
                    f"campaign journal {path!r}: chunk {chunk_id} completed "
                    f"twice with different digests ({previous[0][:12]} vs "
                    f"{digest[:12]}) -- nondeterministic evaluator"
                )
            completed[chunk_id] = (digest, payload)
    return header, completed


class CampaignJournal:
    """Append-only writer (plus resume loader) for one campaign run."""

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    # ------------------------------------------------------------------
    def open(
        self, fingerprint: str, chunks: Sequence[Chunk]
    ) -> Dict[int, Tuple[str, bytes]]:
        """Start or resume the journal.

        A fresh (or empty) file gets the campaign header and the
        ``planned`` records; an existing one is validated against
        ``fingerprint`` -- a mismatch raises with both digests, because
        resuming a checkpoint against a different grid would merge
        unrelated results -- and its completed chunks are returned for
        the runner to skip.
        """
        header, completed = load_journal(self.path)
        if header is not None:
            recorded = header.get("fingerprint")
            if recorded != fingerprint:
                raise ConfigurationError(
                    f"campaign journal {self.path!r} was recorded for a "
                    f"different grid: journal fingerprint "
                    f"{str(recorded)[:16]}... vs requested "
                    f"{fingerprint[:16]}...  Pass a fresh journal path (or "
                    f"the matching grid) -- resuming across grids would "
                    f"merge unrelated results."
                )
            known = {int(c) for c in range(len(chunks))}
            stale = sorted(set(completed) - known)
            if stale:
                raise ConfigurationError(
                    f"campaign journal {self.path!r} holds completed chunks "
                    f"{stale} beyond the requested plan of {len(chunks)} "
                    f"chunks"
                )
            self._append(
                {"record": "resumed", "completed": sorted(completed)}
            )
            return completed
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._append(
            {
                "record": "campaign",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "chunks": len(chunks),
                "points": sum(len(chunk.indices) for chunk in chunks),
            }
        )
        for chunk in chunks:
            self._append(
                {
                    "record": "planned",
                    "chunk": chunk.chunk_id,
                    "affinity": chunk.affinity,
                    "indices": list(chunk.indices),
                }
            )
        return {}

    # ------------------------------------------------------------------
    def lease(self, chunk_id: int, attempt: int) -> None:
        self._append(
            {"record": "leased", "chunk": chunk_id, "attempt": attempt}
        )

    def complete(
        self,
        chunk_id: int,
        payload: bytes,
        *,
        seconds: float,
        source: str,
    ) -> None:
        self._append(
            {
                "record": "completed",
                "chunk": chunk_id,
                "digest": payload_digest(payload),
                "payload": base64.b64encode(payload).decode("ascii"),
                "seconds": seconds,
                "source": source,
            }
        )

    def fail(self, chunk_id: int, attempt: int, error: str) -> None:
        self._append(
            {
                "record": "failed",
                "chunk": chunk_id,
                "attempt": attempt,
                "error": error,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
