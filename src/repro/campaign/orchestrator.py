"""Chunk-sharded campaign execution with state isolation.

:class:`CampaignRunner` executes a planned campaign -- see
:func:`repro.campaign.planner.plan_chunks` -- inline or over a process
pool.  The determinism contract rests on one mechanism, **chunk-level
state isolation**: before a chunk executes (on any worker, on any
attempt), the process-local capacity caches are cleared and re-seeded
with the snapshot taken when the campaign started.  Each chunk's rows
are therefore a pure function of ``(snapshot, chunk points, in-chunk
order)``: scheduling, worker count, speculative duplicate execution,
worker-loss retry and checkpoint/resume all merge to byte-identical
results, verified by SHA-256 digests over the pickled row payloads.

Fault tolerance:

* **Checkpointing**: with a :class:`~repro.campaign.journal.
  CampaignJournal`, every completed chunk is journaled with its pickled
  rows; a rerun against the same grid skips completed chunks and
  replays their recorded payloads.
* **Worker loss**: a ``BrokenProcessPool`` (worker killed by the OS,
  segfault, OOM) rebuilds the pool and resubmits every incomplete
  chunk, up to ``pool_restarts`` times.
* **Evaluator errors**: a chunk raising an exception is retried
  ``retries`` times from a fresh state reset; a deterministic failure
  exhausts its retries and propagates as the original exception.
* **Stragglers**: once every chunk is in flight, idle workers
  speculatively re-execute outstanding chunks (work stealing); the
  first completion wins and any late duplicate must match its digest.

``isolate=False`` disables the per-chunk reset (workers then behave
like the legacy per-point pool, accumulating state across whatever
chunks they happen to receive) -- results remain correct but are no
longer bit-reproducible across worker counts; it exists for the
benchmark's legacy-emulation baseline.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytic.capacity import (
    capacity_cache_snapshot,
    capacity_cache_stats,
    capacity_solver_stats,
    capacity_stage_timings,
    clear_capacity_caches,
    seed_capacity_cache,
)
from repro.campaign.journal import CampaignJournal, payload_digest
from repro.campaign.planner import Chunk, grid_fingerprint, plan_chunks
from repro.errors import CampaignError, ConfigurationError
from repro.simulation.batch import batch_stage_timings
from repro.simulation.vector import vector_batch_stats

__all__ = ["CampaignResult", "CampaignRunner", "ChunkOutcome"]


@dataclass
class ChunkOutcome:
    """What happened to one chunk: its merged-in rows, the digest of
    their pickled form, and -- for chunks executed in a pool worker --
    the worker-side stage/solver/cache counter deltas, which the parent
    process cannot observe directly.  ``in_worker`` marks deltas that
    happened outside the parent's own accumulators (inline execution
    is already counted by the parent; adding it again would double
    count)."""

    chunk_id: int
    affinity: str
    rows: List[object]
    digest: str
    seconds: float
    source: str  # "executed" | "resumed" | "stolen"
    in_worker: bool
    stage_timings: Dict[str, float] = field(default_factory=dict)
    batch_timings: Dict[str, float] = field(default_factory=dict)
    solver_stats: Dict[str, int] = field(default_factory=dict)
    vector_stats: Dict[str, float] = field(default_factory=dict)
    cache_deltas: Dict[str, Dict[str, int]] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Merged campaign output: ``rows[i]`` is the evaluator's result
    for ``points[i]`` (grid order, independent of execution order)."""

    rows: List[object]
    chunks: List[ChunkOutcome]
    fingerprint: str
    stats: Dict[str, object]

    def worker_stage_timings(self) -> Dict[str, float]:
        """Summed capacity-stage seconds spent inside pool workers
        (inline chunks excluded -- the parent's accumulators already
        saw those)."""
        totals: Dict[str, float] = {}
        for outcome in self.chunks:
            if not outcome.in_worker:
                continue
            for stage, seconds in outcome.stage_timings.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def worker_batch_timings(self) -> Dict[str, float]:
        """Summed replication-stage seconds spent inside pool workers."""
        totals: Dict[str, float] = {}
        for outcome in self.chunks:
            if not outcome.in_worker:
                continue
            for stage, seconds in outcome.batch_timings.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def worker_counter_sums(self, kind: str) -> Dict[str, float]:
        """Summed worker-side counter deltas: ``kind`` is
        ``"solver_stats"`` or ``"vector_stats"``."""
        totals: Dict[str, float] = {}
        for outcome in self.chunks:
            if not outcome.in_worker:
                continue
            for key, value in getattr(outcome, kind).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def cache_counter_sums(self) -> Dict[str, Dict[str, int]]:
        """Summed per-cache hit/miss deltas across *all* executed
        chunks (inline included -- cache counters are sampled around
        each chunk either way), the benchmark's locality evidence."""
        totals: Dict[str, Dict[str, int]] = {}
        for outcome in self.chunks:
            for name, delta in outcome.cache_deltas.items():
                bucket = totals.setdefault(name, {})
                for key, value in delta.items():
                    bucket[key] = bucket.get(key, 0) + value
        return totals


# ----------------------------------------------------------------------
# Worker-side machinery (module level: must be picklable by reference)
# ----------------------------------------------------------------------

_WORKER_SNAPSHOT: Optional[object] = None
_WORKER_ISOLATE: bool = True


def _campaign_worker_init(entries, isolate: bool) -> None:
    """Pool initializer: remember the campaign's cache snapshot and
    seed it once (the non-isolated mode keeps this warm state and
    accumulates on top, exactly like the legacy per-point pool)."""
    global _WORKER_SNAPSHOT, _WORKER_ISOLATE
    _WORKER_SNAPSHOT = entries
    _WORKER_ISOLATE = isolate
    seed_capacity_cache(entries)


def _reset_to_snapshot(entries) -> None:
    """The isolation step: forget everything this process accumulated
    and restore the campaign's initial cache contents."""
    clear_capacity_caches()
    seed_capacity_cache(entries)


def _sample_counters():
    return (
        capacity_stage_timings(),
        batch_stage_timings(),
        capacity_solver_stats(),
        vector_batch_stats(),
        {
            name: {"hits": stats.hits, "misses": stats.misses}
            for name, stats in capacity_cache_stats().items()
        },
    )


def _counter_deltas(before, after):
    stage_b, batch_b, solver_b, vector_b, cache_b = before
    stage_a, batch_a, solver_a, vector_a, cache_a = after
    stage = {k: stage_a.get(k, 0.0) - stage_b.get(k, 0.0) for k in stage_a}
    batch = {k: batch_a.get(k, 0.0) - batch_b.get(k, 0.0) for k in batch_a}
    solver = {k: solver_a.get(k, 0) - solver_b.get(k, 0) for k in solver_a}
    vector = {
        k: vector_a.get(k, 0) - vector_b.get(k, 0)
        for k in ("calls", "replications", "fallbacks")
    }
    cache = {
        name: {
            k: cache_a[name].get(k, 0) - cache_b.get(name, {}).get(k, 0)
            for k in cache_a[name]
        }
        for name in cache_a
    }
    return stage, batch, solver, vector, cache


def _execute_chunk(row_fn, chunk_points: Sequence[object]):
    """Evaluate one chunk's points consecutively, in grid order."""
    return [row_fn(point) for point in chunk_points]


def _pool_chunk_task(payload):
    """Top-level (hence picklable) per-chunk pool task.

    Resets the worker to the campaign snapshot (unless the campaign
    disabled isolation), runs the chunk, and returns the *pickled* row
    list -- the parent digests exactly these bytes, so digest equality
    means byte equality of the payload the merge consumes -- plus the
    worker-side counter deltas for the chunk.
    """
    row_fn, chunk_id, attempt, chunk_points = payload
    if _WORKER_ISOLATE:
        _reset_to_snapshot(_WORKER_SNAPSHOT)
    before = _sample_counters()
    start = time.perf_counter()
    rows = _execute_chunk(row_fn, chunk_points)
    seconds = time.perf_counter() - start
    deltas = _counter_deltas(before, _sample_counters())
    return chunk_id, attempt, pickle.dumps(rows), seconds, deltas


class CampaignRunner:
    """Execute a grid of independent points as affinity-keyed chunks.

    Parameters
    ----------
    n_jobs:
        ``1`` executes chunks inline (no pool; still chunked,
        state-isolated and journalable -- this is the single-process
        reference every parallel run is byte-identical to); ``> 1``
        fans chunks out over that many worker processes; ``-1`` uses
        one worker per CPU.
    journal:
        Path of the JSONL checkpoint journal.  If the file exists it
        must fingerprint-match the requested grid (else
        :class:`~repro.errors.ConfigurationError`); completed chunks
        are replayed from it instead of re-executed.
    max_chunk_size:
        Optional cap on chunk size (splits oversized affinity groups;
        see :func:`~repro.campaign.planner.plan_chunks` for the
        bit-stability caveat).
    steal:
        Speculatively re-execute outstanding chunks on idle workers
        once everything is in flight (pool mode only).
    retries:
        How many times a chunk whose evaluator raised is re-attempted
        (from a fresh state reset) before the exception propagates.
    pool_restarts:
        How many ``BrokenProcessPool`` recoveries to attempt before
        giving up with :class:`~repro.errors.CampaignError`.
    isolate:
        Reset worker state at every chunk boundary (the determinism
        mechanism).  Disable only for legacy-emulation baselines.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        *,
        journal: Optional[str] = None,
        max_chunk_size: Optional[int] = None,
        steal: bool = True,
        retries: int = 1,
        pool_restarts: int = 3,
        isolate: bool = True,
    ):
        if n_jobs == -1:
            n_jobs = os.cpu_count() or 1
        if not isinstance(n_jobs, int) or n_jobs < 1:
            raise ConfigurationError(
                f"n_jobs must be a positive int or -1, got {n_jobs!r}"
            )
        self.n_jobs = n_jobs
        self.journal_path = journal
        self.max_chunk_size = max_chunk_size
        self.steal = steal
        self.retries = retries
        self.pool_restarts = pool_restarts
        self.isolate = isolate

    # ------------------------------------------------------------------
    def run(
        self,
        row_fn: Callable[[object], object],
        points: Sequence[object],
        *,
        affinity: Optional[Callable[[object], object]] = None,
        seed: Optional[int] = None,
        on_chunk: Optional[Callable[[ChunkOutcome], None]] = None,
    ) -> CampaignResult:
        """Plan, execute and merge the campaign.

        ``on_chunk`` is invoked in the parent after each chunk lands
        (journal record already durable), in completion order -- a
        progress hook, and the test suite's crash-injection point.
        """
        points = list(points)
        chunks = plan_chunks(
            points,
            affinity=affinity,
            max_chunk_size=self.max_chunk_size,
            seed=seed,
        )
        fingerprint = grid_fingerprint(points, chunks)
        stats: Dict[str, object] = {
            "chunks": len(chunks),
            "points": len(points),
            "affinity_groups": len({c.affinity.split("#")[0] for c in chunks}),
            "workers": 1 if self.n_jobs == 1 else min(self.n_jobs, len(chunks)),
            "submissions": 0,
            "executed": 0,
            "resumed": 0,
            "stolen": 0,
            "retried": 0,
            "pool_restarts": 0,
        }
        journal: Optional[CampaignJournal] = None
        outcomes: Dict[int, ChunkOutcome] = {}
        try:
            if self.journal_path is not None:
                journal = CampaignJournal(self.journal_path)
                for chunk_id, (digest, payload) in journal.open(
                    fingerprint, chunks
                ).items():
                    outcomes[chunk_id] = ChunkOutcome(
                        chunk_id=chunk_id,
                        affinity=chunks[chunk_id].affinity,
                        rows=pickle.loads(payload),
                        digest=digest,
                        seconds=0.0,
                        source="resumed",
                        in_worker=False,
                    )
                stats["resumed"] = len(outcomes)
            pending = [c for c in chunks if c.chunk_id not in outcomes]
            if pending:
                if self.n_jobs == 1 or len(pending) == 1:
                    self._run_inline(
                        row_fn, pending, outcomes, stats, journal, on_chunk
                    )
                else:
                    self._run_pool(
                        row_fn, pending, outcomes, stats, journal, on_chunk
                    )
        finally:
            if journal is not None:
                journal.close()

        rows: List[object] = [None] * len(points)
        for chunk in chunks:
            outcome = outcomes[chunk.chunk_id]
            for position, index in enumerate(chunk.indices):
                rows[index] = outcome.rows[position]
        return CampaignResult(
            rows=rows,
            chunks=[outcomes[c.chunk_id] for c in chunks],
            fingerprint=fingerprint,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _run_inline(
        self,
        row_fn,
        pending: List[Chunk],
        outcomes: Dict[int, ChunkOutcome],
        stats: Dict[str, object],
        journal: Optional[CampaignJournal],
        on_chunk,
    ) -> None:
        snapshot = capacity_cache_snapshot() if self.isolate else None
        for chunk in pending:
            attempt = 1
            while True:
                if journal is not None:
                    journal.lease(chunk.chunk_id, attempt)
                stats["submissions"] += 1
                if self.isolate:
                    _reset_to_snapshot(snapshot)
                before = _sample_counters()
                start = time.perf_counter()
                try:
                    chunk_rows = _execute_chunk(row_fn, chunk.points)
                except Exception as error:
                    if journal is not None:
                        journal.fail(chunk.chunk_id, attempt, repr(error))
                    if attempt > self.retries:
                        raise
                    attempt += 1
                    stats["retried"] += 1
                    continue
                seconds = time.perf_counter() - start
                deltas = _counter_deltas(before, _sample_counters())
                payload = pickle.dumps(chunk_rows)
                outcome = self._record(
                    chunk,
                    attempt,
                    payload,
                    seconds,
                    deltas,
                    in_worker=False,
                    source="executed",
                    outcomes=outcomes,
                    stats=stats,
                    journal=journal,
                )
                if on_chunk is not None:
                    on_chunk(outcome)
                break

    # ------------------------------------------------------------------
    def _run_pool(
        self,
        row_fn,
        pending: List[Chunk],
        outcomes: Dict[int, ChunkOutcome],
        stats: Dict[str, object],
        journal: Optional[CampaignJournal],
        on_chunk,
    ) -> None:
        snapshot = capacity_cache_snapshot()
        workers = min(self.n_jobs, len(pending))
        stats["workers"] = workers
        by_id = {chunk.chunk_id: chunk for chunk in pending}
        attempts: Dict[int, int] = {cid: 0 for cid in by_id}
        failures: Dict[int, int] = {cid: 0 for cid in by_id}
        restarts = 0

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_campaign_worker_init,
                initargs=(snapshot, self.isolate),
            )

        def submit(pool, chunk: Chunk, *, speculative: bool) -> Future:
            attempts[chunk.chunk_id] += 1
            attempt = attempts[chunk.chunk_id]
            if journal is not None:
                journal.lease(chunk.chunk_id, attempt)
            stats["submissions"] += 1
            if speculative:
                stats["stolen"] += 1
            future = pool.submit(
                _pool_chunk_task,
                (row_fn, chunk.chunk_id, attempt, chunk.points),
            )
            return future

        pool = make_pool()
        inflight: Dict[Future, int] = {}
        try:
            for chunk in pending:
                inflight[submit(pool, chunk, speculative=False)] = chunk.chunk_id
            while any(cid not in outcomes for cid in by_id):
                # Work stealing: every chunk is in flight, so point idle
                # workers at duplicates of the stragglers.  Isolation
                # makes the duplicate's result identical by construction;
                # the digest check enforces it.
                if self.steal:
                    outstanding = sorted(
                        (cid for cid in by_id if cid not in outcomes),
                        key=lambda cid: attempts[cid],
                    )
                    idle = workers - len(inflight)
                    for cid in outstanding[: max(0, idle)]:
                        if attempts[cid] < 2:  # at most one speculative copy
                            inflight[submit(pool, by_id[cid], speculative=True)] = cid
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    cid = inflight.pop(future)
                    if future.cancelled():
                        continue
                    try:
                        chunk_id, attempt, payload, seconds, deltas = (
                            future.result()
                        )
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as error:
                        if cid in outcomes:
                            continue  # a duplicate already landed this chunk
                        failures[cid] += 1
                        if journal is not None:
                            journal.fail(cid, attempts[cid], repr(error))
                        if failures[cid] > self.retries:
                            raise
                        stats["retried"] += 1
                        inflight[submit(pool, by_id[cid], speculative=False)] = cid
                        continue
                    existing = outcomes.get(chunk_id)
                    if existing is not None:
                        # Late duplicate from stealing: must agree.
                        late_digest = payload_digest(payload)
                        if late_digest != existing.digest:
                            raise CampaignError(
                                f"chunk {chunk_id} re-execution produced a "
                                f"different result ({late_digest[:12]} vs "
                                f"{existing.digest[:12]}); the evaluator is "
                                f"not deterministic under state isolation"
                            )
                        continue
                    outcome = self._record(
                        by_id[chunk_id],
                        attempt,
                        payload,
                        seconds,
                        deltas,
                        in_worker=True,
                        source="stolen" if attempt > 1 else "executed",
                        outcomes=outcomes,
                        stats=stats,
                        journal=journal,
                    )
                    if on_chunk is not None:
                        on_chunk(outcome)
                if broken:
                    # A worker died (kill -9, OOM, segfault): every
                    # in-flight future is poisoned.  Rebuild the pool and
                    # resubmit whatever has not completed.
                    restarts += 1
                    stats["pool_restarts"] = restarts
                    if restarts > self.pool_restarts:
                        raise CampaignError(
                            f"campaign worker pool broke {restarts} times "
                            f"(limit {self.pool_restarts}); giving up"
                        )
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = make_pool()
                    inflight = {}
                    for cid in sorted(cid for cid in by_id if cid not in outcomes):
                        inflight[submit(pool, by_id[cid], speculative=False)] = cid
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _record(
        self,
        chunk: Chunk,
        attempt: int,
        payload: bytes,
        seconds: float,
        deltas,
        *,
        in_worker: bool,
        source: str,
        outcomes: Dict[int, ChunkOutcome],
        stats: Dict[str, object],
        journal: Optional[CampaignJournal],
    ) -> ChunkOutcome:
        stage, batch, solver, vector, cache = deltas
        outcome = ChunkOutcome(
            chunk_id=chunk.chunk_id,
            affinity=chunk.affinity,
            rows=pickle.loads(payload),
            digest=payload_digest(payload),
            seconds=seconds,
            source=source,
            in_worker=in_worker,
            stage_timings=stage,
            batch_timings=batch,
            solver_stats=solver,
            vector_stats=vector,
            cache_deltas=cache,
        )
        outcomes[chunk.chunk_id] = outcome
        stats["executed"] += 1
        if journal is not None:
            journal.complete(
                chunk.chunk_id, payload, seconds=seconds, source=source
            )
        return outcome
