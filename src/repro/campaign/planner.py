"""Affinity-keyed chunk planning and grid fingerprints.

A *chunk* is the scheduling unit of a campaign: a tuple of grid points
that execute consecutively, in grid order, on one worker.  The planner
groups points by an **affinity key** -- a caller-supplied function of
the point whose equal values mark cells that profit from sharing
process-local solver state (an assembled SAN topology, a warm-start
vector, a scenario template).  Grouping is by key equality over the
whole grid (first-occurrence order), not by adjacency, so a grid whose
topology groups are interleaved still lands each group in one chunk.

Chunk identity is deterministic: the same points and affinity function
always produce the same chunk ids, affinities and index sets, and
:func:`grid_fingerprint` digests that plan (plus a canonical JSON form
of every point) into the fingerprint the checkpoint journal uses to
refuse resuming against a different grid.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Chunk", "grid_fingerprint", "plan_chunks"]

#: Version stamped into fingerprints; bump on incompatible plan changes.
PLAN_VERSION = 1


@dataclass(frozen=True)
class Chunk:
    """One scheduling unit: ``points[i]`` came from grid position
    ``indices[i]``; the merge step writes its rows back to exactly
    those positions, so any execution order reproduces the grid order.

    ``seed`` is a deterministic per-chunk ``SeedSequence``-derived
    integer (present when the plan was given a campaign seed) for
    evaluators that want chunk-keyed randomness independent of worker
    identity; the existing clients embed their seeds in the points
    themselves and ignore it.
    """

    chunk_id: int
    affinity: str
    indices: Tuple[int, ...]
    points: Tuple[object, ...]
    seed: Optional[int] = None


def _affinity_label(key: object) -> str:
    """Stable display/journal form of an affinity key."""
    # Imported lazily: repro.experiments.engine imports this package at
    # module scope, so a top-level import here would be circular.
    from repro.experiments.report import json_safe

    safe = json_safe(key)
    if isinstance(safe, str):
        return safe
    return json.dumps(safe, sort_keys=True, separators=(",", ":"))


def plan_chunks(
    points: Sequence[object],
    *,
    affinity: Optional[Callable[[object], object]] = None,
    max_chunk_size: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[Chunk]:
    """Group ``points`` into deterministic affinity chunks.

    Without ``affinity`` the grid is cut into contiguous blocks of at
    most ``max_chunk_size`` points (default: one block).  With
    ``affinity``, points sharing a key form one chunk in
    first-occurrence order, each chunk preserving grid order
    internally; ``max_chunk_size`` then caps the chunk size by
    splitting oversized groups.  Note that splitting an affinity group
    breaks the group's in-chunk state continuity -- downstream results
    stay deterministic (chunks are state-isolated) but may differ in
    low-order float bits from an unsplit plan, so leave
    ``max_chunk_size`` unset when bit-stability against the sequential
    reference matters.
    """
    points = list(points)
    if max_chunk_size is not None and max_chunk_size < 1:
        raise ConfigurationError(
            f"max_chunk_size must be >= 1, got {max_chunk_size}"
        )
    groups: Dict[str, List[int]] = {}
    if affinity is None:
        size = max_chunk_size if max_chunk_size is not None else max(1, len(points))
        for start in range(0, len(points), size):
            block = list(range(start, min(start + size, len(points))))
            groups[f"block-{start // size}"] = block
    else:
        for index, point in enumerate(points):
            label = _affinity_label(affinity(point))
            groups.setdefault(label, []).append(index)
        if max_chunk_size is not None:
            split: Dict[str, List[int]] = {}
            for label, indices in groups.items():
                if len(indices) <= max_chunk_size:
                    split[label] = indices
                else:
                    for part, start in enumerate(
                        range(0, len(indices), max_chunk_size)
                    ):
                        split[f"{label}#{part}"] = indices[
                            start : start + max_chunk_size
                        ]
            groups = split

    chunk_seeds: List[Optional[int]] = [None] * len(groups)
    if seed is not None:
        children = np.random.SeedSequence(seed).spawn(len(groups))
        chunk_seeds = [
            int(child.generate_state(1, dtype=np.uint64)[0])
            for child in children
        ]
    return [
        Chunk(
            chunk_id=chunk_id,
            affinity=label,
            indices=tuple(indices),
            points=tuple(points[i] for i in indices),
            seed=chunk_seeds[chunk_id],
        )
        for chunk_id, (label, indices) in enumerate(groups.items())
    ]


def grid_fingerprint(points: Sequence[object], chunks: Sequence[Chunk]) -> str:
    """SHA-256 digest of the campaign's work definition.

    Covers a canonical JSON form of every grid point (via
    :func:`~repro.experiments.report.json_safe`, so frozen dataclasses
    fingerprint through their deterministic ``repr``) plus the chunk
    plan (affinity labels, index sets, seeds).  The journal refuses to
    resume when the fingerprint of the requested grid differs from the
    recorded one -- resuming a checkpoint against different work would
    silently merge unrelated results.
    """
    from repro.experiments.report import json_safe

    payload = {
        "version": PLAN_VERSION,
        "points": [json_safe(point) for point in points],
        "chunks": [
            {
                "chunk": chunk.chunk_id,
                "affinity": chunk.affinity,
                "indices": list(chunk.indices),
                "seed": chunk.seed,
            }
            for chunk in chunks
        ],
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
