"""Affinity-sharded, checkpointable campaign orchestration.

The experiment workloads -- the 1134-cell spare-policy optimize grid,
seeded scenario corpora, Monte-Carlo fault campaigns -- are grids of
independent points whose *values* are fully determined by the point,
but whose *cost* depends heavily on process-local solver state:
consecutive cells sharing a SAN topology re-rate one assembled quotient
and warm-start each steady-state solve, while scattered cells rebuild
everything from scratch.  The legacy pool submitted one pickled future
per point, destroying exactly that locality.

:mod:`repro.campaign` replaces per-point fan-out with deterministic,
affinity-keyed **chunk** scheduling:

* :func:`~repro.campaign.planner.plan_chunks` groups grid points by an
  affinity key (``DesignPoint.topology_group()`` for the optimize grid,
  the capacity-topology key for corpus cells, the campaign cell for
  fault batches) so every group executes consecutively -- in grid
  order -- on one worker and takes the assemble-cache / re-rate /
  warm-start fast path that previously only ``n_jobs=1`` runs enjoyed;
* :class:`~repro.campaign.orchestrator.CampaignRunner` executes the
  chunks inline or over a process pool with chunk-granular **state
  isolation** (solver caches reset to the campaign's seeded snapshot at
  every chunk boundary), which makes each chunk's result a pure
  function of ``(snapshot, chunk points, in-chunk order)`` -- results
  are byte-identical at any worker count, across worker-loss retries,
  speculative straggler re-execution, and checkpoint/resume;
* :class:`~repro.campaign.journal.CampaignJournal` records a
  chunk-granular JSONL checkpoint journal (planned -> leased ->
  completed with a result digest and the pickled rows) that
  :meth:`CampaignRunner.run` resumes from, skipping completed chunks
  and replaying an interrupted campaign to the identical final
  artifact.

See ``docs/CAMPAIGN.md`` for the user guide and the determinism
contract.
"""

from repro.campaign.journal import CampaignJournal, load_journal
from repro.campaign.orchestrator import (
    CampaignResult,
    CampaignRunner,
    ChunkOutcome,
)
from repro.campaign.planner import Chunk, grid_fingerprint, plan_chunks

__all__ = [
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "Chunk",
    "ChunkOutcome",
    "grid_fingerprint",
    "load_journal",
    "plan_chunks",
]
