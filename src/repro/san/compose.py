"""Replicate-and-lump composition of Markov models.

UltraSAN's *composed models* let a submodel be replicated ``n`` times
with automatic lumping: because replicas are exchangeable, the joint
state space collapses from ``m^n`` states to the multisets of size
``n`` over ``m`` base states (``C(m+n-1, n)``) without changing any
aggregate measure.  This module provides that construction for the
CTMCs produced by the engine -- e.g. a constellation of i.i.d. planes,
or a plane of i.i.d. satellites, analysed exactly rather than by
independence approximations.

The lumped generator follows from exchangeability: from multiset ``M``,
for every base state ``s`` present with multiplicity ``c`` and every
base transition ``s -> s'`` at rate ``r``, there is a lumped transition
to ``M - {s} + {s'}`` at rate ``c * r``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError, StateSpaceExplosionError
from repro.san.ctmc import CTMC

__all__ = ["ReplicatedChain", "replicate_lumped", "lumped_state_count"]

Multiset = Tuple[int, ...]


def lumped_state_count(base_states: int, copies: int) -> int:
    """Number of multisets of size ``copies`` over ``base_states``
    symbols: ``C(m + n - 1, n)``."""
    return math.comb(base_states + copies - 1, copies)


@dataclass
class ReplicatedChain:
    """The lumped chain plus the bookkeeping to read measures off it."""

    ctmc: CTMC
    states: List[Multiset]
    base_states: int
    copies: int

    def count_in_state(self, multiset: Multiset, base_state: int) -> int:
        """How many replicas occupy ``base_state`` in ``multiset``."""
        return multiset.count(base_state)

    def count_distribution(
        self, pi: np.ndarray, base_state: int
    ) -> Dict[int, float]:
        """Steady-state distribution of the number of replicas in
        ``base_state``."""
        result: Dict[int, float] = {}
        for index, multiset in enumerate(self.states):
            count = multiset.count(base_state)
            result[count] = result.get(count, 0.0) + float(pi[index])
        return {count: result[count] for count in sorted(result)}

    def expected_count(self, pi: np.ndarray, base_state: int) -> float:
        """Expected number of replicas in ``base_state``."""
        return sum(
            count * probability
            for count, probability in self.count_distribution(
                pi, base_state
            ).items()
        )

    def probability_at_least(
        self, pi: np.ndarray, base_state: int, threshold: int
    ) -> float:
        """``P(#replicas in base_state >= threshold)``."""
        return sum(
            probability
            for count, probability in self.count_distribution(
                pi, base_state
            ).items()
            if count >= threshold
        )


def replicate_lumped(
    base: CTMC, copies: int, *, max_states: int = 500_000
) -> ReplicatedChain:
    """Replicate ``base`` ``copies`` times with exchangeability lumping.

    The base chain's initial distribution must be concentrated on a
    single state (every replica starts there); use a different
    composition for heterogeneous starts.
    """
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1, got {copies}")
    predicted = lumped_state_count(base.num_states, copies)
    if predicted > max_states:
        raise StateSpaceExplosionError(max_states)
    initial = [
        (probability, state)
        for probability, state in base.initial_distribution
        if probability > 0.0
    ]
    if len(initial) != 1 or not math.isclose(initial[0][0], 1.0, abs_tol=1e-9):
        raise ConfigurationError(
            "replicate_lumped requires a deterministic base initial state"
        )
    initial_state = initial[0][1]

    # Base transitions grouped by source.
    generator = base.generator.tocoo()
    by_source: Dict[int, List[Tuple[int, float]]] = {}
    for source, target, rate in zip(generator.row, generator.col, generator.data):
        if source == target or rate <= 0.0:
            continue
        by_source.setdefault(int(source), []).append((int(target), float(rate)))

    states: List[Multiset] = []
    index: Dict[Multiset, int] = {}

    def intern(multiset: Multiset) -> int:
        if multiset in index:
            return index[multiset]
        index[multiset] = len(states)
        states.append(multiset)
        return index[multiset]

    start: Multiset = tuple([initial_state] * copies)
    frontier = [start]
    intern(start)
    transitions: List[Tuple[int, int, float]] = []
    explored = set()
    while frontier:
        multiset = frontier.pop()
        if multiset in explored:
            continue
        explored.add(multiset)
        source_index = index[multiset]
        for base_state in sorted(set(multiset)):
            multiplicity = multiset.count(base_state)
            for target_state, rate in by_source.get(base_state, ()):
                moved = list(multiset)
                moved.remove(base_state)
                moved.append(target_state)
                successor = tuple(sorted(moved))
                target_index = intern(successor)
                transitions.append(
                    (source_index, target_index, multiplicity * rate)
                )
                if successor not in explored:
                    frontier.append(successor)
    lumped = CTMC(
        len(states),
        transitions,
        initial_distribution=[(1.0, index[start])],
    )
    return ReplicatedChain(
        ctmc=lumped,
        states=states,
        base_states=base.num_states,
        copies=copies,
    )
