"""Continuous-time Markov chain solvers.

Provides steady-state and transient solutions for the CTMCs produced
from SAN reachability graphs (directly for all-exponential models, or
after phase-type unfolding for models with deterministic timers).

Steady state solves the global balance equations ``pi Q = 0``,
``sum(pi) = 1``.  Two families of solvers are available:

* the **direct** path replaces one balance equation with the
  normalisation constraint and factorises (dense below
  ``_DENSE_LIMIT`` states, sparse LU above); a residual check rejects
  chains for which that system is (numerically) singular, e.g. chains
  with several recurrent classes;
* the **iterative** path (:meth:`CTMC.steady_state_solve` with a
  :class:`SteadyStateWarmStart`) anchors the system at a
  high-probability state, deletes that row/column, and runs
  LU-preconditioned GMRES warm-started from a previous solution --
  built for sweeps over many nearby chains, where it converges in a
  handful of iterations.  Any convergence or residual failure falls
  back to the direct path automatically (``method="auto"``).

Transient solutions use uniformisation (Jensen's method) with an
adaptive Poisson truncation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.errors import ModelError, SolverError
from repro.san.reachability import StateSpace

__all__ = [
    "CTMC",
    "SteadyStateSolution",
    "SteadyStateWarmStart",
    "from_state_space",
]

#: Above this size the direct solver switches from dense to sparse
#: linear algebra.
_DENSE_LIMIT = 1500

#: Below this size a direct solve is cheaper than the GMRES machinery;
#: warm starts are neither built nor used.
_ITERATIVE_MIN_STATES = 64

#: GMRES inner (Krylov) dimension per restart cycle, and the number of
#: restart cycles before the iterative path gives up and falls back.
_GMRES_RESTART = 60
_GMRES_MAX_RESTARTS = 8

#: Relative tolerance for the GMRES residual on the anchored system --
#: tight, so re-rated sweeps agree with the direct path to ~1e-12.
_GMRES_RTOL = 1e-12

#: When a warm-started solve needs more inner iterations than this, the
#: preconditioner has drifted too far from the current operating point;
#: refactorise it at the new solution instead of carrying it forward.
#: An ILU refactorisation costs roughly 40-60 iterations' worth of
#: triangular solves at typical unfolded sizes, so the threshold sits
#: where a refresh pays for itself within a few sweep points.
_REFRESH_PRECONDITIONER_AFTER = 25

#: Incomplete-LU parameters for the preconditioner.  An ILU keeps the
#: triangular solves ~4x cheaper than an exact LU at this sparsity and
#: is cheap enough to refactorise whenever the sweep drifts;
#: preconditioner quality only affects the iteration count, never the
#: answer (the residual checks gate correctness).
_ILU_DROP_TOL = 1e-6
_ILU_FILL_FACTOR = 10.0

#: A warm start whose anchor carries less stationary mass than this is
#: useless (the anchored system is scaled by ``1 / pi[anchor]``).
_MIN_ANCHOR_MASS = 1e-12

#: Per-chain cap on memoized reward vectors (see
#: :meth:`CTMC.expected_reward`).
_REWARD_CACHE_LIMIT = 64


class SteadyStateWarmStart:
    """Opaque warm-start state carried between steady-state solves.

    Produced by :meth:`CTMC.steady_state_solve` with
    ``prepare_warm_start=True`` and fed back on the next (nearby) chain.
    Holds the previous solution ``pi``, the anchor state (a
    high-probability state whose balance row/column is deleted from the
    solved system), and an incomplete-LU factorisation of a previous
    anchored matrix used as the GMRES preconditioner.
    """

    __slots__ = ("pi", "anchor", "num_states", "_preconditioner")

    def __init__(
        self,
        pi: np.ndarray,
        anchor: int,
        num_states: int,
        preconditioner: Optional[sparse_linalg.LinearOperator],
    ):
        self.pi = pi
        self.anchor = anchor
        self.num_states = num_states
        self._preconditioner = preconditioner


@dataclass
class SteadyStateSolution:
    """A steady-state solve plus how it was obtained.

    ``method`` is one of ``"trivial"``, ``"dense-direct"``,
    ``"sparse-direct"`` or ``"gmres"``; ``iterations`` counts GMRES
    inner iterations (0 for direct solves); ``fallback`` records why an
    attempted iterative solve was abandoned (``None`` when it was not);
    ``warm_start`` is the state to feed into the next solve when
    ``prepare_warm_start`` was requested.
    """

    pi: np.ndarray
    method: str
    iterations: int = 0
    residual: float = 0.0
    warm_started: bool = False
    fallback: Optional[str] = None
    warm_start: Optional[SteadyStateWarmStart] = None


def _gmres(matrix, rhs, **kwargs):
    """scipy's gmres across the ``tol`` -> ``rtol`` rename."""
    try:
        return sparse_linalg.gmres(matrix, rhs, **kwargs)
    except TypeError:  # pragma: no cover - older scipy
        kwargs["tol"] = kwargs.pop("rtol")
        return sparse_linalg.gmres(matrix, rhs, **kwargs)


class CTMC:
    """A finite CTMC given by transitions ``(source, target, rate)``."""

    def __init__(
        self,
        num_states: int,
        transitions: Sequence[Tuple[int, int, float]],
        *,
        initial_distribution: Optional[Sequence[Tuple[float, int]]] = None,
    ):
        if num_states < 1:
            raise ModelError(f"CTMC needs at least one state, got {num_states}")
        self.num_states = num_states
        rows, cols, rates = [], [], []
        for source, target, rate in transitions:
            if rate < 0:
                raise ModelError(
                    f"negative rate {rate} on transition {source}->{target}"
                )
            if not (0 <= source < num_states and 0 <= target < num_states):
                raise ModelError(
                    f"transition {source}->{target} outside state range"
                )
            if rate == 0.0 or source == target:
                continue
            rows.append(source)
            cols.append(target)
            rates.append(float(rate))
        rate_matrix = sparse.coo_matrix(
            (rates, (rows, cols)), shape=(num_states, num_states)
        ).tocsr()
        rate_matrix.sum_duplicates()
        self._rate_matrix = rate_matrix
        self._exit_rates = np.asarray(rate_matrix.sum(axis=1)).ravel()
        if initial_distribution is None:
            initial_distribution = [(1.0, 0)]
        self.initial_distribution = list(initial_distribution)
        self._reward_cache: Dict[Callable[[int], float], np.ndarray] = {}

    @classmethod
    def from_arrays(
        cls,
        num_states: int,
        source: np.ndarray,
        target: np.ndarray,
        rates: np.ndarray,
        *,
        initial_distribution: Optional[Sequence[Tuple[float, int]]] = None,
    ) -> "CTMC":
        """Build a CTMC from parallel transition arrays without the
        per-transition Python loop (the re-rate hot path of
        :meth:`repro.san.assembled.AssembledChain.rerate`).

        Validation mirrors ``__init__`` (negative rates and
        out-of-range endpoints raise :class:`ModelError`; zero-rate and
        self-loop entries are dropped) but runs vectorised.
        """
        if num_states < 1:
            raise ModelError(f"CTMC needs at least one state, got {num_states}")
        source = np.asarray(source, dtype=np.int64).ravel()
        target = np.asarray(target, dtype=np.int64).ravel()
        rates = np.asarray(rates, dtype=float).ravel()
        if not (source.shape == target.shape == rates.shape):
            raise ModelError(
                f"transition arrays disagree in length: {source.shape}, "
                f"{target.shape}, {rates.shape}"
            )
        if rates.size:
            worst = int(np.argmin(rates))
            if rates[worst] < 0:
                raise ModelError(
                    f"negative rate {rates[worst]} on transition "
                    f"{source[worst]}->{target[worst]}"
                )
            if (
                source.min() < 0
                or target.min() < 0
                or source.max() >= num_states
                or target.max() >= num_states
            ):
                raise ModelError("transition endpoints outside state range")
        keep = (rates != 0.0) & (source != target)
        rate_matrix = sparse.coo_matrix(
            (rates[keep], (source[keep], target[keep])),
            shape=(num_states, num_states),
        ).tocsr()
        rate_matrix.sum_duplicates()
        chain = cls.__new__(cls)
        chain.num_states = num_states
        chain._rate_matrix = rate_matrix
        chain._exit_rates = np.asarray(rate_matrix.sum(axis=1)).ravel()
        if initial_distribution is None:
            initial_distribution = [(1.0, 0)]
        chain.initial_distribution = list(initial_distribution)
        chain._reward_cache = {}
        return chain

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    @property
    def generator(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q`` (sparse CSR)."""
        diagonal = sparse.diags(-self._exit_rates)
        return (self._rate_matrix + diagonal).tocsr()

    @property
    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate per state."""
        return self._exit_rates.copy()

    def initial_vector(self) -> np.ndarray:
        """The initial probability vector as a dense array."""
        p0 = np.zeros(self.num_states)
        for prob, state in self.initial_distribution:
            p0[state] += prob
        total = p0.sum()
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ModelError(f"initial distribution sums to {total}")
        return p0

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------
    def steady_state(self, *, residual_tolerance: float = 1e-8) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0``, ``sum = 1``.

        Raises :class:`SolverError` if the balance system is singular or
        the solution fails the residual / non-negativity checks (e.g.
        the chain has several recurrent classes).
        """
        n = self.num_states
        if n == 1:
            return np.array([1.0])
        pi, _residual, _method = self._direct_solve(residual_tolerance)
        return pi

    def steady_state_solve(
        self,
        *,
        method: str = "auto",
        warm_start: Optional[SteadyStateWarmStart] = None,
        residual_tolerance: float = 1e-8,
        rtol: float = _GMRES_RTOL,
        prepare_warm_start: bool = False,
    ) -> SteadyStateSolution:
        """Steady state with solver selection, warm starts and stats.

        ``method``:

        * ``"auto"`` -- iterative when a compatible warm start is
          available, with automatic fallback to direct on any failure
          (the fallback reason is recorded on the solution);
        * ``"direct"`` -- always the factorisation path of
          :meth:`steady_state`;
        * ``"iterative"`` -- require the warm-started GMRES path; raise
          :class:`SolverError` instead of falling back.

        With ``prepare_warm_start`` the returned solution carries a
        :class:`SteadyStateWarmStart` for the next solve of a nearby
        chain (same state count).
        """
        if method not in ("auto", "direct", "iterative"):
            raise ModelError(
                f"unknown steady-state method {method!r}; expected "
                "'auto', 'direct' or 'iterative'"
            )
        n = self.num_states
        if n == 1:
            return SteadyStateSolution(pi=np.array([1.0]), method="trivial")

        fallback: Optional[str] = None
        usable = (
            warm_start is not None
            and warm_start.num_states == n
            and 0 <= warm_start.anchor < n
            and n >= _ITERATIVE_MIN_STATES
        )
        if method == "iterative" and not usable:
            raise SolverError(
                "iterative steady state needs a compatible warm start "
                f"(num_states={n}, warm_start="
                f"{None if warm_start is None else warm_start.num_states})"
            )
        if usable and method in ("auto", "iterative"):
            try:
                return self._iterative_solve(
                    warm_start,
                    residual_tolerance=residual_tolerance,
                    rtol=rtol,
                    prepare_warm_start=prepare_warm_start,
                )
            except SolverError as exc:
                if method == "iterative":
                    raise
                fallback = str(exc)
        elif warm_start is not None and not usable and method == "auto":
            fallback = (
                f"warm start incompatible (chain has {n} states, warm start "
                f"has {warm_start.num_states})"
            )
        elif (
            method == "auto"
            and warm_start is None
            and prepare_warm_start
            and n >= _ITERATIVE_MIN_STATES
        ):
            # Cold start of a sweep: the caller wants warm-start state,
            # so an ILU is being built anyway -- factor it at this very
            # matrix and solve with it (GMRES then converges in a
            # handful of iterations), which beats the direct
            # factorisation at typical unfolded sizes.
            try:
                return self._cold_iterative_solve(
                    residual_tolerance=residual_tolerance, rtol=rtol
                )
            except SolverError as exc:
                fallback = str(exc)

        pi, residual, how = self._direct_solve(residual_tolerance)
        prepared = None
        if prepare_warm_start:
            prepared = self._prepare_warm_start(pi)
        return SteadyStateSolution(
            pi=pi,
            method=how,
            residual=residual,
            fallback=fallback,
            warm_start=prepared,
        )

    def _direct_solve(
        self, residual_tolerance: float
    ) -> Tuple[np.ndarray, float, str]:
        """The factorisation path: replace the last balance equation
        with the normalisation row and solve."""
        n = self.num_states
        q_transpose = self.generator.transpose().tocsr()
        if n <= _DENSE_LIMIT:
            matrix = q_transpose.toarray()
            matrix[-1, :] = 1.0
            rhs = np.zeros(n)
            rhs[-1] = 1.0
            try:
                pi = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as exc:
                raise SolverError(f"steady-state system is singular: {exc}") from exc
            how = "dense-direct"
        else:
            # Stacking rows builds the same matrix as assigning into a
            # LIL copy, without the costly per-row conversion.
            ones_row = sparse.csr_matrix(np.ones((1, n)))
            matrix = sparse.vstack([q_transpose[:-1, :], ones_row]).tocsc()
            rhs = np.zeros(n)
            rhs[-1] = 1.0
            try:
                pi = sparse_linalg.spsolve(matrix, rhs)
            except Exception as exc:  # scipy raises several types here
                raise SolverError(f"sparse steady-state solve failed: {exc}") from exc
            how = "sparse-direct"
        residual = self._check_solution(pi, q_transpose, residual_tolerance)
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum(), residual, how

    def _check_solution(
        self,
        pi: np.ndarray,
        q_transpose: sparse.csr_matrix,
        residual_tolerance: float,
    ) -> float:
        """Shared finite / residual / negativity checks; returns the
        residual."""
        if np.any(~np.isfinite(pi)):
            raise SolverError("steady-state solution contains non-finite entries")
        residual = float(np.abs(q_transpose @ pi).max())
        scale = max(1.0, float(self._exit_rates.max(initial=1.0)))
        if residual > residual_tolerance * scale:
            raise SolverError(
                f"steady-state residual {residual:.3e} exceeds tolerance; "
                "the chain may not have a unique stationary distribution"
            )
        if pi.min() < -1e-8:
            raise SolverError(
                f"steady-state solution has negative mass ({pi.min():.3e}); "
                "the chain may be reducible"
            )
        return residual

    def _anchored_system(
        self, anchor: int
    ) -> Tuple[sparse.csr_matrix, sparse.csr_matrix, np.ndarray, np.ndarray]:
        """Delete the anchor row/column of ``Q^T``; with ``pi[anchor]``
        pinned to 1, the stationary equations become the nonsingular
        system ``A x = -c`` over the remaining states."""
        n = self.num_states
        q_transpose = self.generator.transpose().tocsr()
        keep = np.flatnonzero(np.arange(n) != anchor)
        rows = q_transpose[keep]
        reduced = rows[:, keep]
        column = rows[:, anchor].toarray().ravel()
        return q_transpose, reduced, column, keep

    def _prepare_warm_start(
        self, pi: np.ndarray
    ) -> Optional[SteadyStateWarmStart]:
        """Build warm-start state anchored at ``argmax(pi)`` with an
        incomplete-LU factorisation of the anchored matrix as
        preconditioner.
        Returns ``None`` when the chain is too small or the
        factorisation fails -- a missing warm start only costs speed."""
        n = self.num_states
        if n < _ITERATIVE_MIN_STATES:
            return None
        anchor = int(np.argmax(pi))
        if pi[anchor] < _MIN_ANCHOR_MASS:
            return None
        try:
            _, reduced, _, _ = self._anchored_system(anchor)
            lu = sparse_linalg.spilu(
                reduced.tocsc(),
                drop_tol=_ILU_DROP_TOL,
                fill_factor=_ILU_FILL_FACTOR,
            )
            preconditioner = sparse_linalg.LinearOperator(
                shape=(n - 1, n - 1), matvec=lu.solve
            )
        except Exception:  # pragma: no cover - singular/failed factorisation
            return None
        return SteadyStateWarmStart(
            pi=np.asarray(pi, dtype=float).copy(),
            anchor=anchor,
            num_states=n,
            preconditioner=preconditioner,
        )

    def _anchored_gmres(
        self,
        anchor: int,
        x0: Optional[np.ndarray],
        preconditioner: Optional[sparse_linalg.LinearOperator],
        *,
        residual_tolerance: float,
        rtol: float,
    ) -> Tuple[np.ndarray, float, int]:
        """Solve the anchored system with preconditioned GMRES and run
        the full-chain residual checks; returns ``(pi, residual,
        iterations)`` or raises :class:`SolverError`."""
        n = self.num_states
        q_transpose, reduced, column, keep = self._anchored_system(anchor)

        iterations = 0

        def count(_residual_norm: float) -> None:
            nonlocal iterations
            iterations += 1

        x, info = _gmres(
            reduced,
            -column,
            x0=x0,
            M=preconditioner,
            rtol=rtol,
            atol=0.0,
            restart=_GMRES_RESTART,
            maxiter=_GMRES_MAX_RESTARTS,
            callback=count,
            callback_type="pr_norm",
        )
        if info != 0:
            raise SolverError(
                f"GMRES did not converge (info={info}) after "
                f"{iterations} iterations"
            )
        pi = np.empty(n)
        pi[keep] = x
        pi[anchor] = 1.0
        total = float(pi.sum())
        if not np.isfinite(total) or total <= 0.0:
            raise SolverError(
                f"iterative steady state produced unnormalisable mass {total!r}"
            )
        pi /= total
        residual = self._check_solution(pi, q_transpose, residual_tolerance)
        pi = np.clip(pi, 0.0, None)
        pi /= pi.sum()
        return pi, residual, iterations

    def _iterative_solve(
        self,
        warm_start: SteadyStateWarmStart,
        *,
        residual_tolerance: float,
        rtol: float,
        prepare_warm_start: bool,
    ) -> SteadyStateSolution:
        n = self.num_states
        anchor = warm_start.anchor
        previous = np.asarray(warm_start.pi, dtype=float)
        if previous.shape != (n,):
            raise SolverError(
                f"warm-start pi has shape {previous.shape}, expected ({n},)"
            )
        mass = float(previous[anchor])
        if mass < _MIN_ANCHOR_MASS:
            raise SolverError(
                f"warm-start anchor {anchor} carries negligible mass ({mass:.3e})"
            )
        keep = np.flatnonzero(np.arange(n) != anchor)
        x0 = previous[keep] / mass
        pi, residual, iterations = self._anchored_gmres(
            anchor,
            x0,
            warm_start._preconditioner,
            residual_tolerance=residual_tolerance,
            rtol=rtol,
        )
        prepared = None
        if prepare_warm_start:
            if iterations > _REFRESH_PRECONDITIONER_AFTER:
                # The carried ILU has drifted; refactorise at this point.
                prepared = self._prepare_warm_start(pi)
            if prepared is None:
                prepared = SteadyStateWarmStart(
                    pi=pi.copy(),
                    anchor=anchor,
                    num_states=n,
                    preconditioner=warm_start._preconditioner,
                )
        return SteadyStateSolution(
            pi=pi,
            method="gmres",
            iterations=iterations,
            residual=residual,
            warm_started=True,
            warm_start=prepared,
        )

    def _cold_iterative_solve(
        self, *, residual_tolerance: float, rtol: float
    ) -> SteadyStateSolution:
        """First solve of a sweep: anchor at the heaviest initial
        state, factor an ILU of the anchored matrix and solve with it.
        The anchor is only a heuristic -- the residual checks reject a
        bad pick and the caller falls back to the direct path."""
        n = self.num_states
        weights = np.zeros(n)
        for probability, state in self.initial_distribution:
            weights[state] += probability
        anchor = int(np.argmax(weights))
        _, reduced, _, _ = self._anchored_system(anchor)
        try:
            ilu = sparse_linalg.spilu(
                reduced.tocsc(),
                drop_tol=_ILU_DROP_TOL,
                fill_factor=_ILU_FILL_FACTOR,
            )
            preconditioner = sparse_linalg.LinearOperator(
                shape=(n - 1, n - 1), matvec=ilu.solve
            )
        except Exception as exc:
            raise SolverError(f"ILU factorisation failed: {exc}") from exc
        pi, residual, iterations = self._anchored_gmres(
            anchor,
            None,
            preconditioner,
            residual_tolerance=residual_tolerance,
            rtol=rtol,
        )
        prepared = SteadyStateWarmStart(
            pi=pi.copy(),
            anchor=anchor,
            num_states=n,
            preconditioner=preconditioner,
        )
        return SteadyStateSolution(
            pi=pi,
            method="gmres",
            iterations=iterations,
            residual=residual,
            warm_started=False,
            warm_start=prepared,
        )

    # ------------------------------------------------------------------
    # Transient analysis (uniformisation)
    # ------------------------------------------------------------------
    def transient(
        self,
        time: float,
        *,
        initial: Optional[np.ndarray] = None,
        tolerance: float = 1e-10,
    ) -> np.ndarray:
        """State distribution at ``time`` by uniformisation.

        An explicit ``initial`` vector is validated up front (length,
        finiteness, non-negativity, normalisation) -- a malformed one
        raises :class:`ModelError` instead of failing deep inside the
        matrix products or silently broadcasting.
        """
        if time < 0:
            raise ModelError(f"time must be >= 0, got {time}")
        if initial is None:
            p = self.initial_vector()
        else:
            p = np.asarray(initial, dtype=float)
            if p.shape != (self.num_states,):
                raise ModelError(
                    f"initial distribution has shape {p.shape}, expected "
                    f"({self.num_states},)"
                )
            if np.any(~np.isfinite(p)):
                raise ModelError(
                    "initial distribution contains non-finite entries"
                )
            if p.min() < 0.0:
                raise ModelError(
                    f"initial distribution has negative mass "
                    f"({float(p.min()):.3e})"
                )
            total = float(p.sum())
            if not math.isclose(total, 1.0, abs_tol=1e-9):
                raise ModelError(f"initial distribution sums to {total}")
        if time == 0.0:
            return p.copy()
        lam = float(self._exit_rates.max(initial=0.0))
        if lam == 0.0:
            return p.copy()
        lam *= 1.02  # keep the DTMC strictly substochastic off the diagonal
        dtmc = self._rate_matrix / lam + sparse.diags(1.0 - self._exit_rates / lam)
        dtmc = dtmc.tocsr()

        def step(vector: np.ndarray, dt: float) -> np.ndarray:
            # Poisson-weighted sum, truncated when the tail < tolerance.
            poisson_mean = lam * dt
            term = vector
            weight = math.exp(-poisson_mean)
            result = weight * term
            accumulated = weight
            k = 0
            max_terms = int(poisson_mean + 20.0 * math.sqrt(poisson_mean) + 200)
            while 1.0 - accumulated > tolerance and k < max_terms:
                k += 1
                term = term @ dtmc
                weight *= poisson_mean / k
                result += weight * term
                accumulated += weight
            return np.asarray(result).ravel()

        # Split long horizons so exp(-lam*dt) never underflows (the
        # classic uniformisation instability for lam*t >> 1).
        max_mean_per_step = 400.0
        remaining = time
        vector = p.copy()
        while remaining > 0.0:
            dt = min(remaining, max_mean_per_step / lam)
            vector = step(vector, dt)
            remaining -= dt
        return vector

    # ------------------------------------------------------------------
    # Rewards
    # ------------------------------------------------------------------
    def reward_vector(
        self, reward: Union[Callable[[int], float], np.ndarray]
    ) -> np.ndarray:
        """The state-indexed reward as a dense array.

        A precomputed array is validated and passed through; a callable
        is materialised once and memoized per chain (bounded cache), so
        repeated reward evaluations are one dot product.
        """
        if not callable(reward):
            vector = np.asarray(reward, dtype=float)
            if vector.shape != (self.num_states,):
                raise ModelError(
                    f"reward vector has shape {vector.shape}, expected "
                    f"({self.num_states},)"
                )
            return vector
        try:
            cached = self._reward_cache.get(reward)
        except TypeError:  # unhashable callable: compute without caching
            cached = None
            cacheable = False
        else:
            cacheable = True
        if cached is not None:
            return cached
        vector = np.fromiter(
            (reward(s) for s in range(self.num_states)),
            dtype=float,
            count=self.num_states,
        )
        if cacheable:
            if len(self._reward_cache) >= _REWARD_CACHE_LIMIT:
                self._reward_cache.pop(next(iter(self._reward_cache)))
            self._reward_cache[reward] = vector
        return vector

    def expected_reward(
        self, pi: np.ndarray, reward: Union[Callable[[int], float], np.ndarray]
    ) -> float:
        """``sum_s pi[s] * reward(s)`` for a state-indexed reward.

        ``reward`` may be a callable (materialised once per chain and
        cached -- a Python accumulation loop is ~30x slower on the 10k+
        state chains produced by phase-type unfolding) or a precomputed
        array of length ``num_states``.
        """
        rewards = self.reward_vector(reward)
        return float(np.asarray(pi, dtype=float) @ rewards)


def from_state_space(
    space: StateSpace, *, lump_by_marking: bool = False
) -> CTMC:
    """Build a CTMC from an all-exponential :class:`StateSpace`.

    Raises :class:`ModelError` if the state space contains general
    (non-exponential) transitions; unfold those first with
    :func:`repro.san.phase_type.unfold`.
    """
    if not space.is_markovian:
        names = sorted({t.activity for t in space.general})
        raise ModelError(
            "state space contains non-exponential activities "
            f"{names}; apply phase-type unfolding first"
        )
    transitions = [(t.source, t.target, t.rate) for t in space.markovian]
    return CTMC(
        len(space),
        transitions,
        initial_distribution=[(p, s) for p, s in space.initial_distribution],
    )


def marking_probabilities(
    space: StateSpace, pi: np.ndarray
) -> Dict[Tuple[int, ...], float]:
    """Aggregate a stationary vector over the space's markings.

    Markings are interned (unique per state), so this is a relabelling;
    the single ``tolist`` conversion avoids a per-state ``float()``
    call on 10k+ state vectors.
    """
    result: Dict[Tuple[int, ...], float] = {}
    values = np.asarray(pi, dtype=float).tolist()
    for marking, probability in zip(space.markings, values):
        result[marking] = result.get(marking, 0.0) + probability
    return result
