"""Continuous-time Markov chain solvers.

Provides steady-state and transient solutions for the CTMCs produced
from SAN reachability graphs (directly for all-exponential models, or
after phase-type unfolding for models with deterministic timers).

Steady state solves the global balance equations ``pi Q = 0``,
``sum(pi) = 1`` by replacing one balance equation with the
normalisation constraint; a residual check rejects chains for which
that system is (numerically) singular, e.g. chains with several
recurrent classes.  Transient solutions use uniformisation
(Jensen's method) with an adaptive Poisson truncation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.errors import ModelError, SolverError
from repro.san.reachability import StateSpace

__all__ = ["CTMC", "from_state_space"]

#: Above this size the solver switches from dense to sparse linear algebra.
_DENSE_LIMIT = 1500


class CTMC:
    """A finite CTMC given by transitions ``(source, target, rate)``."""

    def __init__(
        self,
        num_states: int,
        transitions: Sequence[Tuple[int, int, float]],
        *,
        initial_distribution: Optional[Sequence[Tuple[float, int]]] = None,
    ):
        if num_states < 1:
            raise ModelError(f"CTMC needs at least one state, got {num_states}")
        self.num_states = num_states
        rows, cols, rates = [], [], []
        for source, target, rate in transitions:
            if rate < 0:
                raise ModelError(
                    f"negative rate {rate} on transition {source}->{target}"
                )
            if not (0 <= source < num_states and 0 <= target < num_states):
                raise ModelError(
                    f"transition {source}->{target} outside state range"
                )
            if rate == 0.0 or source == target:
                continue
            rows.append(source)
            cols.append(target)
            rates.append(float(rate))
        rate_matrix = sparse.coo_matrix(
            (rates, (rows, cols)), shape=(num_states, num_states)
        ).tocsr()
        rate_matrix.sum_duplicates()
        exit_rates = np.asarray(rate_matrix.sum(axis=1)).ravel()
        self._rate_matrix = rate_matrix
        self._exit_rates = exit_rates
        if initial_distribution is None:
            initial_distribution = [(1.0, 0)]
        self.initial_distribution = list(initial_distribution)

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    @property
    def generator(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q`` (sparse CSR)."""
        diagonal = sparse.diags(-self._exit_rates)
        return (self._rate_matrix + diagonal).tocsr()

    @property
    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate per state."""
        return self._exit_rates.copy()

    def initial_vector(self) -> np.ndarray:
        """The initial probability vector as a dense array."""
        p0 = np.zeros(self.num_states)
        for prob, state in self.initial_distribution:
            p0[state] += prob
        total = p0.sum()
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ModelError(f"initial distribution sums to {total}")
        return p0

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------
    def steady_state(self, *, residual_tolerance: float = 1e-8) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0``, ``sum = 1``.

        Raises :class:`SolverError` if the balance system is singular or
        the solution fails the residual / non-negativity checks (e.g.
        the chain has several recurrent classes).
        """
        n = self.num_states
        if n == 1:
            return np.array([1.0])
        q_transpose = self.generator.transpose().tocsr()
        if n <= _DENSE_LIMIT:
            matrix = q_transpose.toarray()
            matrix[-1, :] = 1.0
            rhs = np.zeros(n)
            rhs[-1] = 1.0
            try:
                pi = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as exc:
                raise SolverError(f"steady-state system is singular: {exc}") from exc
        else:
            matrix = q_transpose.tolil()
            matrix[-1, :] = np.ones(n)
            rhs = np.zeros(n)
            rhs[-1] = 1.0
            try:
                pi = sparse_linalg.spsolve(matrix.tocsc(), rhs)
            except Exception as exc:  # scipy raises several types here
                raise SolverError(f"sparse steady-state solve failed: {exc}") from exc
        if np.any(~np.isfinite(pi)):
            raise SolverError("steady-state solution contains non-finite entries")
        residual = float(np.abs(q_transpose @ pi).max())
        scale = max(1.0, float(self._exit_rates.max(initial=1.0)))
        if residual > residual_tolerance * scale:
            raise SolverError(
                f"steady-state residual {residual:.3e} exceeds tolerance; "
                "the chain may not have a unique stationary distribution"
            )
        if pi.min() < -1e-8:
            raise SolverError(
                f"steady-state solution has negative mass ({pi.min():.3e}); "
                "the chain may be reducible"
            )
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    # ------------------------------------------------------------------
    # Transient analysis (uniformisation)
    # ------------------------------------------------------------------
    def transient(
        self,
        time: float,
        *,
        initial: Optional[np.ndarray] = None,
        tolerance: float = 1e-10,
    ) -> np.ndarray:
        """State distribution at ``time`` by uniformisation."""
        if time < 0:
            raise ModelError(f"time must be >= 0, got {time}")
        p = self.initial_vector() if initial is None else np.asarray(initial, float)
        if time == 0.0:
            return p.copy()
        lam = float(self._exit_rates.max(initial=0.0))
        if lam == 0.0:
            return p.copy()
        lam *= 1.02  # keep the DTMC strictly substochastic off the diagonal
        dtmc = self._rate_matrix / lam + sparse.diags(1.0 - self._exit_rates / lam)
        dtmc = dtmc.tocsr()

        def step(vector: np.ndarray, dt: float) -> np.ndarray:
            # Poisson-weighted sum, truncated when the tail < tolerance.
            poisson_mean = lam * dt
            term = vector
            weight = math.exp(-poisson_mean)
            result = weight * term
            accumulated = weight
            k = 0
            max_terms = int(poisson_mean + 20.0 * math.sqrt(poisson_mean) + 200)
            while 1.0 - accumulated > tolerance and k < max_terms:
                k += 1
                term = term @ dtmc
                weight *= poisson_mean / k
                result += weight * term
                accumulated += weight
            return np.asarray(result).ravel()

        # Split long horizons so exp(-lam*dt) never underflows (the
        # classic uniformisation instability for lam*t >> 1).
        max_mean_per_step = 400.0
        remaining = time
        vector = p.copy()
        while remaining > 0.0:
            dt = min(remaining, max_mean_per_step / lam)
            vector = step(vector, dt)
            remaining -= dt
        return vector

    def expected_reward(
        self, pi: np.ndarray, reward: Callable[[int], float]
    ) -> float:
        """``sum_s pi[s] * reward(s)`` for a state-indexed reward.

        The reward vector is materialised once and dotted with ``pi``
        (a Python-level accumulation loop is ~30x slower on the 10k+
        state chains produced by phase-type unfolding).
        """
        rewards = np.fromiter(
            (reward(s) for s in range(self.num_states)),
            dtype=float,
            count=self.num_states,
        )
        return float(np.asarray(pi, dtype=float) @ rewards)


def from_state_space(
    space: StateSpace, *, lump_by_marking: bool = False
) -> CTMC:
    """Build a CTMC from an all-exponential :class:`StateSpace`.

    Raises :class:`ModelError` if the state space contains general
    (non-exponential) transitions; unfold those first with
    :func:`repro.san.phase_type.unfold`.
    """
    if not space.is_markovian:
        names = sorted({t.activity for t in space.general})
        raise ModelError(
            "state space contains non-exponential activities "
            f"{names}; apply phase-type unfolding first"
        )
    transitions = [(t.source, t.target, t.rate) for t in space.markovian]
    return CTMC(
        len(space),
        transitions,
        initial_distribution=[(p, s) for p, s in space.initial_distribution],
    )


def marking_probabilities(
    space: StateSpace, pi: np.ndarray
) -> Dict[Tuple[int, ...], float]:
    """Aggregate a stationary vector over the space's markings."""
    result: Dict[Tuple[int, ...], float] = {}
    for state, probability in enumerate(pi):
        marking = space.markings[state]
        result[marking] = result.get(marking, 0.0) + float(probability)
    return result
