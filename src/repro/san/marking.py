"""Markings of a stochastic activity network.

A *marking* assigns a non-negative token count to every place.  The
engine stores markings as immutable tuples (hashable, usable as state
identifiers), while gate predicates and functions receive a
:class:`MarkingView` -- a small mutable mapping keyed by place name --
so model code reads naturally::

    def predicate(m):
        return m["active"] <= eta and m["pending"] == 0

    def function(m):
        m["active"] = 14
        m["spares"] = 2
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import ModelError

__all__ = ["PlaceIndex", "Marking", "MarkingView"]


class PlaceIndex:
    """Bidirectional mapping between place names and tuple positions."""

    def __init__(self, names: Iterable[str]):
        self._names: Tuple[str, ...] = tuple(names)
        if len(set(self._names)) != len(self._names):
            raise ModelError(f"duplicate place names: {self._names}")
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self._names)}

    @property
    def names(self) -> Tuple[str, ...]:
        """Place names in tuple order."""
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def position(self, name: str) -> int:
        """Tuple position of the place called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise ModelError(f"unknown place {name!r}; places are {self._names}")

    def __contains__(self, name: str) -> bool:
        return name in self._index


Marking = Tuple[int, ...]
"""An immutable marking: token counts in :class:`PlaceIndex` order."""


class MarkingView:
    """Mutable, name-keyed view of a marking used inside gate code."""

    __slots__ = ("_places", "_tokens")

    def __init__(self, places: PlaceIndex, marking: Sequence[int]):
        self._places = places
        self._tokens = list(marking)

    def __getitem__(self, place: str) -> int:
        return self._tokens[self._places.position(place)]

    def __setitem__(self, place: str, tokens: int) -> None:
        if tokens != int(tokens) or tokens < 0:
            raise ModelError(
                f"place {place!r} assigned invalid token count {tokens!r}"
            )
        self._tokens[self._places.position(place)] = int(tokens)

    def __contains__(self, place: str) -> bool:
        return place in self._places

    def add(self, place: str, tokens: int = 1) -> None:
        """Add ``tokens`` to ``place`` (may be negative, but the result
        must stay non-negative)."""
        self[place] = self[place] + tokens

    def remove(self, place: str, tokens: int = 1) -> None:
        """Remove ``tokens`` from ``place``."""
        self.add(place, -tokens)

    def freeze(self) -> Marking:
        """Immutable snapshot of the current token counts."""
        return tuple(self._tokens)

    def as_dict(self) -> Dict[str, int]:
        """Name-keyed copy (for debugging and reports)."""
        return {name: self._tokens[i] for i, name in enumerate(self._places.names)}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"MarkingView({inner})"
