"""Discrete-event simulation of SAN models.

The simulator executes a SAN directly -- including deterministic and
other non-exponential activities, which it samples exactly -- and
estimates steady-state rewards by time averaging with batch means.
It serves two purposes:

* cross-checking the phase-type unfolding used by the numerical solver
  (the ablation benchmark compares both on the capacity model), and
* solving models whose state space is too large to enumerate.

Timing semantics (matching :mod:`repro.san.phase_type`):

* enabled timed activities race;
* an activity that stays enabled across another completion keeps its
  scheduled completion time (preemptive-resume) -- except exponential
  activities with marking-dependent rates, which are resampled so the
  new rate takes effect (correct by memorylessness);
* an activity that becomes disabled is cancelled and will draw a fresh
  delay when next enabled (preemptive-restart).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.analytic.distributions import Exponential
from repro.errors import ConfigurationError, ModelError
from repro.san.marking import Marking, MarkingView
from repro.san.model import SANModel, TimedActivity

__all__ = ["RewardEstimate", "SimulationResult", "SANSimulator"]

RewardFunction = Callable[[MarkingView], float]


@dataclass(frozen=True)
class RewardEstimate:
    """Batch-means estimate of a steady-state reward."""

    name: str
    mean: float
    half_width: float
    batches: int
    #: Per-batch time averages; each batch is normalised by its own
    #: width, so they average back to ``mean`` (weighted by width).
    batch_means: Tuple[float, ...] = ()

    @property
    def confidence_interval(self) -> Tuple[float, float]:
        """Approximate 95% confidence interval."""
        return (self.mean - self.half_width, self.mean + self.half_width)


@dataclass
class SimulationResult:
    """Outcome of a steady-state simulation run."""

    rewards: Dict[str, RewardEstimate]
    marking_occupancy: Dict[Marking, float]
    simulated_time: float
    events: int

    def occupancy_by(
        self, key: Callable[[Marking], object]
    ) -> Dict[object, float]:
        """Aggregate marking occupancy by an arbitrary key function."""
        result: Dict[object, float] = {}
        for marking, fraction in self.marking_occupancy.items():
            k = key(marking)
            result[k] = result.get(k, 0.0) + fraction
        return result


class SANSimulator:
    """Discrete-event executor for a :class:`SANModel`."""

    def __init__(self, model: SANModel, *, seed: Optional[int] = None):
        self.model = model
        self.rng = np.random.default_rng(seed)
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------
    def _stabilise(self, marking: Marking) -> Marking:
        """Fire enabled instantaneous activities until none remain,
        choosing cases at random according to their probabilities."""
        depth = 0
        while True:
            enabled = self.model.enabled_instantaneous(marking)
            if not enabled:
                return marking
            depth += 1
            if depth > 1000:
                raise ModelError(
                    f"model {self.model.name!r}: instantaneous cycle detected "
                    "during simulation"
                )
            top = max(a.priority for a in enabled)
            candidates = [a for a in enabled if a.priority == top]
            if len(candidates) > 1:
                names = sorted(a.name for a in candidates)
                raise ModelError(
                    f"model {self.model.name!r}: equal-priority instantaneous "
                    f"conflict between {names}"
                )
            activity = candidates[0]
            probs = activity.case_probabilities(self.model.place_index, marking)
            case_index = int(self.rng.choice(len(probs), p=probs))
            marking = activity.fire(self.model.place_index, marking, case_index)

    def _sample_delay(self, activity: TimedActivity, marking: Marking) -> float:
        distribution = activity.distribution_in(self.model.place_index, marking)
        return distribution.sample(self.rng)

    def run(
        self,
        horizon: float,
        *,
        warmup: float = 0.0,
        rewards: Optional[Mapping[str, RewardFunction]] = None,
        batches: int = 10,
        track_occupancy: bool = True,
    ) -> SimulationResult:
        """Simulate until ``horizon`` and return time-average rewards
        over ``(warmup, horizon]`` with batch-means confidence
        intervals.
        """
        if horizon <= warmup:
            raise ConfigurationError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        if batches < 1:
            raise ConfigurationError(f"batches must be >= 1, got {batches}")
        rewards = dict(rewards or {})
        batch_length = (horizon - warmup) / batches

        marking = self._stabilise(self.model.initial_marking())
        now = 0.0
        events = 0

        # Scheduled completion per enabled activity: name -> (time, seq).
        schedule: Dict[str, Tuple[float, int]] = {}
        heap: List[Tuple[float, int, str]] = []

        def reschedule(previous: Marking, current: Marking) -> None:
            enabled_now = {
                a.name: a for a in self.model.enabled_timed(current)
            }
            for name in list(schedule):
                if name not in enabled_now:
                    del schedule[name]  # disabled: restart on re-enable
            for name, activity in enabled_now.items():
                resample = name not in schedule
                if not resample and isinstance(
                    activity.distribution_in(self.model.place_index, current),
                    Exponential,
                ):
                    # Memoryless: resample so marking-dependent rates
                    # take effect immediately.
                    resample = previous != current
                if resample:
                    delay = self._sample_delay(activity, current)
                    entry = (now + delay, next(self._counter))
                    schedule[name] = entry
                    heapq.heappush(heap, (entry[0], entry[1], name))

        reschedule(marking, marking)

        # Accumulators.  Batch edges are derived from the *integer*
        # batch index (edge i = warmup + (i+1) * batch_length, with the
        # final edge pinned to the horizon), never by repeated addition:
        # incremental ``edge += batch_length`` drifts on long horizons,
        # and the drift both misplaces boundaries and leaves the final
        # partial batch normalised by the wrong width.
        reward_totals = {name: 0.0 for name in rewards}
        batch_totals: Dict[str, List[float]] = {name: [] for name in rewards}
        batch_current = {name: 0.0 for name in rewards}
        batch_index = 0
        occupancy: Dict[Marking, float] = {}

        def edge_of(index: int) -> float:
            """End of 0-based batch ``index``."""
            if index + 1 >= batches:
                return horizon
            return warmup + (index + 1) * batch_length

        def close_batch() -> None:
            nonlocal batch_index
            start_edge = warmup if batch_index == 0 else edge_of(batch_index - 1)
            width = edge_of(batch_index) - start_edge
            for name in rewards:
                batch_totals[name].append(batch_current[name] / width)
                batch_current[name] = 0.0
            batch_index += 1

        def accumulate(start: float, end: float) -> None:
            if end <= warmup:
                return
            start = max(start, warmup)
            span = end - start
            if span <= 0:
                return
            view = MarkingView(self.model.place_index, marking)
            if track_occupancy:
                occupancy[marking] = occupancy.get(marking, 0.0) + span
            values = {name: fn(view) for name, fn in rewards.items()}
            # Split the span across batch boundaries.
            cursor = start
            while cursor < end:
                batch_edge = edge_of(batch_index)
                edge = min(end, batch_edge)
                width = edge - cursor
                for name, value in values.items():
                    reward_totals[name] += value * width
                    batch_current[name] += value * width
                cursor = edge
                if cursor == batch_edge and batch_index < batches:
                    close_batch()

        while heap:
            fire_time, seq, name = heapq.heappop(heap)
            entry = schedule.get(name)
            if entry is None or entry != (fire_time, seq):
                continue  # stale event
            if fire_time > horizon:
                break
            accumulate(now, fire_time)
            now = fire_time
            events += 1
            del schedule[name]
            activity = next(
                a for a in self.model.timed_activities if a.name == name
            )
            probs = activity.case_probabilities(self.model.place_index, marking)
            case_index = int(self.rng.choice(len(probs), p=probs))
            previous = marking
            fired = activity.fire(self.model.place_index, marking, case_index)
            marking = self._stabilise(fired)
            reschedule(previous, marking)

        accumulate(now, horizon)
        # The final accumulate call ends exactly at the horizon, which
        # is the last batch edge, so normally every batch is already
        # closed; the guard covers the degenerate case of the last
        # event landing exactly on the horizon with nothing after it.
        while batch_index < batches:
            close_batch()

        observed = horizon - warmup
        estimates: Dict[str, RewardEstimate] = {}
        for name in rewards:
            series = np.array(batch_totals[name])
            mean = reward_totals[name] / observed
            if len(series) > 1:
                half_width = 1.96 * float(series.std(ddof=1)) / math.sqrt(len(series))
            else:
                half_width = math.inf
            estimates[name] = RewardEstimate(
                name=name,
                mean=mean,
                half_width=half_width,
                batches=len(series),
                batch_means=tuple(batch_totals[name]),
            )
        total_occupancy = sum(occupancy.values())
        if total_occupancy > 0:
            occupancy = {
                m: span / total_occupancy for m, span in occupancy.items()
            }
        return SimulationResult(
            rewards=estimates,
            marking_occupancy=occupancy,
            simulated_time=observed,
            events=events,
        )
