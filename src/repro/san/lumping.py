"""Exact symmetry lumping of SAN state spaces.

The paper's capacity model is a pool of *interchangeable* satellites:
permuting the identities of two satellites in the same role produces a
marking with identical stochastic behaviour.  Exact Markov-chain
lumping collapses such permutation orbits before the linear solve --
the classic trick that makes large-constellation CTMC analyses
tractable (Buchholz 1994; Derisavi et al. 2003) -- without changing a
single probability.  Two complementary layers are provided:

:func:`lumped_state_space`
    *Symbolic* lumping at reachability time.  A breadth-first search
    explores only **canonical representatives** of the orbits induced
    by the model's declared :attr:`~repro.san.model.SANModel.\
exchangeable_groups`, so the quotient is built without ever
    materialising the full state space -- the only route at scales
    where the full space is astronomically large (a 56-satellite plane
    has :math:`2^{56}`-ish markings; its quotient has a few dozen).
    Every explored representative is checked against the group's
    generators: the generator image must be tangible and have the same
    activity signature (distribution fingerprints, case weights and
    canonicalised targets).  This dynamically verifies the
    lumpability condition at every representative; the array-level
    refinement below provides the assumption-free certificate at
    scales where the full space is feasible, and the two are
    cross-validated by the test suite.

:func:`lump_assembled`
    *Numeric* lumping of an assembled (phase-type-unfolded) chain.
    Starting from the candidate orbit partition, a Paige-Tarjan-style
    partition refinement over the transition arrays splits blocks
    until both the **outgoing** signatures (ordinary lumpability: the
    quotient is a Markov chain) and the **incoming** signatures (exact
    lumpability: the stationary distribution is uniform within every
    block) are stable.  The result is a :class:`LumpedChain` whose
    quotient generator re-rates with the original chain (one rate per
    *slot class*; any re-rating that breaks a class raises
    :class:`~repro.errors.ModelError` so callers fall back to the
    unlumped path) and whose projection/expansion matrices map
    steady-state, transient and reward computations between the
    quotient and the full space exactly.

Why both conditions?  Stability of the outgoing signatures alone makes
the aggregated block process Markov (enough for block-level
marginals), but says nothing about how probability distributes
*within* a block.  Stability of the incoming signatures makes the
within-block conditional distribution uniform in steady state (for an
ergodic chain: uniformity is preserved by the transient evolution and
therefore holds in its limit), which is what justifies
``pi_full[s] = pi_quotient[block(s)] / |block(s)|``.  Automorphism
orbits satisfy both, so a correctly declared symmetry loses nothing.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.analytic.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
)
from repro.errors import ModelError, StateSpaceExplosionError
from repro.san.ctmc import CTMC
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.reachability import (
    GeneralTransition,
    MarkovianTransition,
    StateSpace,
    _stabilise,
)

__all__ = [
    "LumpedChain",
    "LumpedStateSpace",
    "canonical_marking",
    "lump_assembled",
    "lumped_state_space",
    "orbit_size",
]


# ----------------------------------------------------------------------
# Group action on markings
# ----------------------------------------------------------------------
def _group_positions(model: SANModel) -> List[List[Tuple[int, ...]]]:
    """Per group, the member place-index tuples (declaration order)."""
    if not model.exchangeable_groups:
        raise ModelError(
            f"model {model.name!r} declares no exchangeable groups; "
            "nothing to lump"
        )
    groups: List[List[Tuple[int, ...]]] = []
    for group in model.exchangeable_groups:
        groups.append(
            [
                tuple(model.place_index.position(place) for place in member)
                for member in group
            ]
        )
    return groups


def canonical_marking(model: SANModel, marking: Marking) -> Marking:
    """The orbit representative of ``marking``: within every declared
    exchangeable group, member sub-markings are sorted ascending."""
    values = list(marking)
    for members in _group_positions(model):
        subs = sorted(tuple(values[p] for p in member) for member in members)
        for member, sub in zip(members, subs):
            for position, value in zip(member, sub):
                values[position] = value
    return tuple(values)


def orbit_size(model: SANModel, marking: Marking) -> int:
    """Number of distinct markings in the orbit of ``marking`` under
    the declared group (the full symmetric group of each exchangeable
    group, acting independently)."""
    size = 1
    for members in _group_positions(model):
        subs = [tuple(marking[p] for p in member) for member in members]
        multiplicities: Dict[Tuple[int, ...], int] = {}
        for sub in subs:
            multiplicities[sub] = multiplicities.get(sub, 0) + 1
        group_size = math.factorial(len(subs))
        for count in multiplicities.values():
            group_size //= math.factorial(count)
        size *= group_size
    return size


def _generators(
    groups: List[List[Tuple[int, ...]]],
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Adjacent-member transpositions: each swaps two member position
    tuples.  They generate the full symmetric group of every
    exchangeable group."""
    swaps = []
    for members in groups:
        for i in range(len(members) - 1):
            swaps.append((members[i], members[i + 1]))
    return swaps


def _apply_swap(
    marking: Marking, swap: Tuple[Tuple[int, ...], Tuple[int, ...]]
) -> Marking:
    left, right = swap
    values = list(marking)
    for a, b in zip(left, right):
        values[a], values[b] = values[b], values[a]
    return tuple(values)


def _fingerprint(distribution: Distribution):
    """Hashable identity of a completion-time distribution, used to
    compare activities across symmetric markings without relying on
    activity names (which the symmetry permutes)."""
    if isinstance(distribution, Exponential):
        return ("exponential", distribution.rate)
    if isinstance(distribution, Deterministic):
        return ("deterministic", distribution.value)
    if isinstance(distribution, Erlang):
        return ("erlang", distribution.shape, distribution.rate)
    return (type(distribution).__name__, repr(distribution))


# ----------------------------------------------------------------------
# Symbolic lumping: canonical-representative reachability
# ----------------------------------------------------------------------
class LumpedStateSpace(StateSpace):
    """A quotient reachability graph over canonical orbit
    representatives.

    Drop-in :class:`~repro.san.reachability.StateSpace`: the markings
    are the representatives and the transitions carry orbit-aggregated
    probabilities, so :func:`~repro.san.assembled.assemble`,
    :func:`~repro.san.phase_type.unfold` and the solvers work
    unchanged.  ``class_sizes[i]`` is the orbit size of marking ``i``
    (how many full-space markings it stands for).
    """

    def __init__(self, *args, class_sizes: List[int], **kwargs):
        super().__init__(*args, **kwargs)
        self.class_sizes = class_sizes

    @property
    def full_state_count(self) -> int:
        """Tangible markings of the unlumped space (sum of orbit
        sizes -- exact because the reachable set is closed under the
        verified group action)."""
        return sum(self.class_sizes)

    def describe(self) -> str:
        return (
            f"LumpedStateSpace({self.model.name}: {len(self.markings)} "
            f"orbit representatives for {self.full_state_count} tangible "
            f"markings, {len(self.markovian)} markovian + "
            f"{len(self.general)} general transitions)"
        )


def _activity_signature(
    model: SANModel, marking: Marking
) -> Tuple[Tuple[object, ...], ...]:
    """Name-agnostic outgoing signature of a tangible marking: per
    enabled timed activity, the distribution fingerprint, case count
    and the stabilised (probability, canonical target) outcomes.
    Symmetric markings must produce identical signatures."""
    entries = []
    for activity in model.enabled_timed(marking):
        distribution = activity.distribution_in(model.place_index, marking)
        case_probs = activity.case_probabilities(model.place_index, marking)
        outcomes: Dict[Marking, float] = {}
        for case_index, case_prob in enumerate(case_probs):
            if case_prob == 0.0:
                continue
            fired = activity.fire(model.place_index, marking, case_index)
            for stab_prob, tangible in _stabilise(model, fired):
                target = canonical_marking(model, tangible)
                outcomes[target] = outcomes.get(target, 0.0) + case_prob * stab_prob
        entries.append(
            (
                _fingerprint(distribution),
                tuple(sorted(outcomes.items())),
            )
        )
    return tuple(sorted(entries))


def lumped_state_space(
    model: SANModel,
    *,
    max_states: int = 200_000,
    verify: bool = True,
) -> LumpedStateSpace:
    """Generate the quotient tangible reachability graph of ``model``
    under its declared exchangeable groups.

    The BFS mirrors :func:`repro.san.reachability.generate` but interns
    the *canonical form* of every tangible marking, so only one
    representative per orbit is explored; transitions whose full-space
    targets fall into one orbit merge with summed probabilities.  Cost
    is proportional to the quotient size times the group generator
    count -- independent of the (possibly astronomical) full state
    count.

    With ``verify`` (the default) the declared symmetry is checked at
    every explored representative: each group generator must map it to
    a tangible marking with an identical activity signature
    (:class:`~repro.errors.ModelError` otherwise), and the initial
    marking's stabilised distribution must be invariant under every
    generator.  This certifies the quotient's block-level dynamics at
    every state the quotient is built from; the assumption-free
    full-array certificate is :func:`lump_assembled`, cross-validated
    against this path by the test suite at feasible scales.
    """
    groups = _group_positions(model)
    swaps = _generators(groups)

    markings: List[Marking] = []
    class_sizes: List[int] = []
    index: Dict[Marking, int] = {}

    def intern(canonical: Marking) -> int:
        state = index.get(canonical)
        if state is None:
            if len(markings) >= max_states:
                raise StateSpaceExplosionError(
                    max_states, marking=model.marking_dict(canonical)
                )
            state = len(markings)
            index[canonical] = state
            markings.append(canonical)
            class_sizes.append(orbit_size(model, canonical))
        return state

    initial = _stabilise(model, model.initial_marking())
    if verify:
        # The orbit sizes double as expansion weights, which is exact
        # only when the reachable set is closed under the group action;
        # a group-invariant initial distribution guarantees that.
        reference = sorted(initial)
        for swap in swaps:
            swapped = sorted((p, _apply_swap(m, swap)) for p, m in initial)
            if swapped != reference:
                raise ModelError(
                    f"model {model.name!r}: the initial distribution is not "
                    "invariant under the declared exchangeable groups; "
                    "orbit-based lumping would miscount reachable states"
                )
    initial_distribution_map: Dict[int, float] = {}
    for probability, marking in initial:
        state = intern(canonical_marking(model, marking))
        initial_distribution_map[state] = (
            initial_distribution_map.get(state, 0.0) + probability
        )
    initial_distribution = sorted(initial_distribution_map.items())
    initial_distribution = [(p, s) for s, p in initial_distribution]

    markovian: List[MarkovianTransition] = []
    general: List[GeneralTransition] = []

    frontier = deque(s for _, s in initial_distribution)
    explored = set()
    while frontier:
        state = frontier.popleft()
        if state in explored:
            continue
        explored.add(state)
        marking = markings[state]
        if verify:
            signature = _activity_signature(model, marking)
            for swap in swaps:
                image = _apply_swap(marking, swap)
                if image == marking:
                    continue
                if model.enabled_instantaneous(image):
                    raise ModelError(
                        f"model {model.name!r}: marking "
                        f"{model.marking_dict(marking)} is tangible but its "
                        "generator image is vanishing; the declared "
                        "exchangeable groups are not a symmetry"
                    )
                if _activity_signature(model, image) != signature:
                    raise ModelError(
                        f"model {model.name!r}: marking "
                        f"{model.marking_dict(marking)} and its generator "
                        f"image {model.marking_dict(image)} have different "
                        "activity signatures; the declared exchangeable "
                        "groups are not a symmetry of the model"
                    )
        for activity in model.enabled_timed(marking):
            distribution = activity.distribution_in(model.place_index, marking)
            case_probs = activity.case_probabilities(model.place_index, marking)
            outcomes: Dict[int, float] = {}
            for case_index, case_prob in enumerate(case_probs):
                if case_prob == 0.0:
                    continue
                fired = activity.fire(model.place_index, marking, case_index)
                for stab_prob, tangible in _stabilise(model, fired):
                    target = intern(canonical_marking(model, tangible))
                    outcomes[target] = (
                        outcomes.get(target, 0.0) + case_prob * stab_prob
                    )
                    if target not in explored:
                        frontier.append(target)
            if isinstance(distribution, Exponential):
                for target, prob in sorted(outcomes.items()):
                    markovian.append(
                        MarkovianTransition(
                            source=state,
                            activity=activity.name,
                            rate=distribution.rate * prob,
                            target=target,
                            probability=prob,
                        )
                    )
            else:
                general.append(
                    GeneralTransition(
                        source=state,
                        activity=activity.name,
                        distribution=distribution,
                        targets=tuple(
                            (prob, target)
                            for target, prob in sorted(outcomes.items())
                        ),
                    )
                )
    return LumpedStateSpace(
        model,
        markings,
        initial_distribution,
        markovian,
        general,
        class_sizes=class_sizes,
    )


# ----------------------------------------------------------------------
# Numeric lumping: partition refinement over assembled arrays
# ----------------------------------------------------------------------
class LumpedChain:
    """The verified quotient of an assembled chain.

    Built by :func:`lump_assembled`.  ``block_of[s]`` maps every full
    augmented state to its block, ``block_sizes[b]`` counts members.
    The quotient transitions are ``(source block, target block, slot
    class, weight)`` arrays; one rate per slot class re-rates them.
    """

    def __init__(
        self,
        *,
        chain,
        block_of: np.ndarray,
        block_sizes: np.ndarray,
        transition_source: np.ndarray,
        transition_target: np.ndarray,
        transition_class: np.ndarray,
        transition_weight: np.ndarray,
        slot_class_of_slot: np.ndarray,
        class_representative_slot: np.ndarray,
        initial_distribution: Tuple[Tuple[float, int], ...],
    ):
        self.chain = chain
        self.block_of = block_of
        self.block_sizes = block_sizes
        self.transition_source = transition_source
        self.transition_target = transition_target
        self.transition_class = transition_class
        self.transition_weight = transition_weight
        #: Slot-class id of every original rate slot.
        self.slot_class_of_slot = slot_class_of_slot
        #: One original slot index per class, used to evaluate the
        #: class rate from a re-rated model.
        self.class_representative_slot = class_representative_slot
        self.initial_distribution = initial_distribution

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return int(self.block_sizes.shape[0])

    @property
    def num_full_states(self) -> int:
        return int(self.block_of.shape[0])

    @property
    def num_slot_classes(self) -> int:
        return int(self.class_representative_slot.shape[0])

    @property
    def reduction(self) -> float:
        """Full states per quotient block."""
        return self.num_full_states / self.num_blocks

    def describe(self) -> str:
        return (
            f"LumpedChain({self.chain.space.model.name}: "
            f"{self.num_full_states} states -> {self.num_blocks} blocks "
            f"({self.reduction:.1f}x), {self.num_slot_classes} rate "
            f"classes from {self.chain.num_slots} slots)"
        )

    # ------------------------------------------------------------------
    # Rate phase
    # ------------------------------------------------------------------
    def class_rates(
        self, model: Optional[SANModel] = None, *,
        rate_vector: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> np.ndarray:
        """One rate per slot class from a re-rated model.

        Every slot of a class must evaluate to the *same* rate -- the
        refinement's signatures treated them as interchangeable.  A
        model that breaks a class (e.g. per-satellite failure rates
        that are no longer identical) raises
        :class:`~repro.errors.ModelError`; callers fall back to the
        unlumped chain.  The check is exact (bitwise equality), so the
        quotient never silently approximates.
        """
        if rate_vector is None:
            if model is None:
                raise ModelError("class_rates needs a model or a rate_vector")
            rate_vector = self.chain.rate_vector(model, validate=validate)
        rate_vector = np.asarray(rate_vector, dtype=float)
        rates = rate_vector[self.class_representative_slot]
        mismatched = rate_vector != rates[self.slot_class_of_slot]
        if np.any(mismatched):
            slot = self.chain.slots[int(np.argmax(mismatched))]
            raise ModelError(
                f"re-rated model breaks lumping slot class of activity "
                f"{slot.activity!r} in marking {slot.marking_index}: slots "
                "that were rate-identical at refinement time no longer "
                "are; re-lump or use the unlumped chain"
            )
        return rates

    def rerate(
        self,
        model: Optional[SANModel] = None,
        *,
        rate_vector: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> CTMC:
        """The quotient CTMC for a new parameter point (same contract
        as :meth:`AssembledChain.rerate`, solved at quotient size)."""
        rates = self.class_rates(
            model, rate_vector=rate_vector, validate=validate
        )
        return CTMC.from_arrays(
            self.num_blocks,
            self.transition_source,
            self.transition_target,
            rates[self.transition_class] * self.transition_weight,
            initial_distribution=self.initial_distribution,
        )

    # ------------------------------------------------------------------
    # Projection / expansion
    # ------------------------------------------------------------------
    def expand(self, pi_quotient: np.ndarray) -> np.ndarray:
        """Full-space distribution from a quotient one: exact
        lumpability makes the stationary distribution uniform within
        each block, so each block's mass divides evenly."""
        pi_quotient = np.asarray(pi_quotient, dtype=float)
        if pi_quotient.shape != (self.num_blocks,):
            raise ModelError(
                f"quotient distribution has shape {pi_quotient.shape}, "
                f"expected ({self.num_blocks},)"
            )
        return (pi_quotient / self.block_sizes)[self.block_of]

    def aggregate(self, pi_full: np.ndarray) -> np.ndarray:
        """Block masses of a full-space distribution."""
        pi_full = np.asarray(pi_full, dtype=float)
        return np.bincount(
            self.block_of, weights=pi_full, minlength=self.num_blocks
        )

    def expansion_matrix(self) -> sparse.csr_matrix:
        """Sparse ``(num_full_states, num_blocks)`` matrix ``E`` with
        ``E[s, b] = 1/|b|`` for ``s`` in block ``b``:
        ``pi_full = E @ pi_quotient``."""
        n = self.num_full_states
        return sparse.csr_matrix(
            (
                1.0 / self.block_sizes[self.block_of],
                (np.arange(n), self.block_of),
            ),
            shape=(n, self.num_blocks),
        )

    def projection_matrix(self) -> sparse.csr_matrix:
        """Sparse ``(num_blocks, num_full_states)`` reward projection
        ``P`` with ``P[b, s] = 1/|b|``: for any full reward vector
        ``r``, ``(P @ r)`` is the quotient reward with
        ``pi_quotient . (P @ r) == pi_full . r``."""
        return self.expansion_matrix().T.tocsr()

    def project_reward(self, reward: np.ndarray) -> np.ndarray:
        """Quotient reward vector (block means) of a full one."""
        reward = np.asarray(reward, dtype=float)
        if reward.shape != (self.num_full_states,):
            raise ModelError(
                f"reward vector has shape {reward.shape}, expected "
                f"({self.num_full_states},)"
            )
        sums = np.bincount(
            self.block_of, weights=reward, minlength=self.num_blocks
        )
        return sums / self.block_sizes

    def marking_marginals(self, pi_quotient: np.ndarray) -> np.ndarray:
        """Tangible-marking marginals of the *full* space from a
        quotient distribution (expand, then marginalise)."""
        return self.chain.marking_marginals(self.expand(pi_quotient))


def _slot_classes(chain, rate_vector: np.ndarray):
    """Group rate slots into classes that are interchangeable for the
    refinement: same kind, same stage count, same case-probability
    multiset, same rate under the assembled model.  Re-rating later
    re-checks that each class is still rate-constant (see
    :meth:`LumpedChain.class_rates`).

    The case-probability multiset matters because a class is a *rate
    sharing* commitment across re-rates: keying on the rate value alone
    merges slots of unrelated activity families whose rates merely
    coincide at refinement time (a repair rate swept through the
    failure rate, two phase timers with equal means).  Such coincident
    classes are numerically sound at the refinement point but break --
    spuriously, the quotient itself is still exact -- as soon as a
    sweep moves one family's rate and not the other's, forcing a
    fallback to the unlumped chain.  Symmetric slots of one activity
    family have permuted (hence sorted-equal) case tuples, so keying on
    the sorted multiset keeps every genuinely interchangeable slot
    together while splitting coincidental rate collisions.  Splitting
    only refines the initial partition, so no previously-valid lumping
    is lost.
    """
    class_ids: Dict[Tuple, int] = {}
    slot_class = np.empty(chain.num_slots, dtype=np.int64)
    representatives: List[int] = []
    for position, slot in enumerate(chain.slots):
        key = (
            slot.kind,
            slot.stages,
            tuple(sorted(slot.case_probabilities)),
            float(rate_vector[position]),
        )
        identifier = class_ids.get(key)
        if identifier is None:
            identifier = len(class_ids)
            class_ids[key] = identifier
            representatives.append(position)
        slot_class[position] = identifier
    return slot_class, np.asarray(representatives, dtype=np.int64)


def _grouped_signatures(
    anchor: np.ndarray,
    keys: List[np.ndarray],
    num_states: int,
) -> List[Tuple]:
    """Per-state sorted multiset of transition keys.

    ``anchor`` assigns each transition to a state; ``keys`` are the
    per-transition columns forming the key.  Lexsorting groups the
    transitions by state with their keys in canonical order, so equal
    multisets produce equal tuples.
    """
    signatures: List[List[Tuple]] = [[] for _ in range(num_states)]
    if anchor.shape[0]:
        order = np.lexsort(tuple(reversed(keys)) + (anchor,))
        anchor_sorted = anchor[order]
        columns = [key[order] for key in keys]
        for position in range(anchor_sorted.shape[0]):
            signatures[int(anchor_sorted[position])].append(
                tuple(column[position] for column in columns)
            )
    return [tuple(rows) for rows in signatures]


def lump_assembled(chain) -> "LumpedChain":
    """Verify and build the quotient of an assembled chain.

    The candidate partition groups augmented states by (canonical
    tangible marking, Erlang stage code) -- the orbit partition of the
    declared exchangeable groups.  Paige-Tarjan-style refinement then
    splits any block whose members disagree on their outgoing or
    incoming ``(slot class, weight, neighbour block)`` multisets, and
    iterates to a fixpoint.  The fixpoint is simultaneously *ordinarily*
    lumpable (outgoing stability: the quotient is a CTMC whose
    block-level law equals the full chain's) and *exactly* lumpable
    (incoming stability: stationary probability is uniform within each
    block), so quotient solves expand to full-space answers without
    approximation.  A candidate that refines all the way to singletons
    raises :class:`~repro.errors.ModelError` (nothing was lumpable);
    partial refinements are kept -- they are still exact, just smaller
    wins.
    """
    model = chain.space.model
    groups = _group_positions(model)  # raises ModelError if undeclared
    del groups

    # Candidate partition: canonical marking x stage code.
    canonical_of_marking: Dict[Marking, int] = {}
    marking_class = np.empty(len(chain.space), dtype=np.int64)
    for marking_index, marking in enumerate(chain.space.markings):
        canonical = canonical_marking(model, marking)
        identifier = canonical_of_marking.setdefault(
            canonical, len(canonical_of_marking)
        )
        marking_class[marking_index] = identifier
    stage_codes = chain.codes % chain.stage_span
    candidate_keys = (
        marking_class[chain.marking_of_state].astype(np.int64)
        * int(chain.stage_span)
        + stage_codes
    )
    _, classes = np.unique(candidate_keys, return_inverse=True)
    classes = classes.astype(np.int64)

    rate_vector = chain.rate_vector(chain.space.model, validate=False)
    slot_class, class_representatives = _slot_classes(chain, rate_vector)

    num_states = chain.num_states
    src = chain.transition_source
    tgt = chain.transition_target
    edge_class = slot_class[chain.transition_slot]
    weight = chain.transition_weight

    # Refinement to a fixpoint: split by outgoing AND incoming
    # signatures.  Splitting is monotone, so equal class counts across
    # one round mean stability.
    while True:
        out_signatures = _grouped_signatures(
            src, [edge_class, weight, classes[tgt]], num_states
        )
        in_signatures = _grouped_signatures(
            tgt, [edge_class, weight, classes[src]], num_states
        )
        refined_ids: Dict[Tuple, int] = {}
        refined = np.empty(num_states, dtype=np.int64)
        for state in range(num_states):
            key = (
                int(classes[state]),
                out_signatures[state],
                in_signatures[state],
            )
            identifier = refined_ids.get(key)
            if identifier is None:
                identifier = len(refined_ids)
                refined_ids[key] = identifier
            refined[state] = identifier
        stable = len(refined_ids) == int(classes.max(initial=-1)) + 1
        classes = refined
        if stable:
            break

    num_blocks = int(classes.max(initial=-1)) + 1
    if num_blocks == num_states and num_states > 1:
        raise ModelError(
            f"model {model.name!r}: partition refinement split every "
            "candidate orbit to singletons; the declared exchangeable "
            "groups are not a lumpable symmetry of this chain"
        )

    block_sizes = np.bincount(classes, minlength=num_blocks).astype(float)

    # Quotient transitions from one representative state per block
    # (outgoing stability makes any representative equivalent).
    representative_state = np.full(num_blocks, -1, dtype=np.int64)
    for state in range(num_states):
        block = classes[state]
        if representative_state[block] < 0:
            representative_state[block] = state
    is_representative = np.zeros(num_states, dtype=bool)
    is_representative[representative_state] = True
    keep = is_representative[src]

    initial_map: Dict[int, float] = {}
    for probability, state in chain.initial_distribution:
        block = int(classes[state])
        initial_map[block] = initial_map.get(block, 0.0) + probability
    initial_distribution = tuple(
        (probability, block) for block, probability in sorted(initial_map.items())
    )

    return LumpedChain(
        chain=chain,
        block_of=classes,
        block_sizes=block_sizes,
        transition_source=classes[src[keep]],
        transition_target=classes[tgt[keep]],
        transition_class=edge_class[keep],
        transition_weight=weight[keep],
        slot_class_of_slot=slot_class,
        class_representative_slot=class_representatives,
        initial_distribution=initial_distribution,
    )
