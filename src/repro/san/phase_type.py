"""Phase-type (Erlang) unfolding of deterministic activities.

The paper's capacity model relies on UltraSAN's support for
**deterministic activity times** (the scheduled-deployment period
``phi`` and the launch delay).  We solve such models numerically by
replacing each deterministic delay ``d`` with an Erlang distribution of
``n`` stages and rate ``n/d`` -- same mean, squared coefficient of
variation ``1/n`` -- and expanding the state space with per-activity
stage counters.  As ``n`` grows the unfolded chain converges to the
Markov-regenerative behaviour of the deterministic model; the SAN
simulator (:mod:`repro.san.simulator`), which handles deterministic
delays exactly, is used to cross-check (see the ablation benchmark).

Unfolding semantics match the engine's execution rules: an activity
keeps its accumulated stages while it remains enabled across other
completions (preemptive-resume) and loses them when it becomes disabled
(preemptive-restart).

Since the topology/rate split, the BFS itself lives in
:mod:`repro.san.assembled` (integer-coded states, re-ratable transition
arrays); :func:`unfold` assembles and re-rates in one step, returning
the familiar tuple-based :class:`UnfoldedChain` view.  Sweep-style
callers that solve one topology at many rate points should hold the
:class:`~repro.san.assembled.AssembledChain` directly and call
``rerate`` per point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.san.assembled import AssembledChain, assemble
from repro.san.ctmc import CTMC
from repro.san.reachability import StateSpace

__all__ = ["UnfoldedChain", "unfold"]

#: An augmented state: (tangible-marking index, ((activity, stage), ...)).
AugState = Tuple[int, Tuple[Tuple[str, int], ...]]


class UnfoldedChain:
    """A CTMC over stage-augmented states, with the mapping back to the
    original tangible markings."""

    def __init__(
        self,
        ctmc: CTMC,
        states: List[AugState],
        space: StateSpace,
        *,
        assembled: Optional[AssembledChain] = None,
    ):
        self.ctmc = ctmc
        self.states = states
        self.space = space
        #: The array-native structure this chain was built from, when
        #: it came through :func:`unfold` (used for fast marginals).
        self.assembled = assembled
        self._marking_of_state: Optional[np.ndarray] = None

    def steady_state_markings(self) -> Dict[int, float]:
        """Stationary probability of each original tangible marking
        (marginalising out the stage counters)."""
        pi = self.ctmc.steady_state()
        return self.marginalise(pi)

    def marginalise(self, pi: np.ndarray) -> Dict[int, float]:
        """Aggregate a distribution over augmented states onto the
        original marking indices."""
        if self._marking_of_state is None:
            if self.assembled is not None:
                self._marking_of_state = self.assembled.marking_of_state
            else:
                self._marking_of_state = np.fromiter(
                    (marking for marking, _stages in self.states),
                    dtype=np.int64,
                    count=len(self.states),
                )
        index = self._marking_of_state
        totals = np.bincount(
            index,
            weights=np.asarray(pi, dtype=float),
            minlength=len(self.space),
        )
        return {
            int(marking): float(totals[marking]) for marking in np.unique(index)
        }


def unfold(
    space: StateSpace,
    *,
    stages: int = 24,
    max_states: int = 2_000_000,
) -> UnfoldedChain:
    """Unfold the general transitions of ``space`` into Erlang stages.

    Parameters
    ----------
    space:
        A tangible state space (may mix exponential and general
        transitions).
    stages:
        Number of Erlang stages used for each *deterministic* activity
        (explicit ``Erlang`` activities keep their own shape).
    """
    if stages < 1:
        raise ModelError(f"stages must be >= 1, got {stages}")
    assembled = assemble(space, stages=stages, max_states=max_states)
    ctmc = assembled.rerate(space.model, validate=False)
    return UnfoldedChain(
        ctmc, assembled.decode_states(), space, assembled=assembled
    )
