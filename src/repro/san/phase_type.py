"""Phase-type (Erlang) unfolding of deterministic activities.

The paper's capacity model relies on UltraSAN's support for
**deterministic activity times** (the scheduled-deployment period
``phi`` and the launch delay).  We solve such models numerically by
replacing each deterministic delay ``d`` with an Erlang distribution of
``n`` stages and rate ``n/d`` -- same mean, squared coefficient of
variation ``1/n`` -- and expanding the state space with per-activity
stage counters.  As ``n`` grows the unfolded chain converges to the
Markov-regenerative behaviour of the deterministic model; the SAN
simulator (:mod:`repro.san.simulator`), which handles deterministic
delays exactly, is used to cross-check (see the ablation benchmark).

Unfolding semantics match the engine's execution rules: an activity
keeps its accumulated stages while it remains enabled across other
completions (preemptive-resume) and loses them when it becomes disabled
(preemptive-restart).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analytic.distributions import Deterministic, Erlang, Exponential
from repro.errors import ModelError, StateSpaceExplosionError
from repro.san.ctmc import CTMC
from repro.san.reachability import GeneralTransition, StateSpace

__all__ = ["UnfoldedChain", "unfold"]

#: An augmented state: (tangible-marking index, ((activity, stage), ...)).
AugState = Tuple[int, Tuple[Tuple[str, int], ...]]


@dataclass(frozen=True)
class _PhaseSpec:
    """Erlang parameters of one general activity in one source state."""

    stages: int
    rate: float
    targets: Tuple[Tuple[float, int], ...]


class UnfoldedChain:
    """A CTMC over stage-augmented states, with the mapping back to the
    original tangible markings."""

    def __init__(
        self,
        ctmc: CTMC,
        states: List[AugState],
        space: StateSpace,
    ):
        self.ctmc = ctmc
        self.states = states
        self.space = space

    def steady_state_markings(self) -> Dict[int, float]:
        """Stationary probability of each original tangible marking
        (marginalising out the stage counters)."""
        pi = self.ctmc.steady_state()
        return self.marginalise(pi)

    def marginalise(self, pi: np.ndarray) -> Dict[int, float]:
        """Aggregate a distribution over augmented states onto the
        original marking indices."""
        result: Dict[int, float] = {}
        for aug_index, (marking_index, _stages) in enumerate(self.states):
            result[marking_index] = result.get(marking_index, 0.0) + float(
                pi[aug_index]
            )
        return result


def _phase_spec(
    transition: GeneralTransition, stages: int
) -> _PhaseSpec:
    distribution = transition.distribution
    if isinstance(distribution, Deterministic):
        if distribution.value <= 0:
            raise ModelError(
                f"activity {transition.activity!r} has zero deterministic "
                "delay; model it as instantaneous instead"
            )
        return _PhaseSpec(
            stages=stages,
            rate=stages / distribution.value,
            targets=transition.targets,
        )
    if isinstance(distribution, Erlang):
        return _PhaseSpec(
            stages=distribution.shape,
            rate=distribution.rate,
            targets=transition.targets,
        )
    if isinstance(distribution, Exponential):  # pragma: no cover - defensive
        raise ModelError(
            f"activity {transition.activity!r} is exponential; it should "
            "appear among the markovian transitions"
        )
    raise ModelError(
        f"activity {transition.activity!r} has unsupported distribution "
        f"{distribution!r}; phase-type unfolding handles Deterministic and "
        "Erlang activities"
    )


def unfold(
    space: StateSpace,
    *,
    stages: int = 24,
    max_states: int = 2_000_000,
) -> UnfoldedChain:
    """Unfold the general transitions of ``space`` into Erlang stages.

    Parameters
    ----------
    space:
        A tangible state space (may mix exponential and general
        transitions).
    stages:
        Number of Erlang stages used for each *deterministic* activity
        (explicit ``Erlang`` activities keep their own shape).
    """
    if stages < 1:
        raise ModelError(f"stages must be >= 1, got {stages}")

    general_by_source = space.general_by_source()
    specs: Dict[Tuple[int, str], _PhaseSpec] = {}
    for source, transitions in general_by_source.items():
        for transition in transitions:
            specs[(source, transition.activity)] = _phase_spec(transition, stages)

    markovian_by_source: Dict[int, List] = {}
    for transition in space.markovian:
        markovian_by_source.setdefault(transition.source, []).append(transition)

    def enabled_general(marking_index: int) -> Tuple[str, ...]:
        return tuple(
            sorted(t.activity for t in general_by_source.get(marking_index, ()))
        )

    def stage_tuple(
        marking_index: int, previous: Dict[str, int]
    ) -> Tuple[Tuple[str, int], ...]:
        """Stages for the general activities enabled in the target
        marking: kept if previously running, zero if newly enabled."""
        return tuple(
            (name, previous.get(name, 0)) for name in enabled_general(marking_index)
        )

    states: List[AugState] = []
    index: Dict[AugState, int] = {}

    def intern(state: AugState) -> int:
        if state in index:
            return index[state]
        if len(states) >= max_states:
            raise StateSpaceExplosionError(max_states)
        index[state] = len(states)
        states.append(state)
        return index[state]

    initial_distribution: List[Tuple[float, int]] = []
    frontier: deque = deque()
    for probability, marking_index in space.initial_distribution:
        aug = (marking_index, stage_tuple(marking_index, {}))
        initial_distribution.append((probability, intern(aug)))
        frontier.append(aug)

    transitions: List[Tuple[int, int, float]] = []
    explored = set()
    while frontier:
        aug = frontier.popleft()
        if aug in explored:
            continue
        explored.add(aug)
        source_index = index[aug]
        marking_index, stage_pairs = aug
        running = dict(stage_pairs)

        def emit(target_marking: int, carried: Dict[str, int], rate: float) -> None:
            target_aug = (target_marking, stage_tuple(target_marking, carried))
            target_index = intern(target_aug)
            transitions.append((source_index, target_index, rate))
            if target_aug not in explored:
                frontier.append(target_aug)

        # Exponential completions: stages of still-enabled general
        # activities are carried over (preemptive-resume).
        for transition in markovian_by_source.get(marking_index, ()):
            emit(transition.target, running, transition.rate)

        # Stage advances / completions of each running general activity.
        for name, stage in stage_pairs:
            spec = specs[(marking_index, name)]
            if stage < spec.stages - 1:
                advanced = dict(running)
                advanced[name] = stage + 1
                emit(marking_index, advanced, spec.rate)
            else:
                carried = {k: v for k, v in running.items() if k != name}
                for probability, target_marking in spec.targets:
                    if probability == 0.0:
                        continue
                    emit(target_marking, carried, spec.rate * probability)

    ctmc = CTMC(
        len(states), transitions, initial_distribution=initial_distribution
    )
    return UnfoldedChain(ctmc, states, space)
