"""Tangible reachability-graph generation for SAN models.

A marking is *tangible* when no instantaneous activity is enabled in
it, and *vanishing* otherwise.  Generation starts from the initial
marking, eliminates vanishing markings on the fly (following
instantaneous completions, branching over their cases), and explores
every timed-activity completion from each tangible marking.

The result is a :class:`StateSpace` whose transitions are split into

* ``markovian`` -- completions of exponential activities, stored as
  ``(source, activity, rate, target)`` with the rate already weighted
  by case and stabilisation probabilities; and
* ``general`` -- completions of non-exponential activities
  (deterministic, Erlang, ...), stored with their distribution and the
  probability-weighted target list, for consumption by the phase-type
  unfolding (:mod:`repro.san.phase_type`) or the simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analytic.distributions import Distribution, Exponential
from repro.errors import ModelError, StateSpaceExplosionError
from repro.san.marking import Marking
from repro.san.model import SANModel

__all__ = ["MarkovianTransition", "GeneralTransition", "StateSpace", "generate"]

#: Safety bound on chained instantaneous completions from one marking.
_MAX_STABILISATION_DEPTH = 1000


@dataclass(frozen=True)
class MarkovianTransition:
    """An exponential completion: ``source -> target`` at ``rate``.

    ``rate`` folds the activity's base exponential rate with
    ``probability`` -- the combined case / vanishing-elimination weight
    of reaching ``target``.  The probability is kept separately so the
    topology/rate split (:mod:`repro.san.assembled`) can re-rate the
    transition from a new base rate without regenerating the graph.
    """

    source: int
    activity: str
    rate: float
    target: int
    probability: float = 1.0


@dataclass(frozen=True)
class GeneralTransition:
    """A non-exponential completion from ``source``.

    ``targets`` lists ``(probability, target_state)`` pairs combining
    case probabilities and vanishing-marking elimination.
    """

    source: int
    activity: str
    distribution: Distribution
    targets: Tuple[Tuple[float, int], ...]


class StateSpace:
    """The tangible reachability graph of a SAN."""

    def __init__(
        self,
        model: SANModel,
        markings: List[Marking],
        initial_distribution: List[Tuple[float, int]],
        markovian: List[MarkovianTransition],
        general: List[GeneralTransition],
    ):
        self.model = model
        self.markings = markings
        self.index: Dict[Marking, int] = {m: i for i, m in enumerate(markings)}
        self.initial_distribution = initial_distribution
        self.markovian = markovian
        self.general = general

    def __len__(self) -> int:
        return len(self.markings)

    @property
    def is_markovian(self) -> bool:
        """Whether every transition is exponential (plain CTMC)."""
        return not self.general

    def marking_dict(self, state: int) -> Dict[str, int]:
        """Name-keyed marking of ``state``."""
        return self.model.marking_dict(self.markings[state])

    def general_by_source(self) -> Dict[int, List[GeneralTransition]]:
        """General transitions grouped by source state."""
        grouped: Dict[int, List[GeneralTransition]] = {}
        for transition in self.general:
            grouped.setdefault(transition.source, []).append(transition)
        return grouped

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        return (
            f"StateSpace({self.model.name}: {len(self.markings)} tangible "
            f"markings, {len(self.markovian)} markovian + "
            f"{len(self.general)} general transitions)"
        )


def _stabilise(model: SANModel, marking: Marking) -> List[Tuple[float, Marking]]:
    """Eliminate vanishing markings reachable from ``marking``.

    Returns the probability distribution over tangible markings reached
    by exhaustively firing enabled instantaneous activities (highest
    priority first).  Equal-priority conflicts and instantaneous cycles
    are modelling errors.
    """
    results: Dict[Marking, float] = {}
    # Work list of (probability, marking, depth).
    stack: List[Tuple[float, Marking, int]] = [(1.0, marking, 0)]
    while stack:
        prob, current, depth = stack.pop()
        if depth > _MAX_STABILISATION_DEPTH:
            raise ModelError(
                f"model {model.name!r}: more than {_MAX_STABILISATION_DEPTH} "
                "chained instantaneous completions -- instantaneous cycle?"
            )
        enabled = model.enabled_instantaneous(current)
        if not enabled:
            results[current] = results.get(current, 0.0) + prob
            continue
        top = max(a.priority for a in enabled)
        candidates = [a for a in enabled if a.priority == top]
        if len(candidates) > 1:
            names = sorted(a.name for a in candidates)
            raise ModelError(
                f"model {model.name!r}: instantaneous activities {names} are "
                "simultaneously enabled at equal priority; assign priorities "
                "to make the choice deterministic"
            )
        activity = candidates[0]
        case_probs = activity.case_probabilities(model.place_index, current)
        for case_index, case_prob in enumerate(case_probs):
            if case_prob == 0.0:
                continue
            successor = activity.fire(model.place_index, current, case_index)
            stack.append((prob * case_prob, successor, depth + 1))
    return [(p, m) for m, p in results.items()]


def generate(model: SANModel, *, max_states: int = 200_000) -> StateSpace:
    """Generate the tangible reachability graph of ``model``.

    Raises :class:`StateSpaceExplosionError` when more than
    ``max_states`` tangible markings are found.
    """
    markings: List[Marking] = []
    index: Dict[Marking, int] = {}

    def intern(marking: Marking) -> int:
        if marking in index:
            return index[marking]
        if len(markings) >= max_states:
            raise StateSpaceExplosionError(
                max_states, marking=model.marking_dict(marking)
            )
        index[marking] = len(markings)
        markings.append(marking)
        return index[marking]

    initial = _stabilise(model, model.initial_marking())
    initial_distribution = [(p, intern(m)) for p, m in initial]

    markovian: List[MarkovianTransition] = []
    general: List[GeneralTransition] = []

    frontier = deque(i for _, i in initial_distribution)
    explored = set()
    while frontier:
        state = frontier.popleft()
        if state in explored:
            continue
        explored.add(state)
        marking = markings[state]
        for activity in model.enabled_timed(marking):
            distribution = activity.distribution_in(model.place_index, marking)
            case_probs = activity.case_probabilities(model.place_index, marking)
            # Combined (probability, target) outcomes over cases and
            # vanishing elimination.
            outcomes: Dict[int, float] = {}
            for case_index, case_prob in enumerate(case_probs):
                if case_prob == 0.0:
                    continue
                fired = activity.fire(model.place_index, marking, case_index)
                for stab_prob, tangible in _stabilise(model, fired):
                    target = intern(tangible)
                    outcomes[target] = outcomes.get(target, 0.0) + case_prob * stab_prob
                    if target not in explored:
                        frontier.append(target)
            if isinstance(distribution, Exponential):
                for target, prob in sorted(outcomes.items()):
                    markovian.append(
                        MarkovianTransition(
                            source=state,
                            activity=activity.name,
                            rate=distribution.rate * prob,
                            target=target,
                            probability=prob,
                        )
                    )
            else:
                general.append(
                    GeneralTransition(
                        source=state,
                        activity=activity.name,
                        distribution=distribution,
                        targets=tuple(
                            (prob, target)
                            for target, prob in sorted(outcomes.items())
                        ),
                    )
                )
    return StateSpace(model, markings, initial_distribution, markovian, general)
