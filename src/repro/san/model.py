"""Stochastic activity network (SAN) formalism.

This is our substitute for **UltraSAN** (Sanders et al., Performance
Evaluation 1995), which the paper used to solve the orbital-plane
capacity model with deterministic activity times.  The formalism
follows the classic SAN definition:

* **places** hold tokens; a marking is an assignment of tokens to
  places;
* **timed activities** complete after a random delay drawn from a
  (possibly marking-dependent) distribution -- exponential activities
  yield a CTMC, deterministic/Erlang ones are handled by phase-type
  expansion (:mod:`repro.san.phase_type`) or simulation
  (:mod:`repro.san.simulator`);
* **instantaneous activities** complete in zero time and take priority
  over timed activities;
* **input gates** refine enabling (predicate) and consumption
  (function) beyond plain input arcs;
* **output gates** produce arbitrary marking changes; and
* **cases** attach a probabilistic choice of output effects to an
  activity completion.

Execution semantics: an activity is *enabled* when every input arc is
covered and every input-gate predicate holds.  Completion removes the
input-arc tokens, applies the input-gate functions, selects a case by
probability, then adds output-arc tokens and applies the case's
output-gate functions.  Timed activities race; an activity that becomes
disabled loses its progress (preemptive-restart), while one that stays
enabled across another activity's completion keeps it
(preemptive-resume, which is UltraSAN's behaviour for activities that
are not explicitly reactivated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analytic.distributions import Distribution, Exponential
from repro.errors import ModelError
from repro.san.marking import Marking, MarkingView, PlaceIndex

__all__ = [
    "Place",
    "InputGate",
    "OutputGate",
    "Case",
    "TimedActivity",
    "InstantaneousActivity",
    "SANModel",
]

Predicate = Callable[[MarkingView], bool]
GateFunction = Callable[[MarkingView], None]
RateFunction = Callable[[MarkingView], float]
DistributionFactory = Callable[[MarkingView], Distribution]
ProbabilityFunction = Callable[[MarkingView], float]


@dataclass(frozen=True)
class Place:
    """A token holder.

    Attributes
    ----------
    name:
        Unique identifier, used by arcs and gate code.
    initial:
        Tokens in the initial marking.
    """

    name: str
    initial: int = 0

    def __post_init__(self) -> None:
        if self.initial < 0:
            raise ModelError(f"place {self.name!r} has negative initial marking")


@dataclass(frozen=True)
class InputGate:
    """Enabling predicate plus consumption function."""

    name: str
    predicate: Predicate
    function: GateFunction = field(default=lambda m: None)


@dataclass(frozen=True)
class OutputGate:
    """Marking transformation applied on completion."""

    name: str
    function: GateFunction


@dataclass(frozen=True)
class Case:
    """One probabilistic outcome of an activity completion.

    ``probability`` may be a constant or a marking-dependent callable;
    the probabilities of an activity's cases must sum to 1 in every
    marking in which it is enabled.
    """

    probability: Union[float, ProbabilityFunction] = 1.0
    output_arcs: Mapping[str, int] = field(default_factory=dict)
    output_gates: Sequence[OutputGate] = ()

    def probability_in(self, view: MarkingView) -> float:
        """Evaluate the case probability in ``view``."""
        if callable(self.probability):
            value = self.probability(view)
        else:
            value = self.probability
        if not 0.0 <= value <= 1.0 + 1e-12:
            raise ModelError(f"case probability {value!r} outside [0, 1]")
        return float(value)


class _ActivityBase:
    """Common enabling/firing machinery of timed and instantaneous
    activities."""

    def __init__(
        self,
        name: str,
        *,
        input_arcs: Optional[Mapping[str, int]] = None,
        input_gates: Sequence[InputGate] = (),
        cases: Optional[Sequence[Case]] = None,
    ):
        self.name = name
        self.input_arcs: Dict[str, int] = dict(input_arcs or {})
        for place, mult in self.input_arcs.items():
            if mult < 1:
                raise ModelError(
                    f"activity {name!r}: input arc from {place!r} has "
                    f"multiplicity {mult}"
                )
        self.input_gates: Tuple[InputGate, ...] = tuple(input_gates)
        self.cases: Tuple[Case, ...] = tuple(cases) if cases else (Case(),)
        if not self.cases:
            raise ModelError(f"activity {name!r} has no cases")

    def enabled(self, places: PlaceIndex, marking: Marking) -> bool:
        """Whether the activity is enabled in ``marking``."""
        view = MarkingView(places, marking)
        for place, mult in self.input_arcs.items():
            if view[place] < mult:
                return False
        return all(gate.predicate(view) for gate in self.input_gates)

    def fire(
        self, places: PlaceIndex, marking: Marking, case_index: int
    ) -> Marking:
        """Complete the activity in ``marking`` choosing the case at
        ``case_index``; returns the successor marking."""
        view = MarkingView(places, marking)
        for place, mult in self.input_arcs.items():
            view.remove(place, mult)
        for gate in self.input_gates:
            gate.function(view)
        case = self.cases[case_index]
        for place, mult in case.output_arcs.items():
            view.add(place, mult)
        for gate in case.output_gates:
            gate.function(view)
        return view.freeze()

    def case_probabilities(
        self, places: PlaceIndex, marking: Marking
    ) -> List[float]:
        """Case probabilities evaluated in ``marking`` (must sum to 1)."""
        view = MarkingView(places, marking)
        probs = [case.probability_in(view) for case in self.cases]
        total = sum(probs)
        if abs(total - 1.0) > 1e-9:
            raise ModelError(
                f"activity {self.name!r}: case probabilities sum to {total}"
            )
        return probs

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class TimedActivity(_ActivityBase):
    """An activity whose completion takes random time.

    ``distribution`` may be:

    * a :class:`~repro.analytic.distributions.Distribution` instance
      (marking-independent),
    * a callable ``MarkingView -> Distribution`` (marking-dependent,
      e.g. an exponential whose rate scales with a token count).

    ``rate(...)`` is a convenience constructor for the common
    marking-dependent exponential.
    """

    def __init__(
        self,
        name: str,
        distribution: Union[Distribution, DistributionFactory],
        *,
        input_arcs: Optional[Mapping[str, int]] = None,
        input_gates: Sequence[InputGate] = (),
        cases: Optional[Sequence[Case]] = None,
    ):
        super().__init__(
            name, input_arcs=input_arcs, input_gates=input_gates, cases=cases
        )
        self._distribution = distribution

    @classmethod
    def exponential(
        cls,
        name: str,
        rate: Union[float, RateFunction],
        **kwargs,
    ) -> "TimedActivity":
        """Exponential activity with a constant or marking-dependent
        rate."""
        if callable(rate):
            def factory(view: MarkingView) -> Distribution:
                return Exponential(rate(view))

            return cls(name, factory, **kwargs)
        return cls(name, Exponential(rate), **kwargs)

    def distribution_in(self, places: PlaceIndex, marking: Marking) -> Distribution:
        """The completion-time distribution in ``marking``."""
        if isinstance(self._distribution, Distribution):
            return self._distribution
        return self._distribution(MarkingView(places, marking))

    def is_markovian(self, places: PlaceIndex, marking: Marking) -> bool:
        """Whether the activity is exponential in ``marking``."""
        return isinstance(self.distribution_in(places, marking), Exponential)


class InstantaneousActivity(_ActivityBase):
    """An activity that completes in zero time.

    Instantaneous activities always have priority over timed ones.
    Among themselves, higher ``priority`` fires first; equal-priority
    enabled instantaneous activities are a modelling error (the engine
    refuses the ambiguity rather than resolving it silently).
    """

    def __init__(
        self,
        name: str,
        *,
        priority: int = 0,
        input_arcs: Optional[Mapping[str, int]] = None,
        input_gates: Sequence[InputGate] = (),
        cases: Optional[Sequence[Case]] = None,
    ):
        super().__init__(
            name, input_arcs=input_arcs, input_gates=input_gates, cases=cases
        )
        self.priority = priority


class SANModel:
    """A stochastic activity network.

    Parameters
    ----------
    places:
        All places (order defines the marking layout).
    timed_activities / instantaneous_activities:
        The network's activities.  Names must be unique across both
        kinds.
    exchangeable_groups:
        Declared symmetries: each group is a sequence of *members*
        whose markings may be permuted without changing the model's
        stochastic behaviour (e.g. the per-satellite places of
        identical satellites in one plane).  A member is a place name
        or a tuple of place names (a satellite modelled by several
        places); members of one group must have the same arity and the
        groups must be place-disjoint.  The declaration is a
        *candidate* -- :mod:`repro.san.lumping` verifies it before any
        quotient is trusted.
    """

    def __init__(
        self,
        places: Sequence[Place],
        timed_activities: Sequence[TimedActivity],
        instantaneous_activities: Sequence[InstantaneousActivity] = (),
        *,
        name: str = "san",
        exchangeable_groups: Sequence[Sequence[object]] = (),
    ):
        self.name = name
        self.places = tuple(places)
        self.place_index = PlaceIndex(p.name for p in self.places)
        self.timed_activities = tuple(timed_activities)
        self.instantaneous_activities = tuple(instantaneous_activities)
        names = [a.name for a in self.timed_activities] + [
            a.name for a in self.instantaneous_activities
        ]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate activity names: {sorted(names)}")
        self._validate_arcs()
        self.exchangeable_groups = self._normalise_groups(exchangeable_groups)

    def _normalise_groups(
        self, groups: Sequence[Sequence[object]]
    ) -> Tuple[Tuple[Tuple[str, ...], ...], ...]:
        """Validate and normalise ``exchangeable_groups`` to a tuple of
        groups, each a tuple of members, each member a tuple of place
        names."""
        normalised: List[Tuple[Tuple[str, ...], ...]] = []
        seen: set = set()
        for group in groups:
            members: List[Tuple[str, ...]] = []
            for member in group:
                if isinstance(member, str):
                    member = (member,)
                member = tuple(member)
                if not member:
                    raise ModelError(
                        f"model {self.name!r}: empty member in an "
                        "exchangeable group"
                    )
                for place in member:
                    if place not in self.place_index:
                        raise ModelError(
                            f"model {self.name!r}: exchangeable group "
                            f"references unknown place {place!r}"
                        )
                    if place in seen:
                        raise ModelError(
                            f"model {self.name!r}: place {place!r} appears "
                            "in more than one exchangeable member; groups "
                            "must be place-disjoint"
                        )
                    seen.add(place)
                members.append(member)
            if len(members) < 2:
                raise ModelError(
                    f"model {self.name!r}: an exchangeable group needs at "
                    f"least two members, got {len(members)}"
                )
            arities = {len(member) for member in members}
            if len(arities) != 1:
                raise ModelError(
                    f"model {self.name!r}: members of one exchangeable "
                    f"group must have equal arity, got {sorted(arities)}"
                )
            normalised.append(tuple(members))
        return tuple(normalised)

    def _validate_arcs(self) -> None:
        for activity in (*self.timed_activities, *self.instantaneous_activities):
            for place in activity.input_arcs:
                if place not in self.place_index:
                    raise ModelError(
                        f"activity {activity.name!r} references unknown "
                        f"place {place!r}"
                    )
            for case in activity.cases:
                for place in case.output_arcs:
                    if place not in self.place_index:
                        raise ModelError(
                            f"activity {activity.name!r} case references "
                            f"unknown place {place!r}"
                        )

    def initial_marking(self) -> Marking:
        """The marking defined by the places' initial token counts."""
        return tuple(p.initial for p in self.places)

    def view(self, marking: Marking) -> MarkingView:
        """A mutable name-keyed view of ``marking``."""
        return MarkingView(self.place_index, marking)

    def marking_dict(self, marking: Marking) -> Dict[str, int]:
        """Name-keyed copy of ``marking``."""
        return self.view(marking).as_dict()

    def enabled_timed(self, marking: Marking) -> List[TimedActivity]:
        """Timed activities enabled in ``marking``."""
        return [
            a for a in self.timed_activities if a.enabled(self.place_index, marking)
        ]

    def enabled_instantaneous(self, marking: Marking) -> List[InstantaneousActivity]:
        """Instantaneous activities enabled in ``marking``."""
        return [
            a
            for a in self.instantaneous_activities
            if a.enabled(self.place_index, marking)
        ]
