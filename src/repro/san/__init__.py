"""Stochastic activity networks: modelling, solution and simulation.

This package is the reproduction's substitute for **UltraSAN**, the
tool the paper used to compute the steady-state orbital-plane capacity
probabilities ``P(k)``:

* :mod:`repro.san.model` -- SAN formalism (places, timed and
  instantaneous activities, input/output gates, cases);
* :mod:`repro.san.reachability` -- tangible reachability-graph
  generation with vanishing-marking elimination;
* :mod:`repro.san.ctmc` -- steady-state and transient CTMC solvers;
* :mod:`repro.san.phase_type` -- Erlang unfolding of deterministic
  activities (UltraSAN supported these natively);
* :mod:`repro.san.assembled` -- the topology/rate split: array-native
  unfolded chains that re-rate without regeneration;
* :mod:`repro.san.lumping` -- exact symmetry lumping: canonical-orbit
  reachability and refinement-verified quotient chains;
* :mod:`repro.san.simulator` -- discrete-event execution with exact
  deterministic timers, for cross-checking and large models;
* :mod:`repro.san.reward` -- UltraSAN-style rate rewards.
"""

from repro.san.assembled import AssembledChain, RateSlot, assemble
from repro.san.compose import (
    ReplicatedChain,
    lumped_state_count,
    replicate_lumped,
)
from repro.san.ctmc import (
    CTMC,
    SteadyStateSolution,
    SteadyStateWarmStart,
    from_state_space,
    marking_probabilities,
)
from repro.san.lumping import (
    LumpedChain,
    LumpedStateSpace,
    canonical_marking,
    lump_assembled,
    lumped_state_space,
    orbit_size,
)
from repro.san.marking import Marking, MarkingView, PlaceIndex
from repro.san.model import (
    Case,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
    TimedActivity,
)
from repro.san.phase_type import UnfoldedChain, unfold
from repro.san.reachability import (
    GeneralTransition,
    MarkovianTransition,
    StateSpace,
    generate,
)
from repro.san.reward import (
    expected_reward,
    probability_of,
    steady_state_marking_distribution,
    unfolded_marking_distribution,
)
from repro.san.simulator import RewardEstimate, SANSimulator, SimulationResult

__all__ = [
    "AssembledChain",
    "CTMC",
    "Case",
    "GeneralTransition",
    "InputGate",
    "InstantaneousActivity",
    "LumpedChain",
    "LumpedStateSpace",
    "Marking",
    "MarkingView",
    "MarkovianTransition",
    "OutputGate",
    "Place",
    "PlaceIndex",
    "RateSlot",
    "ReplicatedChain",
    "RewardEstimate",
    "SANModel",
    "SANSimulator",
    "SimulationResult",
    "StateSpace",
    "SteadyStateSolution",
    "SteadyStateWarmStart",
    "TimedActivity",
    "UnfoldedChain",
    "assemble",
    "canonical_marking",
    "expected_reward",
    "from_state_space",
    "generate",
    "lump_assembled",
    "lumped_state_count",
    "lumped_state_space",
    "marking_probabilities",
    "orbit_size",
    "probability_of",
    "replicate_lumped",
    "steady_state_marking_distribution",
    "unfold",
    "unfolded_marking_distribution",
]
