"""Array-native assembled form of a phase-type-unfolded SAN.

This module is the *structure phase* of the topology/rate split.  The
expensive part of solving a SAN at many parameter points is not the
linear algebra -- it is rebuilding the Python object graph (tangible
reachability BFS + Erlang unfolding) for every point even when only the
*rates* change.  :func:`assemble` runs the unfolding BFS once per
topology and emits an :class:`AssembledChain`:

* augmented states encoded as integers
  ``marking_index * stage_span + sum(stage_a * stride_a)`` (a
  mixed-radix code over the global stage capacities of the general
  activities) instead of interned ``(marking, ((name, stage), ...))``
  tuples;
* transitions as flat ``(source, target, slot, weight)`` COO-style
  arrays, where ``slot`` indexes a small per-topology table of
  :class:`RateSlot` records -- one per ``(tangible marking, activity)``
  pair -- and ``weight`` carries the structural case / stabilisation
  probability.

The *rate phase* is then :meth:`AssembledChain.rerate`: evaluate one
rate per slot from a (re-parameterised but topology-identical) model --
a few dozen Python calls -- and gather ``rate_vector[slot] * weight``
over the transition arrays to build a :class:`~repro.san.ctmc.CTMC`
with :meth:`~repro.san.ctmc.CTMC.from_arrays`.  Re-rating a 10k-state
chain costs microseconds of numpy instead of a fresh BFS.

:meth:`AssembledChain.rate_vector` validates (by default) that the new
model really is topology-identical: same places, same enabled timed /
instantaneous activity sets in every tangible marking, same case
probabilities, and compatible distribution families (a Deterministic
timer may only be swapped for an Erlang of the recorded stage count).
A :class:`~repro.errors.ModelError` signals that the caller must fall
back to a full rebuild.

The unfolding semantics are identical to
:func:`repro.san.phase_type.unfold` (which is now a thin wrapper over
this module): preemptive-resume stage carry-over, preemptive-restart
zeroing on re-enable, and the same deterministic transition emission
order -- the two paths produce the same chain, transition for
transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytic.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
)
from repro.errors import ModelError, StateSpaceExplosionError
from repro.san.ctmc import CTMC
from repro.san.model import SANModel, TimedActivity
from repro.san.reachability import StateSpace

__all__ = ["RateSlot", "AssembledChain", "assemble"]

#: An augmented state: (tangible-marking index, ((activity, stage), ...)).
#: Kept identical to repro.san.phase_type.AugState (defined there too;
#: duplicated here to avoid a circular import).
AugState = Tuple[int, Tuple[Tuple[str, int], ...]]

#: Case probabilities are structural; a re-rated model must reproduce
#: them to this absolute tolerance.
_CASE_PROBABILITY_TOLERANCE = 1e-12


@dataclass(frozen=True)
class RateSlot:
    """One rateable ``(tangible marking, activity)`` pair.

    ``kind`` is ``"exponential"`` for markovian activities and
    ``"phase"`` for unfolded general (Deterministic/Erlang) ones;
    ``stages`` is 1 for exponential slots and the Erlang stage count
    otherwise.  ``case_probabilities`` snapshots the activity's case
    distribution in the marking -- structural data revalidated on
    re-rate.
    """

    marking_index: int
    activity: str
    kind: str
    stages: int
    case_probabilities: Tuple[float, ...]


def _phase_stage_count(
    activity: str, distribution: Distribution, stages: int
) -> int:
    """Erlang stage count of one general activity (mirrors
    ``phase_type._phase_spec`` -- same errors, same choices)."""
    if isinstance(distribution, Deterministic):
        if distribution.value <= 0:
            raise ModelError(
                f"activity {activity!r} has zero deterministic "
                "delay; model it as instantaneous instead"
            )
        return stages
    if isinstance(distribution, Erlang):
        return distribution.shape
    if isinstance(distribution, Exponential):  # pragma: no cover - defensive
        raise ModelError(
            f"activity {activity!r} is exponential; it should "
            "appear among the markovian transitions"
        )
    raise ModelError(
        f"activity {activity!r} has unsupported distribution "
        f"{distribution!r}; phase-type unfolding handles Deterministic and "
        "Erlang activities"
    )


def _phase_rate(
    slot: RateSlot, distribution: Distribution
) -> float:
    """Per-stage rate of a phase slot under a (new) distribution whose
    stage count must match the assembled structure."""
    if isinstance(distribution, Deterministic):
        if distribution.value <= 0:
            raise ModelError(
                f"activity {slot.activity!r} has zero deterministic "
                "delay; model it as instantaneous instead"
            )
        return slot.stages / distribution.value
    if isinstance(distribution, Erlang):
        if distribution.shape != slot.stages:
            raise ModelError(
                f"activity {slot.activity!r}: Erlang shape changed from "
                f"{slot.stages} to {distribution.shape}; the stage structure "
                "is topology, re-assemble instead of re-rating"
            )
        return distribution.rate
    raise ModelError(
        f"activity {slot.activity!r} changed to unsupported distribution "
        f"{distribution!r}; phase slots accept Deterministic (of the "
        f"assembled stage count {slot.stages}) or matching Erlang"
    )


class AssembledChain:
    """The re-ratable, array-native form of an unfolded SAN.

    Built by :func:`assemble`; everything here except
    :meth:`rate_vector` (which evaluates a new model's distributions)
    is pure array data.
    """

    def __init__(
        self,
        *,
        space: StateSpace,
        stages: int,
        general_names: Tuple[str, ...],
        stage_capacities: Tuple[int, ...],
        stage_strides: Tuple[int, ...],
        stage_span: int,
        codes: np.ndarray,
        marking_of_state: np.ndarray,
        transition_source: np.ndarray,
        transition_target: np.ndarray,
        transition_slot: np.ndarray,
        transition_weight: np.ndarray,
        slots: Tuple[RateSlot, ...],
        initial_distribution: Tuple[Tuple[float, int], ...],
        enabled_timed_names: Tuple[Tuple[str, ...], ...],
    ):
        self.space = space
        self.stages = stages
        #: Sorted names of the general (phase-unfolded) activities.
        self.general_names = general_names
        #: Mixed-radix digit capacity per general activity (max stages).
        self.stage_capacities = stage_capacities
        self.stage_strides = stage_strides
        self.stage_span = stage_span
        #: Integer code of each augmented state, in discovery order.
        self.codes = codes
        #: Tangible-marking index of each augmented state (codes // span).
        self.marking_of_state = marking_of_state
        self.transition_source = transition_source
        self.transition_target = transition_target
        self.transition_slot = transition_slot
        self.transition_weight = transition_weight
        self.slots = slots
        self.initial_distribution = initial_distribution
        self._enabled_timed_names = enabled_timed_names
        #: Verified quotient (:class:`repro.san.lumping.LumpedChain`)
        #: when assembled with ``lump=True``; ``None`` otherwise.
        self.lumped = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return int(self.codes.shape[0])

    @property
    def num_transitions(self) -> int:
        return int(self.transition_source.shape[0])

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        return (
            f"AssembledChain({self.space.model.name}: {self.num_states} "
            f"states, {self.num_transitions} transitions, "
            f"{self.num_slots} rate slots, stages={self.stages})"
        )

    # ------------------------------------------------------------------
    # Rate phase
    # ------------------------------------------------------------------
    def rate_vector(
        self, model: SANModel, *, validate: bool = True
    ) -> np.ndarray:
        """Evaluate one base rate per slot from ``model``.

        ``model`` must be topology-identical to the one this chain was
        assembled from: same places, same enabled-activity structure,
        same case probabilities, compatible distributions.  With
        ``validate`` (the default) those invariants are checked and a
        :class:`ModelError` is raised on any mismatch -- callers treat
        that as "fall back to a full rebuild".
        """
        if model.place_index.names != self.space.model.place_index.names:
            raise ModelError(
                f"model {model.name!r} has places {model.place_index.names}, "
                f"assembled topology has {self.space.model.place_index.names}"
            )
        activities: Dict[str, TimedActivity] = {
            a.name: a for a in model.timed_activities
        }
        if validate:
            self._validate_topology(model, activities)
        rates = np.empty(self.num_slots, dtype=float)
        markings = self.space.markings
        place_index = model.place_index
        for position, slot in enumerate(self.slots):
            activity = activities.get(slot.activity)
            if activity is None:
                raise ModelError(
                    f"model {model.name!r} has no timed activity "
                    f"{slot.activity!r} required by the assembled topology"
                )
            distribution = activity.distribution_in(
                place_index, markings[slot.marking_index]
            )
            if slot.kind == "exponential":
                if not isinstance(distribution, Exponential):
                    raise ModelError(
                        f"activity {slot.activity!r} changed from exponential "
                        f"to {distribution!r}; that changes the topology"
                    )
                rates[position] = distribution.rate
            else:
                rates[position] = _phase_rate(slot, distribution)
        if np.any(rates < 0.0):
            bad = self.slots[int(np.argmin(rates))]
            raise ModelError(
                f"activity {bad.activity!r} evaluated to a negative rate"
            )
        return rates

    def _validate_topology(
        self, model: SANModel, activities: Dict[str, TimedActivity]
    ) -> None:
        place_index = model.place_index
        for marking_index, marking in enumerate(self.space.markings):
            enabled = tuple(
                sorted(a.name for a in model.enabled_timed(marking))
            )
            if enabled != self._enabled_timed_names[marking_index]:
                raise ModelError(
                    f"marking {marking_index} enables timed activities "
                    f"{enabled}, assembled topology recorded "
                    f"{self._enabled_timed_names[marking_index]}"
                )
            if model.enabled_instantaneous(marking):
                raise ModelError(
                    f"marking {marking_index} is no longer tangible: "
                    "an instantaneous activity became enabled"
                )
        for slot in self.slots:
            activity = activities.get(slot.activity)
            if activity is None:
                raise ModelError(
                    f"model {model.name!r} has no timed activity "
                    f"{slot.activity!r} required by the assembled topology"
                )
            probabilities = activity.case_probabilities(
                place_index, self.space.markings[slot.marking_index]
            )
            if len(probabilities) != len(slot.case_probabilities) or any(
                abs(p - q) > _CASE_PROBABILITY_TOLERANCE
                for p, q in zip(probabilities, slot.case_probabilities)
            ):
                raise ModelError(
                    f"activity {slot.activity!r}: case probabilities changed "
                    f"in marking {slot.marking_index} "
                    f"({slot.case_probabilities} -> {tuple(probabilities)}); "
                    "case structure is topology"
                )

    def transition_rates(self, rate_vector: np.ndarray) -> np.ndarray:
        """Per-transition rates: ``rate_vector[slot] * weight``."""
        rate_vector = np.asarray(rate_vector, dtype=float)
        if rate_vector.shape != (self.num_slots,):
            raise ModelError(
                f"rate vector has shape {rate_vector.shape}, expected "
                f"({self.num_slots},)"
            )
        return rate_vector[self.transition_slot] * self.transition_weight

    def rerate(
        self,
        model: Optional[SANModel] = None,
        *,
        rate_vector: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> CTMC:
        """Build the CTMC for a new parameter point.

        Pass either a topology-identical ``model`` (rates are evaluated
        with :meth:`rate_vector`) or a precomputed ``rate_vector``.
        """
        if rate_vector is None:
            if model is None:
                raise ModelError("rerate needs a model or a rate_vector")
            rate_vector = self.rate_vector(model, validate=validate)
        return CTMC.from_arrays(
            self.num_states,
            self.transition_source,
            self.transition_target,
            self.transition_rates(rate_vector),
            initial_distribution=self.initial_distribution,
        )

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def marking_marginals(self, pi: np.ndarray) -> np.ndarray:
        """Marginalise a distribution over augmented states onto the
        tangible markings (length ``len(self.space)`` array)."""
        return np.bincount(
            self.marking_of_state,
            weights=np.asarray(pi, dtype=float),
            minlength=len(self.space),
        )

    def decode_states(self) -> List[AugState]:
        """The augmented states as ``(marking, ((activity, stage), ...))``
        tuples, in state order -- the representation
        :class:`~repro.san.phase_type.UnfoldedChain` exposes."""
        strides = self.stage_strides
        capacities = self.stage_capacities
        names = self.general_names
        enabled = self._enabled_general_names()
        states: List[AugState] = []
        positions = {name: i for i, name in enumerate(names)}
        span = self.stage_span
        for code in self.codes.tolist():
            marking_index, remainder = divmod(code, span)
            pairs = tuple(
                (
                    name,
                    (remainder // strides[positions[name]])
                    % capacities[positions[name]],
                )
                for name in enabled[marking_index]
            )
            states.append((marking_index, pairs))
        return states

    def _enabled_general_names(self) -> List[Tuple[str, ...]]:
        """Sorted general-activity names enabled per tangible marking."""
        by_marking: List[List[str]] = [[] for _ in range(len(self.space))]
        for transition in self.space.general:
            if transition.activity not in by_marking[transition.source]:
                by_marking[transition.source].append(transition.activity)
        return [tuple(sorted(names)) for names in by_marking]


def assemble(
    space: StateSpace,
    *,
    stages: int = 24,
    max_states: int = 2_000_000,
    lump: bool = False,
) -> AssembledChain:
    """Unfold ``space`` into an array-native, re-ratable chain.

    Runs the same BFS as :func:`repro.san.phase_type.unfold` but over
    integer state codes, and factors every transition rate into
    ``rate_vector[slot] * weight`` so the chain can be re-rated without
    regeneration.  ``stages`` is the Erlang stage count used for
    Deterministic activities (explicit Erlangs keep their own shape).

    With ``lump=True`` the chain's declared exchangeable groups are
    verified by partition refinement and the exact quotient is attached
    as ``chain.lumped`` (:func:`repro.san.lumping.lump_assembled`);
    quotient re-rates then solve at block count instead of state count.
    A :class:`~repro.errors.ModelError` propagates when the model
    declares no groups or the declaration is not lumpable.
    """
    if stages < 1:
        raise ModelError(f"stages must be >= 1, got {stages}")

    model = space.model
    place_index = model.place_index
    activities: Dict[str, TimedActivity] = {
        a.name: a for a in model.timed_activities
    }

    general_by_source = space.general_by_source()
    # Stage count and structural targets per (source marking, activity).
    spec_stages: Dict[Tuple[int, str], int] = {}
    spec_targets: Dict[Tuple[int, str], Tuple[Tuple[float, int], ...]] = {}
    for source, transitions in general_by_source.items():
        for transition in transitions:
            key = (source, transition.activity)
            spec_stages[key] = _phase_stage_count(
                transition.activity, transition.distribution, stages
            )
            spec_targets[key] = transition.targets

    markovian_by_source: Dict[int, List] = {}
    for transition in space.markovian:
        markovian_by_source.setdefault(transition.source, []).append(transition)

    # Mixed-radix layout: one digit per general activity, capacity = the
    # activity's largest stage count over all source markings.
    general_names = tuple(sorted({t.activity for t in space.general}))
    positions = {name: i for i, name in enumerate(general_names)}
    capacities = [1] * len(general_names)
    for (_, name), count in spec_stages.items():
        capacities[positions[name]] = max(capacities[positions[name]], count)
    strides = [1] * len(general_names)
    for i in range(1, len(general_names)):
        strides[i] = strides[i - 1] * capacities[i - 1]
    stage_span = strides[-1] * capacities[-1] if general_names else 1

    enabled_general: List[Tuple[str, ...]] = [
        tuple(sorted(t.activity for t in general_by_source.get(m, ())))
        for m in range(len(space))
    ]

    # Rate slots, in deterministic first-use order (markovian
    # transitions first, then general -- matching unfold's emit order).
    slot_index: Dict[Tuple[int, str], int] = {}
    slots: List[RateSlot] = []

    def slot_for(marking_index: int, name: str, kind: str, count: int) -> int:
        key = (marking_index, name)
        position = slot_index.get(key)
        if position is None:
            activity = activities[name]
            case_probabilities = tuple(
                activity.case_probabilities(
                    place_index, space.markings[marking_index]
                )
            )
            position = len(slots)
            slot_index[key] = position
            slots.append(
                RateSlot(
                    marking_index=marking_index,
                    activity=name,
                    kind=kind,
                    stages=count,
                    case_probabilities=case_probabilities,
                )
            )
        return position

    for transition in space.markovian:
        slot_for(transition.source, transition.activity, "exponential", 1)
    for transition in space.general:
        slot_for(
            transition.source,
            transition.activity,
            "phase",
            spec_stages[(transition.source, transition.activity)],
        )

    # Integer-coded BFS.  States are processed in discovery order, which
    # reproduces unfold's FIFO frontier exactly.
    code_index: Dict[int, int] = {}
    codes: List[int] = []

    def intern(code: int) -> int:
        state = code_index.get(code)
        if state is None:
            if len(codes) >= max_states:
                raise StateSpaceExplosionError(
                    max_states,
                    marking=space.marking_dict(code // stage_span),
                )
            state = len(codes)
            code_index[code] = state
            codes.append(code)
        return state

    initial_distribution: List[Tuple[float, int]] = []
    for probability, marking_index in space.initial_distribution:
        initial_distribution.append(
            (probability, intern(marking_index * stage_span))
        )

    source_list: List[int] = []
    target_list: List[int] = []
    slot_list: List[int] = []
    weight_list: List[float] = []

    def emit(
        source_state: int, target_code: int, slot: int, weight: float
    ) -> None:
        source_list.append(source_state)
        target_list.append(intern(target_code))
        slot_list.append(slot)
        weight_list.append(weight)

    state = 0
    while state < len(codes):
        code = codes[state]
        marking_index, remainder = divmod(code, stage_span)
        enabled = enabled_general[marking_index]
        # Current stage of every running general activity.
        running = {
            name: (remainder // strides[positions[name]])
            % capacities[positions[name]]
            for name in enabled
        }

        def target_code_for(target_marking: int, carried: Dict[str, int]) -> int:
            # Stages enabled in the target marking: kept if previously
            # running (preemptive-resume), zero if newly enabled
            # (preemptive-restart); stages of disabled activities drop.
            base = target_marking * stage_span
            for name in enabled_general[target_marking]:
                stage = carried.get(name, 0)
                if stage:
                    base += stage * strides[positions[name]]
            return base

        # Exponential completions carry the running stages over.
        for transition in markovian_by_source.get(marking_index, ()):
            emit(
                state,
                target_code_for(transition.target, running),
                slot_index[(marking_index, transition.activity)],
                transition.probability,
            )

        # Stage advances / completions of each running general activity.
        for name in enabled:
            stage = running[name]
            key = (marking_index, name)
            slot = slot_index[key]
            if stage < spec_stages[key] - 1:
                advanced = dict(running)
                advanced[name] = stage + 1
                emit(state, target_code_for(marking_index, advanced), slot, 1.0)
            else:
                carried = {k: v for k, v in running.items() if k != name}
                for probability, target_marking in spec_targets[key]:
                    if probability == 0.0:
                        continue
                    emit(
                        state,
                        target_code_for(target_marking, carried),
                        slot,
                        probability,
                    )
        state += 1

    codes_array = np.asarray(codes, dtype=np.int64)
    enabled_timed_names = tuple(
        tuple(sorted(a.name for a in model.enabled_timed(marking)))
        for marking in space.markings
    )
    chain = AssembledChain(
        space=space,
        stages=stages,
        general_names=general_names,
        stage_capacities=tuple(capacities),
        stage_strides=tuple(strides),
        stage_span=stage_span,
        codes=codes_array,
        marking_of_state=(codes_array // stage_span).astype(np.int64),
        transition_source=np.asarray(source_list, dtype=np.int64),
        transition_target=np.asarray(target_list, dtype=np.int64),
        transition_slot=np.asarray(slot_list, dtype=np.int64),
        transition_weight=np.asarray(weight_list, dtype=float),
        slots=tuple(slots),
        initial_distribution=tuple(initial_distribution),
        enabled_timed_names=enabled_timed_names,
    )
    if lump:
        from repro.san.lumping import lump_assembled

        chain.lumped = lump_assembled(chain)
    return chain
