"""Reward computation on solved SAN models.

UltraSAN-style *rate rewards*: a function of the marking, accumulated
at the rate it evaluates to while the model sits in that marking.  At
steady state the expected reward is ``sum_m pi(m) * r(m)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

import numpy as np

from repro.san.marking import Marking, MarkingView
from repro.san.phase_type import UnfoldedChain
from repro.san.reachability import StateSpace

__all__ = [
    "steady_state_marking_distribution",
    "expected_reward",
    "probability_of",
]

RewardFunction = Callable[[MarkingView], float]


def steady_state_marking_distribution(
    space: StateSpace, pi: np.ndarray
) -> Dict[Marking, float]:
    """Map a stationary vector over state indices onto markings.

    Markings are interned (one state per marking), so this is a
    relabelling; the single ``tolist`` conversion avoids a per-state
    ``float()`` call.
    """
    result: Dict[Marking, float] = {}
    values = np.asarray(pi, dtype=float).tolist()
    for marking, probability in zip(space.markings, values):
        result[marking] = result.get(marking, 0.0) + probability
    return result


def unfolded_marking_distribution(chain: UnfoldedChain) -> Dict[Marking, float]:
    """Stationary marking distribution of a phase-type-unfolded model."""
    by_index = chain.steady_state_markings()
    return {
        chain.space.markings[idx]: prob for idx, prob in by_index.items()
    }


def expected_reward(
    space: StateSpace,
    marking_probabilities: Mapping[Marking, float],
    reward: RewardFunction,
) -> float:
    """Steady-state expected rate reward ``E[r] = sum pi(m) r(m)``."""
    total = 0.0
    for marking, probability in marking_probabilities.items():
        view = MarkingView(space.model.place_index, marking)
        total += probability * reward(view)
    return total


def probability_of(
    space: StateSpace,
    marking_probabilities: Mapping[Marking, float],
    predicate: Callable[[MarkingView], bool],
) -> float:
    """Steady-state probability that the marking satisfies
    ``predicate`` (a 0/1 rate reward)."""
    return expected_reward(
        space,
        marking_probabilities,
        lambda view: 1.0 if predicate(view) else 0.0,
    )
