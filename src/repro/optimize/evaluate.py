"""Per-cell evaluation: quotient solve, Eq. (3) QoS, cost model.

Every design cell is solved through
:func:`~repro.analytic.capacity.capacity_distribution_expanded` on the
symmetry-lumped quotient chain -- the whole point of the optimizer is
that the ~1000x quotient speedup makes brute-force search cheap.  The
capacity solver's fallback counters are sampled around each solve, so
a cell that silently fell off the quotient path (a ``ModelError``
downgrade to the unlumped chain) is visible *per cell* in the results
and classified by :func:`repro.optimize.pareto.classify_fallbacks`.

Objectives
----------

* **availability** -- ``P(K >= k_min)`` with ``k_min`` the scaled
  10-of-14 floor (:func:`repro.optimize.design.minimum_capacity`);
* **alert QoS** -- the Eq. (3) composition ``P(Y >= 2) = sum_k
  P(Y >= 2 | k) P(k)`` under the OAQ scheme, evaluated over the *full*
  capacity distribution (no truncation or renormalisation: ``k = 0``
  simply contributes nothing, unlike
  :func:`repro.analytic.composition.compose` which renormalises a
  truncated ``P(k)``).  The closed-form conditionals cover at most
  pairwise footprint overlap, so capacities beyond ``2 * theta / Tc``
  (20 for the reference geometry) are evaluated at that saturation
  point -- beyond it extra satellites only deepen an overlap the model
  (and the paper) does not distinguish;
* **spare cost** -- a yearly provisioning composite (see
  :func:`spare_cost` and ``docs/OPTIMIZE.md``): in-orbit spare capex
  plus net replacement-launch tempo plus scheduled-campaign tempo.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.analytic.capacity import (
    capacity_distribution_expanded,
    capacity_solver_stats,
)
from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.optimize.design import DesignPoint, minimum_capacity

__all__ = [
    "composed_alert_qos",
    "evaluate_cell",
    "minimum_capacity",
    "spare_cost",
]

#: Cost-model weights (dimensionless "launch equivalents per year"):
#: one resident in-orbit spare, one replacement launch per year, one
#: scheduled batch campaign per year.  A campaign is priced above a
#: single launch (it carries several spares); the exact ratio only
#: shifts the frontier's cost axis, not which cells are dominated
#: along the other axes.
SPARE_WEIGHT = 1.0
LAUNCH_WEIGHT = 1.0
CAMPAIGN_WEIGHT = 2.0

HOURS_PER_YEAR = 8760.0

_CONDITIONAL_CACHE: Dict[tuple, float] = {}


def _alert_probability(k: int, params: EvaluationParams, scheme: Scheme) -> float:
    """``P(Y >= SEQUENTIAL_DUAL | k)`` for ``k >= 1``, cached."""
    key = (k, id(params), scheme)
    value = _CONDITIONAL_CACHE.get(key)
    if value is None:
        geometry = params.constellation.plane_geometry(k)
        distribution = conditional_distribution(geometry, params, scheme)
        value = distribution.at_least(QoSLevel.SEQUENTIAL_DUAL)
        _CONDITIONAL_CACHE[key] = value
    return value


def composed_alert_qos(
    capacity_probabilities: Mapping[int, float],
    *,
    params: Optional[EvaluationParams] = None,
    scheme: Scheme = None,
) -> float:
    """Eq. (3) alert QoS ``P(Y >= 2)`` over a full ``P(k)``.

    Unlike :func:`repro.analytic.composition.compose` this takes the
    *complete* capacity distribution (sums to 1) and does not
    renormalise: ``k = 0`` contributes probability zero of any alert,
    and capacities beyond the pairwise-overlap domain bound
    ``floor(2 * theta / Tc)`` are evaluated at the bound (coverage
    saturation -- the closed forms model at most two simultaneous
    footprints, and QoS cannot degrade with more satellites).
    """
    if params is None:
        params = EvaluationParams()
    if scheme is None:
        scheme = Scheme.OAQ
    constellation = params.constellation
    k_saturation = int(
        math.floor(
            2.0
            * constellation.orbit_period_minutes
            / constellation.coverage_time_minutes
        )
    )
    total = 0.0
    for k, probability in capacity_probabilities.items():
        if probability <= 0.0 or k < 1:
            continue
        total += probability * _alert_probability(
            min(int(k), k_saturation), params, scheme
        )
    return total


def spare_cost(point: DesignPoint, expected_capacity: float) -> float:
    """Yearly provisioning cost of a design cell (launch equivalents).

    ``SPARE_WEIGHT * spares`` prices the resident in-orbit spares,
    ``LAUNCH_WEIGHT * consumption`` the net ground-spare consumption
    rate -- every failure eventually consumes one ground spare (a
    threshold launch or a slot in a scheduled batch), minus the
    failures undone by on-orbit repair::

        consumption = max(0, lambda * 8760 * E[K] - rho * 8760 * E[down])

    -- and ``CAMPAIGN_WEIGHT * campaigns`` the scheduled batch tempo
    ``8760 / phi`` (zero for the pure threshold policy).
    """
    policy = point.policy
    failures_per_year = (
        point.failure_rate_per_hour * HOURS_PER_YEAR * expected_capacity
    )
    repairs_per_year = 0.0
    if policy.repair_rate_per_hour is not None:
        expected_down = point.full_capacity - expected_capacity
        repairs_per_year = (
            policy.repair_rate_per_hour * HOURS_PER_YEAR * expected_down
        )
    consumption = max(0.0, failures_per_year - repairs_per_year)
    campaigns = 0.0
    if policy.kind in ("combined", "scheduled"):
        campaigns = HOURS_PER_YEAR / policy.scheduled_period_hours
    return (
        SPARE_WEIGHT * policy.in_orbit_spares
        + LAUNCH_WEIGHT * consumption
        + CAMPAIGN_WEIGHT * campaigns
    )


def evaluate_cell(
    point: DesignPoint,
    *,
    stages: int = 6,
    params: Optional[EvaluationParams] = None,
) -> Dict[str, object]:
    """Solve one design cell on the quotient chain and score it.

    Returns the experiment row: the design coordinates, the three
    objectives (``cost`` down, ``availability`` and ``qos_alert`` up),
    ``expected_k``, and the per-cell fallback deltas
    (``structure_fallbacks`` / ``solver_fallbacks``) sampled around the
    solve -- zero on the healthy quotient path, and the raw material of
    the run's fallback scorecard.
    """
    config = point.config()
    before = capacity_solver_stats()
    pk = capacity_distribution_expanded(config, stages=stages, lump=True)
    after = capacity_solver_stats()
    expected_k = sum(k * p for k, p in pk.items())
    k_min = point.k_min
    availability = sum(p for k, p in pk.items() if k >= k_min)
    qos = composed_alert_qos(pk, params=params)
    policy = point.policy
    return {
        "scale": point.plane_scale,
        "full": point.full_capacity,
        "spares": policy.in_orbit_spares,
        "policy": policy.kind,
        "eta": policy.threshold,
        "phi_hours": policy.scheduled_period_hours,
        "latency_hours": policy.replacement_latency_hours,
        "lambda": point.failure_rate_per_hour,
        "rho": (
            "none"
            if policy.repair_rate_per_hour is None
            else policy.repair_rate_per_hour
        ),
        "k_min": k_min,
        "expected_k": expected_k,
        "availability": availability,
        "qos_alert": qos,
        "cost": spare_cost(point, expected_k),
        "structure_fallbacks": after["structure_fallbacks"]
        - before["structure_fallbacks"],
        "solver_fallbacks": after["solver_fallbacks"]
        - before["solver_fallbacks"],
    }
