"""Pareto frontier, policy recommendation, fallback classification.

The optimizer's output contract (``docs/OPTIMIZE.md``):

* the experiment rows are the **Pareto-efficient** cells of the grid
  under (cost min, availability max, alert QoS max);
* ``metadata["recommendation"]`` is the cheapest cell meeting the
  availability and QoS targets (or the least-bad cell, flagged, when
  no cell meets them);
* ``metadata["fallback_scorecard"]`` classifies every cell that fell
  off the lumped quotient path.  A *solver* fallback (iterative
  steady-state solve degraded to a dense/least-squares method) is an
  **explained** numerical contingency; a *structure* fallback (the
  quotient construction itself raised ``ModelError`` and the cell was
  silently re-solved on the unlumped chain) is a **bug** by contract
  -- the design grid is built entirely from exactly-lumpable
  symmetric-plane topologies, so the scorecard gates the experiment:
  ``unexplained`` must be empty.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["classify_fallbacks", "pareto_frontier", "recommend_policy"]

#: Default acceptance targets for :func:`recommend_policy` -- the
#: paper-level service floor: the plane holds >= k_min with four nines,
#: and a surge of interest receives dual-coverage alert QoS at least
#: half the time.
DEFAULT_AVAILABILITY_TARGET = 0.9999
DEFAULT_QOS_TARGET = 0.5

#: Objective senses over the row dicts produced by
#: :func:`repro.optimize.evaluate.evaluate_cell`.
_MINIMIZE = ("cost",)
_MAXIMIZE = ("availability", "qos_alert")


def _dominates(a: Mapping[str, object], b: Mapping[str, object]) -> bool:
    """True iff ``a`` is at least as good as ``b`` on every objective
    and strictly better on at least one."""
    strict = False
    for key in _MINIMIZE:
        if a[key] > b[key]:
            return False
        if a[key] < b[key]:
            strict = True
    for key in _MAXIMIZE:
        if a[key] < b[key]:
            return False
        if a[key] > b[key]:
            strict = True
    return strict


def pareto_frontier(
    rows: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    """The non-dominated subset of ``rows`` under (cost min,
    availability max, qos_alert max), in ascending-cost order.

    Plain O(n^2) skyline -- the grids are thousands of cells, not
    millions, and the dominance check is three float comparisons.
    Ties (cells identical on all three objectives) are all kept, so
    equivalent policies remain visible side by side.
    """
    rows = list(rows)
    frontier: List[Dict[str, object]] = []
    for candidate in rows:
        if not any(
            _dominates(other, candidate)
            for other in rows
            if other is not candidate
        ):
            frontier.append(dict(candidate))
    frontier.sort(
        key=lambda r: (r["cost"], -r["availability"], -r["qos_alert"])
    )
    return frontier


def recommend_policy(
    rows: Sequence[Mapping[str, object]],
    *,
    availability_target: float = DEFAULT_AVAILABILITY_TARGET,
    qos_target: float = DEFAULT_QOS_TARGET,
) -> Dict[str, object]:
    """The cheapest cell meeting both targets, as a recommendation dict.

    Returns ``{"constraints_met": True, "cell": row}`` with the
    minimum-cost feasible cell (ties broken by higher availability,
    then higher QoS).  When no cell is feasible the closest cell by
    lexicographic (availability, qos_alert, -cost) is returned with
    ``"constraints_met": False`` so callers cannot mistake a best-effort
    answer for a satisfied one.
    """
    rows = list(rows)
    if not rows:
        return {
            "constraints_met": False,
            "cell": None,
            "availability_target": availability_target,
            "qos_target": qos_target,
        }
    feasible = [
        row
        for row in rows
        if row["availability"] >= availability_target
        and row["qos_alert"] >= qos_target
    ]
    if feasible:
        best = min(
            feasible,
            key=lambda r: (r["cost"], -r["availability"], -r["qos_alert"]),
        )
        met = True
    else:
        best = max(
            rows,
            key=lambda r: (r["availability"], r["qos_alert"], -r["cost"]),
        )
        met = False
    return {
        "constraints_met": met,
        "cell": dict(best),
        "availability_target": availability_target,
        "qos_target": qos_target,
    }


def classify_fallbacks(
    rows: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """Classify per-cell fallback deltas into a scorecard.

    Solver fallbacks (``solver_fallbacks > 0``) are *explained*: the
    quotient chain was built and solved, only the linear-algebra method
    degraded, and the result is still used.  Structure fallbacks
    (``structure_fallbacks > 0``) are *unexplained by contract*: every
    grid topology is an exactly-lumpable symmetric plane, so any cell
    that fell back to the unlumped chain exposes a lumping/rerate bug.
    The experiment (and its golden test) assert
    ``scorecard["unexplained"] == []``.
    """
    explained: List[Dict[str, object]] = []
    unexplained: List[Dict[str, object]] = []
    for index, row in enumerate(rows):
        structure = int(row.get("structure_fallbacks", 0))
        solver = int(row.get("solver_fallbacks", 0))
        if structure:
            unexplained.append(
                {
                    "cell": index,
                    "reason": "structure_fallback",
                    "count": structure,
                }
            )
        if solver:
            explained.append(
                {
                    "cell": index,
                    "reason": "solver_fallback",
                    "count": solver,
                }
            )
    return {
        "cells": len(rows),
        "clean": len(rows)
        - len({entry["cell"] for entry in explained + unexplained}),
        "explained": explained,
        "unexplained": unexplained,
    }
