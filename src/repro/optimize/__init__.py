"""Spare-policy design-space optimization on the quotient solver.

The paper evaluates its two ground-spare deployment policies at one
hand-picked design point; the symmetry-lumped quotient chain
(:func:`repro.analytic.capacity.capacity_distribution_expanded`) makes
each point cheap enough to brute-force the whole design space instead
-- spare counts, threshold ``eta`` versus scheduled period ``phi``,
launch latencies, repair and failure rates, plane scale -- and trade
spare cost against availability ``P(K >= k_min)`` and composed alert
QoS (paper Eq. 3).  See ``docs/OPTIMIZE.md`` for the design space, the
cost model, the Pareto output format and the fallback-classification
contract.
"""

from repro.optimize.design import (
    DesignPoint,
    GroundSparePolicy,
    design_grid,
    grid_topology_count,
    smoke_grid,
)
from repro.optimize.evaluate import (
    composed_alert_qos,
    evaluate_cell,
    minimum_capacity,
    spare_cost,
)
from repro.optimize.pareto import (
    classify_fallbacks,
    pareto_frontier,
    recommend_policy,
)

__all__ = [
    "DesignPoint",
    "GroundSparePolicy",
    "classify_fallbacks",
    "composed_alert_qos",
    "design_grid",
    "evaluate_cell",
    "grid_topology_count",
    "minimum_capacity",
    "pareto_frontier",
    "recommend_policy",
    "smoke_grid",
    "spare_cost",
]
