"""The spare-policy design space: policies, points and grids.

A *design point* is one fully-specified orbital-plane configuration --
a :class:`GroundSparePolicy` (which deployment machinery runs, how
many in-orbit spares, threshold/period/latency/repair parameters)
applied to a plane of a given scale with a given failure rate.  The
grid builders below enumerate the cells the ``optimize`` experiment
sweeps; cells are emitted **grouped by SAN topology** (policy kind,
spare count, threshold, repair presence, scale) so consecutive cells
re-rate one cached assembled quotient instead of thrashing the
assemble cache, exactly like the fixed-topology rate sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analytic.capacity import CapacityModelConfig
from repro.errors import ConfigurationError

__all__ = [
    "DesignPoint",
    "GroundSparePolicy",
    "design_grid",
    "grid_topology_count",
    "smoke_grid",
]

#: Valid policy kinds (mirrors ``CapacityModelConfig.deployment_policy``).
POLICY_KINDS = ("combined", "threshold", "scheduled")

#: Paper-reference plane: 14 active satellites.
BASE_CAPACITY = 14

#: Ratio defining the availability floor ``k_min``: the reference
#: plane's underlap-sustain threshold (eta = 10 of 14).
K_MIN_RATIO = 10 / 14


@dataclass(frozen=True)
class GroundSparePolicy:
    """One ground-spare provisioning policy for an orbital plane.

    ``kind`` selects the deployment machinery (``"threshold"``,
    ``"scheduled"`` or the paper's ``"combined"``); the remaining
    fields parameterise it.  ``threshold`` is ignored by the pure
    scheduled policy and ``scheduled_period_hours`` by the pure
    threshold policy (they keep their defaults so equal policies
    compare equal).  ``repair_rate_per_hour`` follows the
    :class:`~repro.analytic.capacity.CapacityModelConfig` convention:
    ``None`` omits on-orbit repair structurally, any float >= 0
    (including exactly 0.0) keeps the repair activity as a rate.
    """

    kind: str = "combined"
    in_orbit_spares: int = 2
    threshold: int = 10
    scheduled_period_hours: float = 30000.0
    replacement_latency_hours: float = 168.0
    repair_rate_per_hour: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ConfigurationError(
                f"policy kind must be one of {POLICY_KINDS}, got "
                f"{self.kind!r}"
            )
        if self.in_orbit_spares < 0:
            raise ConfigurationError(
                f"in_orbit_spares must be >= 0, got {self.in_orbit_spares}"
            )

    def to_config(
        self, *, full_capacity: int, failure_rate_per_hour: float
    ) -> CapacityModelConfig:
        """The capacity-model configuration of this policy applied to a
        plane of ``full_capacity`` satellites (full validation happens
        in :class:`CapacityModelConfig`)."""
        return CapacityModelConfig(
            full_capacity=full_capacity,
            in_orbit_spares=self.in_orbit_spares,
            failure_rate_per_hour=failure_rate_per_hour,
            threshold=self.threshold,
            scheduled_period_hours=self.scheduled_period_hours,
            replacement_latency_hours=self.replacement_latency_hours,
            deployment_policy=self.kind,
            repair_rate_per_hour=self.repair_rate_per_hour,
        )


@dataclass(frozen=True)
class DesignPoint:
    """One cell of the design grid: a policy on a scaled plane."""

    plane_scale: int
    full_capacity: int
    failure_rate_per_hour: float
    policy: GroundSparePolicy

    def __post_init__(self) -> None:
        if self.plane_scale < 1:
            raise ConfigurationError(
                f"plane_scale must be >= 1, got {self.plane_scale}"
            )

    def config(self) -> CapacityModelConfig:
        return self.policy.to_config(
            full_capacity=self.full_capacity,
            failure_rate_per_hour=self.failure_rate_per_hour,
        )

    @property
    def k_min(self) -> int:
        """The availability floor for this plane size (the reference
        plane's eta = 10/14, scaled and rounded up)."""
        return minimum_capacity(self.full_capacity)

    def topology_group(self) -> Tuple:
        """Sort key grouping cells that share one assembled quotient
        (mirrors the capacity topology key's structural fields)."""
        return (
            self.plane_scale,
            self.full_capacity,
            self.policy.in_orbit_spares,
            self.policy.kind,
            self.policy.threshold,
            self.policy.repair_rate_per_hour is not None,
        )


def minimum_capacity(full_capacity: int) -> int:
    """``k_min`` -- the smallest acceptable active count of a plane of
    ``full_capacity`` satellites (scaled from the reference 10-of-14)."""
    return max(1, -(-full_capacity * 10 // 14))  # ceil(full * 10/14)


def _sorted_cells(cells: List[DesignPoint]) -> List[DesignPoint]:
    """Deterministic topology-grouped order: structural fields first,
    then the rate fields."""
    return sorted(
        cells,
        key=lambda c: (
            c.topology_group(),
            c.failure_rate_per_hour,
            c.policy.repair_rate_per_hour
            if c.policy.repair_rate_per_hour is not None
            else -1.0,
            c.policy.replacement_latency_hours,
            c.policy.scheduled_period_hours,
        ),
    )


def design_grid(
    *,
    base_capacity: int = BASE_CAPACITY,
    scales: Sequence[int] = (1, 2),
    base_spares: Sequence[int] = (0, 2, 4),
    failure_rates: Sequence[float] = (1e-5, 5e-5, 1e-4),
    repair_rates: Sequence[Optional[float]] = (0.0, 1e-4, 1e-3),
    eta_offsets: Sequence[int] = (-6, -4, -2),
    latencies: Sequence[float] = (72.0, 168.0, 336.0),
    periods: Sequence[float] = (4380.0, 8760.0, 17520.0),
) -> List[DesignPoint]:
    """The default optimizer grid (1134 cells with the defaults).

    Per ``(scale, spares)`` block the three policy kinds contribute:

    * ``threshold``: eta offsets x failure rates x repair rates x
      replacement latencies (the period is irrelevant without the
      scheduled clock and stays at its default);
    * ``combined``: eta offsets x failure rates x repair rates x
      scheduled periods (latency fixed at the calibrated 168 h);
    * ``scheduled``: failure rates x repair rates x scheduled periods
      (eta is structurally irrelevant without the trigger and is fixed
      at the middle offset so all scheduled cells share one topology).

    Spare counts and eta offsets scale with the plane (``spares * s``,
    ``eta = full + offset * s``), keeping the relative provisioning
    comparable across scales.  The repair-rate axis deliberately
    includes **exactly 0.0** -- the zero-rate cell that must re-rate in
    place on the same topology as its positive-rate neighbours (the
    regression the rerate fix pins).
    """
    mid_eta = eta_offsets[len(eta_offsets) // 2]
    cells: List[DesignPoint] = []
    for scale in scales:
        full = base_capacity * scale
        for spares in base_spares:
            common = dict(
                plane_scale=scale,
                full_capacity=full,
            )
            for lam in failure_rates:
                for rho in repair_rates:
                    for offset in eta_offsets:
                        eta = full + offset * scale
                        for latency in latencies:
                            cells.append(
                                DesignPoint(
                                    failure_rate_per_hour=lam,
                                    policy=GroundSparePolicy(
                                        kind="threshold",
                                        in_orbit_spares=spares * scale,
                                        threshold=eta,
                                        replacement_latency_hours=latency,
                                        repair_rate_per_hour=rho,
                                    ),
                                    **common,
                                )
                            )
                        for period in periods:
                            cells.append(
                                DesignPoint(
                                    failure_rate_per_hour=lam,
                                    policy=GroundSparePolicy(
                                        kind="combined",
                                        in_orbit_spares=spares * scale,
                                        threshold=eta,
                                        scheduled_period_hours=period,
                                        repair_rate_per_hour=rho,
                                    ),
                                    **common,
                                )
                            )
                    for period in periods:
                        cells.append(
                            DesignPoint(
                                failure_rate_per_hour=lam,
                                policy=GroundSparePolicy(
                                    kind="scheduled",
                                    in_orbit_spares=spares * scale,
                                    threshold=full + mid_eta * scale,
                                    scheduled_period_hours=period,
                                    repair_rate_per_hour=rho,
                                ),
                                **common,
                            )
                        )
    return _sorted_cells(cells)


def smoke_grid(*, base_capacity: int = BASE_CAPACITY) -> List[DesignPoint]:
    """The tier-1 smoke grid (24 cells, scale 1 only): two spare
    counts, two failure rates, repair structurally absent (``None``)
    versus present at rate zero (``0.0``), one representative cell
    family per policy kind.  Small enough for the golden regression
    test, broad enough to cross every structural axis -- and the
    golden pins the invariant that the ``None`` and ``0.0`` repair
    variants produce identical ``P(k)`` on distinct topologies."""
    return _sorted_cells(
        design_grid(
            base_capacity=base_capacity,
            scales=(1,),
            base_spares=(0, 2),
            failure_rates=(1e-5, 1e-4),
            repair_rates=(None, 0.0),
            eta_offsets=(-4,),
            latencies=(168.0,),
            periods=(8760.0,),
        )
    )


def grid_topology_count(cells: Sequence[DesignPoint]) -> int:
    """Distinct SAN topologies a grid touches (diagnostic)."""
    return len({cell.topology_group() for cell in cells})
