"""repro -- full reproduction of "Opportunity-Adaptive QoS Enhancement
in Satellite Constellations: A Case Study" (Tai, Tso, Alkalai, Chau,
Sanders; DSN 2003).

Subpackages
-----------
``repro.core``
    QoS spectrum and measures, schemes (OAQ/BAQ), configuration and the
    :class:`~repro.core.framework.OAQFramework` facade.
``repro.geometry``
    Orbital-plane footprint geometry (``Tr[k]``, ``Tc``, ``L1``, ``L2``,
    ``M[k]``, Theorems 1-2).
``repro.analytic``
    Closed-form QoS model, SAN capacity model, Eq. (3) composition.
``repro.san``
    Stochastic-activity-network engine (the UltraSAN substitute).
``repro.orbits``
    Orbital mechanics and coverage analytics (the SOAP substitute).
``repro.geolocation``
    Doppler/TOA measurements, iterative WLS, sequential localization.
``repro.desim`` / ``repro.protocol``
    Discrete-event kernel and the OAQ coordination protocol.
``repro.simulation``
    Monte-Carlo and end-to-end cross-validation scenarios.
``repro.experiments``
    Regeneration of every table and figure of the paper's evaluation.

Quick start::

    from repro import OAQFramework, EvaluationParams, Scheme, QoSLevel

    params = EvaluationParams(node_failure_rate_per_hour=5e-5)
    framework = OAQFramework(params)
    print(framework.compare_schemes(QoSLevel.SEQUENTIAL_DUAL))
"""

from repro.core import (
    ConstellationConfig,
    EvaluationParams,
    OAQFramework,
    QoSDistribution,
    QoSLevel,
    REFERENCE_CONSTELLATION,
    Scheme,
)
from repro.geometry import PlaneGeometry

__version__ = "1.0.0"

__all__ = [
    "ConstellationConfig",
    "EvaluationParams",
    "OAQFramework",
    "PlaneGeometry",
    "QoSDistribution",
    "QoSLevel",
    "REFERENCE_CONSTELLATION",
    "Scheme",
    "__version__",
]
