"""Scenario-case schema and on-disk corpus format.

A **scenario case** is one fully-specified evaluation cell: a
constellation design (a Walker-style plane population), the paper's
Section-4 evaluation knobs, a capacity-model parameterisation, a
signal-duration model, a traffic intensity, a QoS scheme and --
optionally -- a fault plan.  Cases are pure frozen data, JSON
round-trippable (``case == case_from_dict(case_to_dict(case))``) and
rendered to *canonical* bytes (sorted keys, two-space indent, trailing
newline) so a corpus regenerated from its recorded seed is
byte-identical to the checked-in one.

A **corpus** is a directory::

    <corpus>/
      metadata.json        # CorpusMetadata: schema version, seed, counts
      cases/<case_id>.json # one canonical JSON file per case

See ``docs/SCENARIOS.md`` for the field-by-field schema description and
the rules for adding a scenario family.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analytic.capacity import CapacityModelConfig
from repro.analytic.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    HyperExponential,
)
from repro.core.config import ConstellationConfig, EvaluationParams
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.geometry.plane import PlaneGeometry

__all__ = [
    "SCHEMA_VERSION",
    "CHECKS",
    "DURATION_MODELS",
    "ScenarioCase",
    "CorpusMetadata",
    "duration_distribution",
    "case_to_dict",
    "case_from_dict",
    "dumps_canonical",
    "dump_case",
    "load_case",
    "write_corpus",
    "read_corpus",
]

#: Version of the on-disk case/corpus layout.  Bump on any
#: backwards-incompatible field change and keep :func:`case_from_dict`
#: rejecting mismatches loudly.
SCHEMA_VERSION = 1

#: The per-cell conformance checks a case may declare (see
#: :mod:`repro.scenarios.runner` for their definitions).
CHECKS = (
    "analytic_vs_mc",
    "alert_deadline",
    "lumped_vs_counted",
    "lumped_vs_unlumped",
    "fault_campaign",
    "protocol_mc",
)

#: Supported signal-duration models (mean always ``1/mu``); the
#: hyperexponential mirrors the robustness experiment's bursty mixture
#: (rates ``[3r, 0.6r]``, equal weights, CV^2 = 17/9).
DURATION_MODELS = ("exponential", "hyperexponential", "deterministic")


def duration_distribution(kind: str, mean_minutes: float) -> Distribution:
    """The signal-duration :class:`Distribution` for ``kind`` with the
    given mean."""
    if mean_minutes <= 0:
        raise ConfigurationError(
            f"mean_minutes must be positive, got {mean_minutes}"
        )
    rate = 1.0 / mean_minutes
    if kind == "exponential":
        return Exponential(rate)
    if kind == "hyperexponential":
        return HyperExponential(
            rates=[3.0 * rate, 0.6 * rate], weights=[0.5, 0.5]
        )
    if kind == "deterministic":
        return Deterministic(mean_minutes)
    raise ConfigurationError(
        f"unknown duration model {kind!r}; expected one of {DURATION_MODELS}"
    )


@dataclass(frozen=True)
class ScenarioCase:
    """One corpus cell (see the module docstring).

    The constellation / evaluation / capacity fields mirror
    :class:`~repro.core.config.ConstellationConfig`,
    :class:`~repro.core.config.EvaluationParams` and
    :class:`~repro.analytic.capacity.CapacityModelConfig`; the
    remaining fields configure the Monte-Carlo side and declare which
    conformance checks apply to the cell.
    """

    case_id: str
    family: str
    # Constellation design ------------------------------------------------
    planes: int = 7
    active_per_plane: int = 14
    in_orbit_spares: int = 2
    orbit_period_minutes: float = 90.0
    coverage_time_minutes: float = 9.0
    # Evaluation parameters ----------------------------------------------
    deadline_minutes: float = 5.0
    signal_termination_rate: float = 0.2
    computation_rate: float = 30.0
    # Capacity model ------------------------------------------------------
    failure_rate_per_hour: float = 1e-5
    deployment_threshold: int = 10
    scheduled_deployment_hours: float = 30000.0
    replacement_latency_hours: float = 168.0
    stages: int = 24
    # Signal / scheme / traffic -------------------------------------------
    duration_model: str = "exponential"
    scheme: str = "OAQ"
    traffic_signals_per_hour: float = 40.0
    observation_hours: float = 500.0
    min_samples: int = 2_000
    max_samples: int = 200_000
    mc_seed: int = 0
    # Fault injection (protocol-level cells only) -------------------------
    fault_plan: Optional[FaultPlan] = None
    fault_runs: int = 80
    fault_capacity: int = 9
    # Declared conformance metrics ----------------------------------------
    checks: Tuple[str, ...] = ("analytic_vs_mc", "alert_deadline")
    confidence: float = 0.9999
    lumped_tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if not self.case_id:
            raise ConfigurationError("case_id must be non-empty")
        if not self.family:
            raise ConfigurationError("family must be non-empty")
        if self.duration_model not in DURATION_MODELS:
            raise ConfigurationError(
                f"unknown duration model {self.duration_model!r}; "
                f"expected one of {DURATION_MODELS}"
            )
        if self.scheme not in Scheme.__members__:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; expected one of "
                f"{tuple(Scheme.__members__)}"
            )
        object.__setattr__(self, "checks", tuple(self.checks))
        unknown = set(self.checks) - set(CHECKS)
        if unknown:
            raise ConfigurationError(
                f"unknown checks {sorted(unknown)}; expected among {CHECKS}"
            )
        if "fault_campaign" in self.checks and self.fault_plan is None:
            raise ConfigurationError(
                "the fault_campaign check requires a fault_plan"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.lumped_tolerance <= 0.0:
            raise ConfigurationError(
                f"lumped_tolerance must be positive, got {self.lumped_tolerance}"
            )
        if self.stages < 1:
            raise ConfigurationError(f"stages must be >= 1, got {self.stages}")
        if self.traffic_signals_per_hour <= 0:
            raise ConfigurationError(
                "traffic_signals_per_hour must be positive, got "
                f"{self.traffic_signals_per_hour}"
            )
        if self.observation_hours <= 0:
            raise ConfigurationError(
                f"observation_hours must be positive, got {self.observation_hours}"
            )
        if not 1 <= self.min_samples <= self.max_samples:
            raise ConfigurationError(
                "need 1 <= min_samples <= max_samples, got "
                f"[{self.min_samples}, {self.max_samples}]"
            )
        if self.fault_runs < 1:
            raise ConfigurationError(
                f"fault_runs must be >= 1, got {self.fault_runs}"
            )
        if not 1 <= self.fault_capacity <= self.active_per_plane:
            raise ConfigurationError(
                "fault_capacity must be in [1, active_per_plane], got "
                f"{self.fault_capacity}"
            )
        if self.mc_seed < 0:
            raise ConfigurationError(f"mc_seed must be >= 0, got {self.mc_seed}")
        # The analytic model assumes at most *pairwise* footprint
        # overlap (L2 <= L1, paper Figure 5); triple coverage at full
        # strength (Tc > 2 * Tr[active]) is outside its domain.
        if (
            self.coverage_time_minutes * self.active_per_plane
            > 2.0 * self.orbit_period_minutes
        ):
            raise ConfigurationError(
                "coverage_time * active_per_plane must be <= 2 * orbit_period "
                "(the QoS model covers at most pairwise footprint overlap); "
                f"got Tc={self.coverage_time_minutes}, "
                f"theta={self.orbit_period_minutes}, k={self.active_per_plane}"
            )
        # Delegate the heavy validation to the model configs: anything
        # the solvers would reject is rejected at case-construction
        # time, so a corpus on disk is runnable by construction.
        self.params()
        self.capacity_config()

    # ------------------------------------------------------------------
    # Derived model objects
    # ------------------------------------------------------------------
    def constellation(self) -> ConstellationConfig:
        """The constellation design of this case."""
        return ConstellationConfig(
            planes=self.planes,
            active_per_plane=self.active_per_plane,
            in_orbit_spares_per_plane=self.in_orbit_spares,
            orbit_period_minutes=self.orbit_period_minutes,
            coverage_time_minutes=self.coverage_time_minutes,
        )

    def params(self) -> EvaluationParams:
        """The evaluation parameters of this case."""
        return EvaluationParams(
            deadline_minutes=self.deadline_minutes,
            signal_termination_rate=self.signal_termination_rate,
            computation_rate=self.computation_rate,
            node_failure_rate_per_hour=self.failure_rate_per_hour,
            deployment_threshold=self.deployment_threshold,
            scheduled_deployment_hours=self.scheduled_deployment_hours,
            replacement_latency_hours=self.replacement_latency_hours,
            constellation=self.constellation(),
        )

    def capacity_config(self) -> CapacityModelConfig:
        """The orbital-plane capacity model of this case."""
        return CapacityModelConfig(
            full_capacity=self.active_per_plane,
            in_orbit_spares=self.in_orbit_spares,
            failure_rate_per_hour=self.failure_rate_per_hour,
            threshold=self.deployment_threshold,
            scheduled_period_hours=self.scheduled_deployment_hours,
            replacement_latency_hours=self.replacement_latency_hours,
        )

    def geometry(self, k: int) -> PlaneGeometry:
        """Plane geometry with ``k`` active satellites."""
        return self.constellation().plane_geometry(k)

    @property
    def scheme_enum(self) -> Scheme:
        """The :class:`Scheme` this case evaluates."""
        return Scheme[self.scheme]

    @property
    def samples(self) -> int:
        """Monte-Carlo sample count: the expected signal count over the
        observation window (traffic intensity x duration), clamped to
        ``[min_samples, max_samples]``."""
        expected = round(self.traffic_signals_per_hour * self.observation_hours)
        return int(min(self.max_samples, max(self.min_samples, expected)))

    def signal_duration(self) -> Distribution:
        """The signal-duration distribution (mean ``1/mu``)."""
        return duration_distribution(
            self.duration_model, 1.0 / self.signal_termination_rate
        )

    def with_(self, **changes) -> "ScenarioCase":
        """Copy with fields replaced (sweep/test convenience)."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# JSON serialization
# ----------------------------------------------------------------------
def case_to_dict(case: ScenarioCase) -> Dict[str, object]:
    """Pure-data dictionary of ``case``, round-trippable through
    :func:`case_from_dict`."""
    data: Dict[str, object] = {"schema_version": SCHEMA_VERSION}
    for spec in fields(ScenarioCase):
        value = getattr(case, spec.name)
        if spec.name == "fault_plan":
            value = value.to_dict() if value is not None else None
        elif spec.name == "checks":
            value = list(value)
        data[spec.name] = value
    return data


def case_from_dict(data: Mapping[str, object]) -> ScenarioCase:
    """Rebuild a :class:`ScenarioCase` from :func:`case_to_dict` output
    (full validation runs again)."""
    payload = dict(data)
    version = payload.pop("schema_version", None)
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported case schema_version {version!r}; this build "
            f"reads version {SCHEMA_VERSION}"
        )
    known = {spec.name for spec in fields(ScenarioCase)}
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(f"unknown case fields: {sorted(unknown)}")
    if payload.get("fault_plan") is not None:
        payload["fault_plan"] = FaultPlan.from_dict(payload["fault_plan"])
    if "checks" in payload:
        payload["checks"] = tuple(payload["checks"])
    return ScenarioCase(**payload)


def dumps_canonical(data: object) -> str:
    """Canonical JSON text: sorted keys, two-space indent, ``allow_nan``
    off (non-finite floats must be encoded explicitly upstream), one
    trailing newline.  Byte-identical across runs and platforms for
    equal inputs -- the property the golden-corpus pin relies on."""
    return json.dumps(data, indent=2, sort_keys=True, allow_nan=False) + "\n"


def dump_case(case: ScenarioCase) -> str:
    """Canonical JSON text of one case."""
    return dumps_canonical(case_to_dict(case))


def load_case(text: str) -> ScenarioCase:
    """Parse one case from JSON text."""
    return case_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Corpus-level metadata and directory layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorpusMetadata:
    """Provenance of one generated corpus.

    ``seed`` and ``n_cells`` are sufficient to regenerate the corpus
    byte-identically with the same package version; ``families`` pins
    the per-family cell allocation and ``git_describe`` (optional,
    filled only when requested at generation time) records the source
    tree the corpus was generated from.
    """

    name: str
    seed: int
    n_cells: int
    families: Tuple[Tuple[str, int], ...]
    schema_version: int = SCHEMA_VERSION
    generator: str = "repro.scenarios.generator"
    package_version: str = ""
    git_describe: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "seed": self.seed,
            "n_cells": self.n_cells,
            # A list of pairs, not an object: canonical JSON sorts
            # object keys, and the family *order* is part of the
            # regeneration contract (uneven splits hand the remainder
            # to the earliest families).
            "families": [[family, count] for family, count in self.families],
            "generator": self.generator,
            "package_version": self.package_version,
            "git_describe": self.git_describe,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CorpusMetadata":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported corpus schema_version {version!r}; this "
                f"build reads version {SCHEMA_VERSION}"
            )
        families = data.get("families", [])
        if isinstance(families, Mapping):
            pairs = list(families.items())
        else:
            pairs = [(family, count) for family, count in families]
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            n_cells=int(data["n_cells"]),
            families=tuple(
                (str(family), int(count)) for family, count in pairs
            ),
            schema_version=int(version),
            generator=str(data.get("generator", "repro.scenarios.generator")),
            package_version=str(data.get("package_version", "")),
            git_describe=data.get("git_describe"),
        )


def write_corpus(
    directory: str, metadata: CorpusMetadata, cases: List[ScenarioCase]
) -> None:
    """Write ``metadata.json`` + ``cases/<case_id>.json`` under
    ``directory`` (created if missing).  Case ids must be unique."""
    ids = [case.case_id for case in cases]
    if len(set(ids)) != len(ids):
        duplicates = sorted({i for i in ids if ids.count(i) > 1})
        raise ConfigurationError(f"duplicate case ids: {duplicates}")
    if metadata.n_cells != len(cases):
        raise ConfigurationError(
            f"metadata says {metadata.n_cells} cells, got {len(cases)}"
        )
    cases_dir = os.path.join(directory, "cases")
    os.makedirs(cases_dir, exist_ok=True)
    with open(os.path.join(directory, "metadata.json"), "w") as handle:
        handle.write(dumps_canonical(metadata.to_dict()))
    for case in cases:
        with open(os.path.join(cases_dir, f"{case.case_id}.json"), "w") as handle:
            handle.write(dump_case(case))


def read_corpus(directory: str) -> Tuple[CorpusMetadata, List[ScenarioCase]]:
    """Load a corpus directory: ``(metadata, cases sorted by case_id)``.

    Consistency is enforced -- the file name must match the case id
    inside it and the metadata cell count must match the files found."""
    metadata_path = os.path.join(directory, "metadata.json")
    if not os.path.isfile(metadata_path):
        raise ConfigurationError(f"no corpus metadata at {metadata_path}")
    with open(metadata_path) as handle:
        metadata = CorpusMetadata.from_dict(json.load(handle))
    cases_dir = os.path.join(directory, "cases")
    cases: List[ScenarioCase] = []
    for name in sorted(os.listdir(cases_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(cases_dir, name)) as handle:
            case = load_case(handle.read())
        expected = name[: -len(".json")]
        if case.case_id != expected:
            raise ConfigurationError(
                f"case file {name!r} holds case_id {case.case_id!r}"
            )
        cases.append(case)
    if len(cases) != metadata.n_cells:
        raise ConfigurationError(
            f"metadata says {metadata.n_cells} cells, found {len(cases)} "
            f"case files in {cases_dir}"
        )
    return metadata, cases
