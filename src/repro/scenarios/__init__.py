"""Seeded scenario corpus and cross-solver conformance harness.

The package has four layers:

* :mod:`repro.scenarios.schema` -- the :class:`ScenarioCase` record,
  its canonical on-disk JSON form, and corpus-level metadata
  (:class:`CorpusMetadata`, :func:`write_corpus` / :func:`read_corpus`);
* :mod:`repro.scenarios.generator` -- deterministic, seed-keyed
  sampling of diverse cases across declared scenario families
  (:func:`generate_corpus`, :func:`generate_from_metadata`);
* :mod:`repro.scenarios.runner` -- the conformance harness that runs
  the analytic capacity/QoS pipeline and the batched Monte-Carlo
  engine on each cell and evaluates its declared checks
  (:func:`run_case`, :func:`run_corpus`);
* :mod:`repro.scenarios.scorer` -- machine-readable scorecards and a
  timing-insensitive behavioural diff (:func:`score_run`,
  :func:`diff_scorecards`).
"""

from repro.scenarios.generator import (
    FAMILIES,
    generate_corpus,
    generate_from_metadata,
)
from repro.scenarios.runner import (
    CellResult,
    CheckOutcome,
    CorpusRunResult,
    run_case,
    run_corpus,
)
from repro.scenarios.schema import (
    CHECKS,
    DURATION_MODELS,
    SCHEMA_VERSION,
    CorpusMetadata,
    ScenarioCase,
    case_from_dict,
    case_to_dict,
    dump_case,
    dumps_canonical,
    load_case,
    read_corpus,
    write_corpus,
)
from repro.scenarios.scorer import (
    SCORECARD_VERSION,
    diff_scorecards,
    load_scorecard,
    score_run,
    scorecard_to_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "SCORECARD_VERSION",
    "CHECKS",
    "DURATION_MODELS",
    "FAMILIES",
    "ScenarioCase",
    "CorpusMetadata",
    "CheckOutcome",
    "CellResult",
    "CorpusRunResult",
    "case_to_dict",
    "case_from_dict",
    "dump_case",
    "load_case",
    "dumps_canonical",
    "write_corpus",
    "read_corpus",
    "generate_corpus",
    "generate_from_metadata",
    "run_case",
    "run_corpus",
    "score_run",
    "scorecard_to_json",
    "load_scorecard",
    "diff_scorecards",
]
