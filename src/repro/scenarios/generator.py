"""Seeded scenario-corpus generation.

Each **family** is a sampler that turns a per-case random generator
into one :class:`~repro.scenarios.schema.ScenarioCase`; a corpus is a
fixed-seed sample over the registered families.  Determinism contract
(pinned by the tests):

* every case draws from ``np.random.default_rng(SeedSequence((seed,
  family_index, case_index)))`` -- its stream depends only on the
  corpus seed and its own position, never on other cases, iteration
  order, worker identity or wall-clock;
* consequently :func:`generate_corpus` is **byte-identical** across
  reruns and across ``n_jobs`` values (parallel generation chunks the
  very same per-case streams over a process pool);
* the recorded :class:`~repro.scenarios.schema.CorpusMetadata` (seed +
  cell count + family allocation) is sufficient to regenerate the
  corpus exactly, which is how the golden corpus under
  ``tests/golden/corpus/`` is pinned.

Families (see ``docs/SCENARIOS.md`` for how to add one):

``walker-reference``
    Perturbations of the paper's 14+2 reference plane: failure rate,
    deployment threshold, deadline, signal/computation rates, scheme.
``walker-scale``
    Diverse Walker-style designs: 4-24 active satellites per plane,
    1-8 planes, varied orbit period and footprint dwell, both
    overlapping and underlapping geometries.
``spare-policy``
    Spare-strategy design points (after PAPERS.md's Markov
    spare-strategy study): in-orbit spare count, threshold, scheduled
    period and replacement latency swept aggressively.
``duration-models``
    Non-exponential signal durations (bursty hyperexponential and
    deterministic) scored against the general-integrator analytic
    pipeline.
``small-exact``
    Tiny constellations where the *unlumped* per-satellite expanded
    chain is still solvable, enabling the strictest cross-solver check
    (lumped vs unlumped vs counted).
``fault-mix``
    Protocol-level fault-injection cells (fail-silent successors,
    crosslink loss, downlink blackouts, membership staleness) run
    through the batched Monte-Carlo campaign engine.
"""

from __future__ import annotations

import subprocess
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.scenarios.schema import CorpusMetadata, ScenarioCase

__all__ = ["FAMILIES", "generate_corpus", "generate_from_metadata"]

FamilySampler = Callable[[np.random.Generator, str], ScenarioCase]


def _log_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    return float(10.0 ** rng.uniform(np.log10(low), np.log10(high)))


def _mc_seed(rng: np.random.Generator) -> int:
    return int(rng.integers(0, 2**31 - 1))


def _traffic(rng: np.random.Generator) -> Dict[str, float]:
    """Traffic intensity: expected signals/hour and observation window.
    The product (clamped) sets the cell's Monte-Carlo sample count, so
    heavier traffic buys tighter Wilson bounds."""
    return {
        "traffic_signals_per_hour": float(rng.uniform(5.0, 120.0)),
        "observation_hours": float(rng.uniform(200.0, 2000.0)),
    }


def _sample_walker_reference(
    rng: np.random.Generator, case_id: str
) -> ScenarioCase:
    return ScenarioCase(
        case_id=case_id,
        family="walker-reference",
        failure_rate_per_hour=_log_uniform(rng, 1e-6, 3e-4),
        deployment_threshold=int(rng.choice([10, 12])),
        deadline_minutes=float(rng.uniform(2.0, 12.0)),
        signal_termination_rate=float(rng.uniform(0.08, 0.8)),
        computation_rate=float(rng.uniform(10.0, 50.0)),
        scheme=str(rng.choice(["OAQ", "BAQ"])),
        checks=("analytic_vs_mc", "alert_deadline", "lumped_vs_counted"),
        mc_seed=_mc_seed(rng),
        **_traffic(rng),
    )


def _sample_walker_scale(rng: np.random.Generator, case_id: str) -> ScenarioCase:
    active = int(rng.integers(4, 25))
    orbit_period = float(rng.uniform(60.0, 240.0))
    # Dwell fraction capped so the fully-populated plane stays within
    # the model's pairwise-overlap domain (Tc <= 2 theta / k).
    coverage = orbit_period * float(
        rng.uniform(0.03, min(0.45, 1.9 / active))
    )
    return ScenarioCase(
        case_id=case_id,
        family="walker-scale",
        planes=int(rng.integers(1, 9)),
        active_per_plane=active,
        in_orbit_spares=int(rng.integers(0, 4)),
        orbit_period_minutes=orbit_period,
        coverage_time_minutes=coverage,
        deployment_threshold=int(rng.integers(max(2, active - 5), active + 1)),
        fault_capacity=min(9, active),
        failure_rate_per_hour=_log_uniform(rng, 1e-6, 3e-4),
        scheduled_deployment_hours=float(rng.uniform(5000.0, 60000.0)),
        replacement_latency_hours=float(rng.uniform(24.0, 500.0)),
        deadline_minutes=float(rng.uniform(1.0, 15.0)),
        signal_termination_rate=float(rng.uniform(0.05, 1.0)),
        computation_rate=float(rng.uniform(5.0, 60.0)),
        scheme=str(rng.choice(["OAQ", "BAQ"])),
        checks=("analytic_vs_mc", "alert_deadline", "lumped_vs_counted"),
        mc_seed=_mc_seed(rng),
        **_traffic(rng),
    )


def _sample_spare_policy(rng: np.random.Generator, case_id: str) -> ScenarioCase:
    active = int(rng.integers(10, 17))
    return ScenarioCase(
        case_id=case_id,
        family="spare-policy",
        active_per_plane=active,
        in_orbit_spares=int(rng.integers(0, 5)),
        deployment_threshold=int(rng.integers(max(2, active - 6), active + 1)),
        failure_rate_per_hour=_log_uniform(rng, 3e-6, 1e-3),
        scheduled_deployment_hours=float(rng.uniform(2000.0, 60000.0)),
        replacement_latency_hours=float(rng.uniform(12.0, 1000.0)),
        deadline_minutes=float(rng.uniform(2.0, 10.0)),
        signal_termination_rate=float(rng.uniform(0.1, 0.6)),
        scheme=str(rng.choice(["OAQ", "BAQ"])),
        checks=("analytic_vs_mc", "alert_deadline", "lumped_vs_counted"),
        mc_seed=_mc_seed(rng),
        **_traffic(rng),
    )


def _sample_duration_models(
    rng: np.random.Generator, case_id: str
) -> ScenarioCase:
    return ScenarioCase(
        case_id=case_id,
        family="duration-models",
        active_per_plane=int(rng.integers(8, 17)),
        deployment_threshold=int(rng.integers(6, 9)),
        fault_capacity=8,
        duration_model=str(rng.choice(["hyperexponential", "deterministic"])),
        deadline_minutes=float(rng.uniform(2.0, 10.0)),
        signal_termination_rate=float(rng.uniform(0.1, 0.6)),
        computation_rate=float(rng.uniform(10.0, 50.0)),
        failure_rate_per_hour=_log_uniform(rng, 1e-6, 1e-4),
        scheme=str(rng.choice(["OAQ", "BAQ"])),
        checks=("analytic_vs_mc", "alert_deadline"),
        mc_seed=_mc_seed(rng),
        **_traffic(rng),
    )


def _sample_small_exact(rng: np.random.Generator, case_id: str) -> ScenarioCase:
    active = int(rng.integers(3, 7))
    orbit_period = float(rng.uniform(60.0, 180.0))
    coverage = orbit_period * float(
        rng.uniform(0.05, min(0.4, 1.9 / active))
    )
    return ScenarioCase(
        case_id=case_id,
        family="small-exact",
        planes=int(rng.integers(1, 4)),
        active_per_plane=active,
        in_orbit_spares=int(rng.integers(0, 2)),
        orbit_period_minutes=orbit_period,
        coverage_time_minutes=coverage,
        deployment_threshold=int(rng.integers(2, active + 1)),
        fault_capacity=min(9, active),
        failure_rate_per_hour=_log_uniform(rng, 1e-5, 1e-3),
        scheduled_deployment_hours=float(rng.uniform(2000.0, 30000.0)),
        replacement_latency_hours=float(rng.uniform(24.0, 500.0)),
        deadline_minutes=float(rng.uniform(2.0, 12.0)),
        signal_termination_rate=float(rng.uniform(0.1, 0.6)),
        scheme=str(rng.choice(["OAQ", "BAQ"])),
        stages=6,
        checks=(
            "analytic_vs_mc",
            "alert_deadline",
            "lumped_vs_counted",
            "lumped_vs_unlumped",
        ),
        mc_seed=_mc_seed(rng),
        **_traffic(rng),
    )


def _sample_fault_mix(rng: np.random.Generator, case_id: str) -> ScenarioCase:
    kind = str(
        rng.choice(
            [
                "fault-free",
                "successors-fail-all",
                "next-fails",
                "lossy",
                "blackout",
                "stale-view",
            ]
        )
    )
    if kind == "fault-free":
        plan = FaultPlan.fault_free()
    elif kind == "successors-fail-all":
        plan = FaultPlan.successors_fail_silent(0.0)
    elif kind == "next-fails":
        plan = FaultPlan.successors_fail_silent(0.0, count=1, name="next-fails")
    elif kind == "lossy":
        plan = FaultPlan.lossy(float(rng.uniform(0.05, 0.4)))
    elif kind == "blackout":
        plan = FaultPlan.downlink_blackout(0.0, float(rng.uniform(20.0, 120.0)))
    else:
        plan = FaultPlan(
            name="stale-view",
            fail_successors_at=0.0,
            fail_successor_count=1,
            membership_staleness=float(rng.choice([0.0, 1e9])),
        )
    return ScenarioCase(
        case_id=case_id,
        family="fault-mix",
        signal_termination_rate=float(rng.uniform(0.1, 0.4)),
        deadline_minutes=float(rng.uniform(4.0, 8.0)),
        fault_plan=plan,
        fault_runs=int(rng.integers(60, 121)),
        fault_capacity=int(rng.choice([8, 9, 10])),
        scheme="OAQ",
        checks=("fault_campaign",),
        mc_seed=_mc_seed(rng),
        **_traffic(rng),
    )


#: Declaration-ordered family registry; the allocation of cells to
#: families follows this order (earliest families absorb the remainder
#: of an uneven split).
FAMILIES: Dict[str, FamilySampler] = {
    "walker-reference": _sample_walker_reference,
    "walker-scale": _sample_walker_scale,
    "spare-policy": _sample_spare_policy,
    "duration-models": _sample_duration_models,
    "small-exact": _sample_small_exact,
    "fault-mix": _sample_fault_mix,
}


def _allocate(
    n_cells: int, families: Sequence[str]
) -> List[Tuple[str, int]]:
    """Even deterministic split of ``n_cells`` over ``families`` in
    declaration order; the first ``n_cells % len(families)`` families
    get one extra cell."""
    base, extra = divmod(n_cells, len(families))
    return [
        (family, base + (1 if index < extra else 0))
        for index, family in enumerate(families)
    ]


def _build_case(spec: Tuple[int, str, int, int]) -> ScenarioCase:
    """Build one case from its pure-data spec ``(seed, family,
    family_index, case_index)`` -- top-level so process pools can map
    it."""
    seed, family, family_index, case_index = spec
    rng = np.random.default_rng(
        np.random.SeedSequence((seed, family_index, case_index))
    )
    case_id = f"{family}-{case_index:04d}"
    return FAMILIES[family](rng, case_id)


def _git_describe() -> Optional[str]:
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if result.returncode != 0:  # pragma: no cover - no repo / no git
        return None
    return result.stdout.strip() or None


def generate_corpus(
    n_cells: int,
    seed: int,
    *,
    name: str = "scenario-corpus",
    families: Optional[Sequence[str]] = None,
    n_jobs: int = 1,
    describe_git: bool = False,
) -> Tuple[CorpusMetadata, List[ScenarioCase]]:
    """Generate a seeded corpus: ``(metadata, cases)``.

    ``n_jobs > 1`` fans case construction out over a process pool; the
    result is byte-identical to the serial path (every case's stream is
    keyed by position, see the module docstring).  ``describe_git``
    stamps ``git describe`` output into the metadata -- leave it off
    for corpora whose regeneration must be byte-identical from the
    metadata alone (the golden corpus).
    """
    if n_cells < 1:
        raise ConfigurationError(f"n_cells must be >= 1, got {n_cells}")
    if seed < 0:
        raise ConfigurationError(f"seed must be >= 0, got {seed}")
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    chosen = list(families) if families is not None else list(FAMILIES)
    if not chosen:
        raise ConfigurationError("at least one family is required")
    unknown = set(chosen) - set(FAMILIES)
    if unknown:
        raise ConfigurationError(
            f"unknown families {sorted(unknown)}; registered: {list(FAMILIES)}"
        )
    if len(set(chosen)) != len(chosen):
        raise ConfigurationError(f"duplicate families: {chosen}")

    allocation = _allocate(n_cells, chosen)
    # Family indices are positions in the *global* registry, so a
    # family's cases do not depend on which other families were chosen.
    registry_index = {family: i for i, family in enumerate(FAMILIES)}
    specs = [
        (seed, family, registry_index[family], case_index)
        for family, count in allocation
        for case_index in range(count)
    ]
    if n_jobs == 1 or len(specs) < 2:
        cases = [_build_case(spec) for spec in specs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            cases = list(pool.map(_build_case, specs, chunksize=8))
    metadata = CorpusMetadata(
        name=name,
        seed=seed,
        n_cells=n_cells,
        families=tuple(
            (family, count) for family, count in allocation if count > 0
        ),
        package_version=repro.__version__,
        git_describe=_git_describe() if describe_git else None,
    )
    return metadata, cases


def generate_from_metadata(
    metadata: CorpusMetadata, *, n_jobs: int = 1
) -> Tuple[CorpusMetadata, List[ScenarioCase]]:
    """Regenerate a corpus from its recorded metadata (same seed, cell
    count and family selection).  Used by the byte-identity pin on the
    golden corpus and the ``diff`` subcommand."""
    return generate_corpus(
        metadata.n_cells,
        metadata.seed,
        name=metadata.name,
        families=[family for family, _ in metadata.families],
        n_jobs=n_jobs,
    )
